"""Logical query plans.

The SQL analyzer (or the programmatic query builder) produces a tree of
these nodes; the three optimizer generations (section 6.2) turn them
into physical plans.  Logical nodes carry no algorithm or distribution
choices — only *what* to compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..execution.aggregates import AggregateSpec
from ..execution.expressions import Expr
from ..execution.operators.analytic import WindowSpec
from ..execution.operators.join import JoinType


class LogicalNode:
    """Base class for logical plan nodes."""

    children: list["LogicalNode"]

    def describe(self) -> str:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Readable tree rendering."""
        lines = [" " * indent + self.describe()]
        for child in self.children:
            lines.append(child.explain(indent + 2))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class ScanNode(LogicalNode):
    """Read a table (projection choice is the optimizer's job).

    ``columns`` are the *output* names this scan must produce; when an
    alias is in play the analyzer provides ``rename`` mapping stored
    column name -> output name.
    """

    table: str
    columns: list[str]
    predicate: Expr | None = None
    rename: dict[str, str] = field(default_factory=dict)
    alias: str = ""

    def __post_init__(self):
        self.children = []

    def describe(self) -> str:
        alias = f" AS {self.alias}" if self.alias else ""
        predicate = f" WHERE {self.predicate!r}" if self.predicate is not None else ""
        return f"Scan {self.table}{alias}{predicate}"


@dataclass
class JoinNode(LogicalNode):
    """Equi-join of two subtrees, with optional residual predicate."""

    left: LogicalNode
    right: LogicalNode
    join_type: JoinType
    left_keys: list[Expr]
    right_keys: list[Expr]
    residual: Expr | None = None

    def __post_init__(self):
        self.children = [self.left, self.right]

    def describe(self) -> str:
        keys = ", ".join(
            f"{l!r}={r!r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"Join {self.join_type.value} ON {keys}"


@dataclass
class FilterNode(LogicalNode):
    """Row filter."""

    child: LogicalNode
    predicate: Expr

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return f"Filter {self.predicate!r}"


@dataclass
class ProjectNode(LogicalNode):
    """Compute/select output columns (ordered)."""

    child: LogicalNode
    outputs: dict[str, Expr]

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        body = ", ".join(f"{name}={expr!r}" for name, expr in self.outputs.items())
        return f"Project {body}"


@dataclass
class GroupByNode(LogicalNode):
    """Grouped (or global) aggregation, with optional HAVING."""

    child: LogicalNode
    keys: list[tuple[str, Expr]]
    aggregates: list[AggregateSpec]
    having: Expr | None = None

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        keys = ", ".join(name for name, _ in self.keys) or "<global>"
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        having = f" HAVING {self.having!r}" if self.having is not None else ""
        return f"GroupBy [{keys}] [{aggs}]{having}"


@dataclass
class DistinctNode(LogicalNode):
    """Duplicate elimination."""

    child: LogicalNode

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return "Distinct"


@dataclass
class SortNode(LogicalNode):
    """ORDER BY."""

    child: LogicalNode
    keys: list[tuple[Expr, bool]]  # (expr, ascending)

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        keys = ", ".join(
            f"{expr!r} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"Sort {keys}"


@dataclass
class LimitNode(LogicalNode):
    """LIMIT / OFFSET."""

    child: LogicalNode
    limit: int
    offset: int = 0

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return f"Limit {self.limit} OFFSET {self.offset}"


@dataclass
class AnalyticNode(LogicalNode):
    """Window function computation."""

    child: LogicalNode
    specs: list[WindowSpec]

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return "Analytic " + "; ".join(spec.describe() for spec in self.specs)
