"""Statistics for cost-based optimization.

V2Opt "incorporated many of the best practices developed over the past
30 years of optimizer research such as using equi-height histograms to
calculate selectivity [and] applying sample-based estimates of the
number of distinct values" (section 6.2, citing Haas et al. [16]).
This module implements both, collected from live projection data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..types import sort_key


@dataclass
class Histogram:
    """Equi-height histogram over a sample of one column."""

    #: Bucket upper bounds (inclusive), ascending; len = bucket count.
    bounds: list = field(default_factory=list)
    #: Rows represented per bucket (equal by construction, modulo
    #: rounding in the last bucket).
    rows_per_bucket: float = 0.0
    total_rows: int = 0
    null_fraction: float = 0.0

    @classmethod
    def build(cls, values: list, buckets: int = 20) -> "Histogram":
        """Build from (a sample of) column values."""
        concrete = sorted(
            (value for value in values if value is not None), key=sort_key
        )
        total = len(values)
        if not concrete:
            return cls(total_rows=total, null_fraction=1.0 if total else 0.0)
        buckets = min(buckets, len(concrete))
        bounds = []
        for bucket in range(1, buckets + 1):
            index = min(len(concrete) - 1, bucket * len(concrete) // buckets - 1)
            bounds.append(concrete[index])
        return cls(
            bounds=bounds,
            rows_per_bucket=len(concrete) / buckets,
            total_rows=total,
            null_fraction=(total - len(concrete)) / total if total else 0.0,
        )

    def selectivity_range(self, low, high) -> float:
        """Estimated fraction of rows with low <= value <= high
        (``None`` bound = open)."""
        if not self.bounds or self.total_rows == 0:
            return 1.0
        concrete_fraction = 1.0 - self.null_fraction
        matched_buckets = 0.0
        previous = None
        for bound in self.bounds:
            bucket_low = previous
            bucket_high = bound
            previous = bound
            if low is not None and sort_key(bucket_high) < sort_key(low):
                continue
            if high is not None and bucket_low is not None and sort_key(
                bucket_low
            ) > sort_key(high):
                continue
            matched_buckets += 1
        return max(
            min(concrete_fraction * matched_buckets / len(self.bounds), 1.0),
            0.0,
        )

    def selectivity_equals(self, ndv: float) -> float:
        """Estimated fraction for an equality predicate given the
        column's distinct-value estimate."""
        if ndv <= 0:
            return 1.0
        return min((1.0 - self.null_fraction) / ndv, 1.0)


def estimate_ndv(sample: list, total_rows: int) -> float:
    """Sample-based distinct-value estimate.

    A simplified Haas et al. [16] first-order jackknife: scale the
    sample's distinct count by the inverse fraction of singletons.
    """
    concrete = [value for value in sample if value is not None]
    if not concrete:
        return 0.0
    sample_size = len(concrete)
    from collections import Counter

    frequencies = Counter(concrete)
    distinct = len(frequencies)
    singletons = sum(1 for count in frequencies.values() if count == 1)
    if sample_size >= total_rows:
        return float(distinct)
    # jackknife: D_hat = d / (1 - (1 - q) * f1 / d_times_... ) simplified
    q = sample_size / max(total_rows, 1)
    denominator = max(1.0 - (1.0 - q) * singletons / sample_size, q)
    return min(distinct / denominator, float(total_rows))


@dataclass
class ColumnStats:
    """Statistics for one column of one table."""

    name: str
    min_value: object = None
    max_value: object = None
    ndv: float = 0.0
    histogram: Histogram = field(default_factory=Histogram)
    #: Average encoded bytes per value (compression-aware cost input).
    avg_encoded_bytes: float = 8.0


@dataclass
class TableStats:
    """Statistics for one table (gathered from its super projection)."""

    table: str
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        return self.columns.get(name, ColumnStats(name))


#: Rows sampled per table when collecting statistics.
SAMPLE_ROWS = 10_000


def collect_table_stats(cluster, table_name: str, epoch: int, seed: int = 17) -> TableStats:
    """Gather statistics for a table from its live data."""
    rows = cluster.read_table(table_name, epoch)
    stats = TableStats(table=table_name, row_count=len(rows))
    if not rows:
        for column in cluster.catalog.table(table_name).columns:
            stats.columns[column.name] = ColumnStats(column.name)
        return stats
    rng = random.Random(seed)
    sample = rows if len(rows) <= SAMPLE_ROWS else rng.sample(rows, SAMPLE_ROWS)
    family = cluster.catalog.super_projection_for(table_name)
    encoded = _encoded_bytes_per_column(cluster, family)
    for column in cluster.catalog.table(table_name).columns:
        values = [row[column.name] for row in sample]
        concrete = [value for value in values if value is not None]
        stats.columns[column.name] = ColumnStats(
            name=column.name,
            min_value=min(concrete, default=None),
            max_value=max(concrete, default=None),
            ndv=estimate_ndv(values, len(rows)),
            histogram=Histogram.build(values),
            avg_encoded_bytes=encoded.get(column.name, 8.0),
        )
    return stats


def _encoded_bytes_per_column(cluster, family) -> dict[str, float]:
    """Average on-disk encoded bytes per value, per column — measured
    from real containers, which is what makes the cost model
    *compression aware* (section 6.2)."""
    totals: dict[str, list[float]] = {}
    for node_index, projection_name in cluster.scan_sources(family):
        manager = cluster.nodes[node_index].manager
        state = manager.storage(projection_name)
        for container in state.containers.values():
            if container.row_count == 0:
                continue
            for name in container.meta.columns:
                if container._group_of(name) is not None:
                    continue
                try:
                    reader = container.column_reader(name)
                except Exception:  # pragma: no cover - defensive
                    continue
                totals.setdefault(name, []).append(
                    reader.data_size / container.row_count
                )
    return {
        name: sum(values) / len(values) for name, values in totals.items() if values
    }


@dataclass
class StatsCatalog:
    """Per-table statistics cache used by the optimizers."""

    tables: dict[str, TableStats] = field(default_factory=dict)
    #: projection family name -> {column: avg encoded bytes/value};
    #: what makes projection choice compression-aware.
    family_bytes: dict[str, dict[str, float]] = field(default_factory=dict)

    def get(self, table_name: str) -> TableStats:
        return self.tables.get(table_name, TableStats(table_name))

    def put(self, stats: TableStats) -> None:
        self.tables[stats.table] = stats

    def bytes_for(self, family_name: str, column: str) -> float:
        return self.family_bytes.get(family_name, {}).get(column, 8.0)

    def refresh(self, cluster, epoch: int) -> None:
        """Re-collect statistics for every table and projection."""
        for table_name in cluster.catalog.table_names():
            self.put(collect_table_stats(cluster, table_name, epoch))
        for name, family in cluster.catalog.families.items():
            try:
                self.family_bytes[name] = _encoded_bytes_per_column(
                    cluster, family
                )
            except Exception:  # pragma: no cover - down nodes etc.
                self.family_bytes.setdefault(name, {})
