"""Selectivity estimation and the compression-aware cost model.

V2Opt prunes its search space "using a cost-model based on compression
aware I/O, CPU and Network transfer costs" (section 6.2).  The I/O term
here uses *measured* encoded bytes per column (from the live position
indexes), so a projection whose sort order makes a column RLE-friendly
really is cheaper to scan — the property that makes projection choice
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..execution.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from .stats import StatsCatalog, TableStats

#: Relative weight of reading one encoded byte from disk.
IO_BYTE_WEIGHT = 1.0
#: Relative weight of processing one row through an operator.
CPU_ROW_WEIGHT = 2.0
#: Relative weight of moving one byte across the interconnect.
NETWORK_BYTE_WEIGHT = 4.0
#: Default selectivity for predicates we cannot analyze.
DEFAULT_SELECTIVITY = 0.25


def estimate_selectivity(predicate: Expr | None, stats: TableStats) -> float:
    """Estimated fraction of rows passing ``predicate``."""
    if predicate is None:
        return 1.0
    if isinstance(predicate, And):
        result = 1.0
        for operand in predicate.operands:
            result *= estimate_selectivity(operand, stats)
        return result
    if isinstance(predicate, Or):
        result = 0.0
        for operand in predicate.operands:
            part = estimate_selectivity(operand, stats)
            result = result + part - result * part
        return result
    if isinstance(predicate, Not):
        return 1.0 - estimate_selectivity(predicate.operand, stats)
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, stats)
    if isinstance(predicate, Between) and isinstance(predicate.value, ColumnRef):
        if isinstance(predicate.low, Literal) and isinstance(predicate.high, Literal):
            column = stats.column(predicate.value.name)
            return column.histogram.selectivity_range(
                predicate.low.value, predicate.high.value
            )
    if isinstance(predicate, InList) and isinstance(predicate.value, ColumnRef):
        column = stats.column(predicate.value.name)
        if column.ndv > 0:
            return min(len(predicate.options) / column.ndv, 1.0)
    if isinstance(predicate, IsNull):
        column_names = list(predicate.referenced_columns())
        if len(column_names) == 1:
            fraction = stats.column(column_names[0]).histogram.null_fraction
            return 1.0 - fraction if predicate.negated else fraction
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(predicate: Comparison, stats: TableStats) -> float:
    column_name, op, literal = None, predicate.op, None
    if isinstance(predicate.left, ColumnRef) and isinstance(predicate.right, Literal):
        column_name, literal = predicate.left.name, predicate.right.value
    elif isinstance(predicate.right, ColumnRef) and isinstance(predicate.left, Literal):
        column_name, literal = predicate.right.name, predicate.left.value
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if column_name is None or literal is None:
        return DEFAULT_SELECTIVITY
    column = stats.column(column_name)
    if op == "=":
        return column.histogram.selectivity_equals(column.ndv)
    if op == "<>":
        return 1.0 - column.histogram.selectivity_equals(column.ndv)
    if op in ("<", "<="):
        return column.histogram.selectivity_range(None, literal)
    return column.histogram.selectivity_range(literal, None)


@dataclass
class CostBreakdown:
    """Io/cpu/network components of a plan cost."""

    io: float = 0.0
    cpu: float = 0.0
    network: float = 0.0

    @property
    def total(self) -> float:
        return self.io + self.cpu + self.network

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.io + other.io,
            self.cpu + other.cpu,
            self.network + other.network,
        )


def scan_cost(
    stats: TableStats, columns: list[str], selectivity: float
) -> CostBreakdown:
    """Cost of scanning the given columns of a table.

    I/O is proportional to *encoded* bytes (compression aware); range
    predicates additionally reduce I/O through container pruning, which
    we approximate by scaling I/O with max(selectivity, 0.05).
    """
    bytes_per_row = sum(
        stats.column(name).avg_encoded_bytes for name in columns
    )
    io = stats.row_count * bytes_per_row * max(selectivity, 0.05) * IO_BYTE_WEIGHT
    cpu = stats.row_count * CPU_ROW_WEIGHT * 0.25  # decode + predicate
    return CostBreakdown(io=io, cpu=cpu)


def join_cost(
    left_rows: float, right_rows: float, algorithm: str
) -> CostBreakdown:
    """CPU cost of joining; merge join is cheaper when inputs arrive
    sorted (the sorted-projection payoff)."""
    if algorithm == "merge":
        cpu = (left_rows + right_rows) * CPU_ROW_WEIGHT * 0.6
    else:
        cpu = (left_rows + right_rows * 1.5) * CPU_ROW_WEIGHT
    return CostBreakdown(cpu=cpu)


def network_cost(rows: float, bytes_per_row: float, copies: int = 1) -> CostBreakdown:
    """Cost of shipping rows across the interconnect."""
    return CostBreakdown(
        network=rows * bytes_per_row * copies * NETWORK_BYTE_WEIGHT
    )


def groupby_cost(input_rows: float, groups: float) -> CostBreakdown:
    """CPU cost of aggregation."""
    return CostBreakdown(cpu=input_rows * CPU_ROW_WEIGHT + groups)


def sort_cost(rows: float) -> CostBreakdown:
    """CPU cost of sorting (n log n-ish)."""
    import math

    if rows <= 1:
        return CostBreakdown(cpu=rows)
    return CostBreakdown(cpu=rows * math.log2(rows) * CPU_ROW_WEIGHT * 0.5)


def average_row_bytes(stats: TableStats, columns: list[str]) -> float:
    """Encoded bytes per row for the given columns."""
    return sum(stats.column(name).avg_encoded_bytes for name in columns) or 8.0


__all__ = [
    "CostBreakdown",
    "estimate_selectivity",
    "scan_cost",
    "join_cost",
    "network_cost",
    "groupby_cost",
    "sort_cost",
    "average_row_bytes",
    "StatsCatalog",
    "DEFAULT_SELECTIVITY",
]
