"""Physical query plans.

A physical plan fixes everything the logical plan left open: which
projection each scan reads, join algorithms and join order, the
distribution strategy of every join (co-located / broadcast inner /
resegment both), group-by algorithm and phasing, SIP filter placement,
and prepass aggregation.  The distributed executor
(:mod:`repro.execution.executor`) interprets these trees against a
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..execution.aggregates import AggregateSpec
from ..execution.expressions import Expr
from ..execution.operators.analytic import WindowSpec
from ..execution.operators.join import JoinType
from .cost import CostBreakdown


@dataclass(frozen=True)
class Distribution:
    """Where a physical node's output lives.

    * ``segmented`` — split across nodes, hash of ``keys`` (output
      column names);
    * ``replicated`` — complete copy per node;
    * ``coordinator`` — single stream at the initiator.
    """

    kind: str
    keys: tuple[str, ...] = ()

    def is_segmented_on(self, columns) -> bool:
        """Whether data is segmented on a subset of ``columns`` (so any
        group keyed by those columns is node-local)."""
        return (
            self.kind == "segmented"
            and bool(self.keys)
            and set(self.keys) <= set(columns)
        )


SEGMENTED = "segmented"
REPLICATED = "replicated"
COORDINATOR = "coordinator"


def _predicate_engine(predicate: Expr | None) -> str:
    """Plan-time engine prediction for a Scan/Filter predicate.

    "kernel" means the predicate compiles to a vectorized kernel (and
    runs there unless ``REPRO_FORCE_ROW_ENGINE`` forces the fallback);
    "row" means it will evaluate per-row.
    """
    from ..execution.kernels import kernels_enabled
    from ..execution.kernels.predicates import kernel_predicate_supported

    if kernels_enabled() and kernel_predicate_supported(predicate):
        return "kernel"
    return "row"


def _groupby_engine(keys: list, aggregates: list[AggregateSpec]) -> str:
    """Plan-time engine prediction for a GroupBy's aggregation shape."""
    from ..execution.expressions import ColumnRef
    from ..execution.kernels import kernels_enabled

    if not kernels_enabled():
        return "row"
    if not all(isinstance(expr, ColumnRef) for _, expr in keys):
        return "row"
    for spec in aggregates:
        if spec.distinct or spec.is_user_defined:
            return "row"
        if spec.arg is not None and not isinstance(spec.arg, ColumnRef):
            return "row"
    return "kernel"


class PhysicalNode:
    """Base class for physical plan nodes."""

    children: list["PhysicalNode"]
    distribution: Distribution
    #: Optimizer-estimated output rows and cumulative cost.
    est_rows: float = 0.0
    est_cost: CostBreakdown = CostBreakdown()

    def describe(self) -> str:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        lines = [
            " " * indent
            + self.describe()
            + f"  [{self.distribution.kind}"
            + (
                f" on ({', '.join(self.distribution.keys)})"
                if self.distribution.keys
                else ""
            )
            + f", ~{self.est_rows:.0f} rows]"
        ]
        for child in self.children:
            lines.append(child.explain(indent + 2))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class PhysScan(PhysicalNode):
    """Scan one projection family (executor picks live copies)."""

    table: str
    family_name: str
    columns: list[str]
    #: stored column name -> output name (aliasing).
    rename: dict[str, str]
    predicate: Expr | None
    distribution: Distribution
    #: True when the chosen projection's sort order lets downstream
    #: merge-join / pipelined group-by consume it directly.
    sort_order: tuple[str, ...] = ()
    #: filled by join planning: SIP filter key exprs, one entry per
    #: participating hash join (executor wires the actual filters).
    sip_requests: list[list[Expr]] = field(default_factory=list)

    def __post_init__(self):
        self.children = []

    def describe(self) -> str:
        predicate = f" WHERE {self.predicate!r}" if self.predicate is not None else ""
        sip = f" +{len(self.sip_requests)} SIP" if self.sip_requests else ""
        return (
            f"Scan {self.family_name}{predicate}{sip}"
            f" [{_predicate_engine(self.predicate)}]"
        )


@dataclass
class PhysFilter(PhysicalNode):
    child: PhysicalNode
    predicate: Expr
    distribution: Distribution

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return f"Filter {self.predicate!r} [{_predicate_engine(self.predicate)}]"


@dataclass
class PhysProject(PhysicalNode):
    child: PhysicalNode
    outputs: dict[str, Expr]
    distribution: Distribution

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        body = ", ".join(f"{name}={expr!r}" for name, expr in self.outputs.items())
        return f"Project {body}"


#: join distribution strategies
COLOCATED = "colocated"
BROADCAST_INNER = "broadcast_inner"
RESEGMENT = "resegment"


@dataclass
class PhysJoin(PhysicalNode):
    left: PhysicalNode
    right: PhysicalNode
    join_type: JoinType
    algorithm: str  # 'hash' | 'merge'
    left_keys: list[Expr]
    right_keys: list[Expr]
    strategy: str  # COLOCATED | BROADCAST_INNER | RESEGMENT
    left_columns: list[str]
    right_columns: list[str]
    distribution: Distribution
    residual: Expr | None = None
    #: whether a SIP filter was pushed into the probe-side scan.
    sip: bool = False

    def __post_init__(self):
        self.children = [self.left, self.right]

    def describe(self) -> str:
        keys = ", ".join(
            f"{l!r}={r!r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        sip = " SIP" if self.sip else ""
        return (
            f"{self.algorithm.title()}Join[{self.join_type.value}] "
            f"({keys}) {self.strategy}{sip}"
        )


@dataclass
class PhysGroupBy(PhysicalNode):
    child: PhysicalNode
    keys: list[tuple[str, Expr]]
    aggregates: list[AggregateSpec]
    algorithm: str  # 'hash' | 'pipelined'
    #: True when the child's segmentation makes groups node-local, so
    #: no merge phase is needed (section 3.6's "fully local distributed
    #: aggregations").
    local_complete: bool
    #: place an L1-sized prepass below the (distributed) aggregation.
    prepass: bool
    distribution: Distribution
    having: Expr | None = None

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        keys = ", ".join(name for name, _ in self.keys) or "<global>"
        aggs = ", ".join(spec.describe() for spec in self.aggregates)
        mode = "local" if self.local_complete else "two-phase"
        prepass = "+prepass" if self.prepass else ""
        having = f" HAVING {self.having!r}" if self.having is not None else ""
        engine = _groupby_engine(self.keys, self.aggregates)
        return (
            f"GroupBy[{self.algorithm} {mode}{prepass}] [{keys}] "
            f"[{aggs}]{having} [{engine}]"
        )


@dataclass
class PhysSort(PhysicalNode):
    child: PhysicalNode
    keys: list[tuple[Expr, bool]]
    distribution: Distribution
    limit_hint: int | None = None

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        keys = ", ".join(
            f"{expr!r} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        hint = f" top-{self.limit_hint}" if self.limit_hint else ""
        return f"Sort {keys}{hint}"


@dataclass
class PhysLimit(PhysicalNode):
    child: PhysicalNode
    limit: int
    offset: int
    distribution: Distribution

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return f"Limit {self.limit} OFFSET {self.offset}"


@dataclass
class PhysDistinct(PhysicalNode):
    child: PhysicalNode
    distribution: Distribution

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return "Distinct"


@dataclass
class PhysAnalytic(PhysicalNode):
    child: PhysicalNode
    specs: list[WindowSpec]
    distribution: Distribution

    def __post_init__(self):
        self.children = [self.child]

    def describe(self) -> str:
        return "Analytic " + "; ".join(spec.describe() for spec in self.specs)
