"""Logical rewrites shared by all optimizer generations.

Section 6.2 lists the classic rewrites Vertica adopted: introducing
transitive predicates based on join keys, converting outer joins to
inner joins, predicate push-down, and pruning unneeded columns.  These
run before physical planning and are generation-independent.
"""

from __future__ import annotations

from ..execution.expressions import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    IsNull,
    Literal,
    Not,
    Or,
    substitute_columns,
)
from ..execution.operators.join import JoinType
from .logical import (
    FilterNode,
    JoinNode,
    LogicalNode,
    ScanNode,
)


def split_conjuncts(predicate: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        out: list[Expr] = []
        for operand in predicate.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [predicate]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    """Rebuild a predicate from conjuncts (None when empty)."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(*conjuncts)


def _output_columns_of(node: LogicalNode) -> set[str]:
    if isinstance(node, ScanNode):
        return {node.rename.get(name, name) for name in node.columns}
    if isinstance(node, JoinNode):
        if node.join_type in (JoinType.SEMI, JoinType.ANTI):
            return _output_columns_of(node.left)
        return _output_columns_of(node.left) | _output_columns_of(node.right)
    if isinstance(node, FilterNode):
        return _output_columns_of(node.child)
    return set()


def push_down_filters(node: LogicalNode) -> LogicalNode:
    """Push filter predicates as close to the scans as possible.

    Conjuncts referencing one side of a join move below it (respecting
    outer-join null-extension: predicates cannot be pushed to the
    preserved side's opposite); scan-level conjuncts merge into the
    scan's predicate.
    """
    if isinstance(node, FilterNode):
        child = push_down_filters(node.child)
        remaining: list[Expr] = []
        for conjunct in split_conjuncts(node.predicate):
            if not _try_push(child, conjunct):
                remaining.append(conjunct)
        if not remaining:
            return child
        return FilterNode(child, conjoin(remaining))
    for index, child in enumerate(list(node.children)):
        node.children[index] = push_down_filters(child)
    _resync_child_fields(node)
    return node


def _resync_child_fields(node: LogicalNode) -> None:
    if isinstance(node, JoinNode):
        node.left, node.right = node.children
    elif hasattr(node, "child") and node.children:
        node.child = node.children[0]


def _try_push(node: LogicalNode, conjunct: Expr) -> bool:
    """Attempt to absorb a conjunct below ``node``; True on success."""
    referenced = conjunct.referenced_columns()
    if isinstance(node, ScanNode):
        outputs = {node.rename.get(name, name) for name in node.columns}
        if referenced <= outputs:
            # scan predicates live in stored-name space
            inverse = {out: raw for raw, out in node.rename.items()}
            translated = substitute_columns(conjunct, inverse)
            existing = split_conjuncts(node.predicate)
            node.predicate = conjoin(existing + [translated])
            return True
        return False
    if isinstance(node, FilterNode):
        if _try_push(node.child, conjunct):
            return True
        if referenced <= _output_columns_of(node):
            node.predicate = conjoin(
                split_conjuncts(node.predicate) + [conjunct]
            )
            return True
        return False
    if isinstance(node, JoinNode):
        # outer joins: a predicate on the NULL-extended side cannot be
        # pushed below the join (it would change which rows survive).
        left_ok = node.join_type in (
            JoinType.INNER,
            JoinType.LEFT,
            JoinType.SEMI,
            JoinType.ANTI,
        )
        right_ok = node.join_type in (JoinType.INNER, JoinType.RIGHT)
        if left_ok and referenced <= _output_columns_of(node.left):
            if _try_push(node.left, conjunct):
                return True
            node.left = FilterNode(node.left, conjunct)
            node.children[0] = node.left
            return True
        if right_ok and referenced <= _output_columns_of(node.right):
            if _try_push(node.right, conjunct):
                return True
            node.right = FilterNode(node.right, conjunct)
            node.children[1] = node.right
            return True
        return False
    return False


def add_transitive_predicates(node: LogicalNode) -> LogicalNode:
    """Copy single-column constant predicates across join-key equality.

    If ``fact.k = dim.k`` and the dim scan filters ``dim.k = 5``, the
    fact scan gains ``fact.k = 5`` (section 6.2: "introducing
    transitive predicates based on join keys").
    """
    for join in [n for n in node.walk() if isinstance(n, JoinNode)]:
        if join.join_type is not JoinType.INNER:
            continue
        for left_key, right_key in zip(join.left_keys, join.right_keys):
            if not (
                isinstance(left_key, ColumnRef) and isinstance(right_key, ColumnRef)
            ):
                continue
            _copy_constant_predicates(join.left, left_key.name, join.right, right_key.name)
            _copy_constant_predicates(join.right, right_key.name, join.left, left_key.name)
    return node


def _constant_conjuncts_on(node: LogicalNode, column: str) -> list[Expr]:
    """Constant comparisons on ``column`` (an *output* name) found in
    scan predicates below ``node``, expressed in output-name space."""
    out = []
    for scan in (n for n in node.walk() if isinstance(n, ScanNode)):
        for conjunct in split_conjuncts(scan.predicate):
            rendered = substitute_columns(conjunct, scan.rename)
            if rendered.referenced_columns() == {column} and isinstance(
                rendered, Comparison
            ):
                if isinstance(rendered.left, Literal) or isinstance(
                    rendered.right, Literal
                ):
                    out.append(rendered)
    return out


def _copy_constant_predicates(
    source: LogicalNode, source_column: str, target: LogicalNode, target_column: str
) -> None:
    conjuncts = _constant_conjuncts_on(source, source_column)
    if not conjuncts:
        return
    for scan in (n for n in target.walk() if isinstance(n, ScanNode)):
        outputs = {scan.rename.get(name, name) for name in scan.columns}
        if target_column not in outputs:
            continue
        inverse = {out: raw for raw, out in scan.rename.items()}
        existing = {repr(c) for c in split_conjuncts(scan.predicate)}
        for conjunct in conjuncts:
            translated = substitute_columns(
                substitute_columns(conjunct, {source_column: target_column}),
                inverse,
            )
            if repr(translated) not in existing:
                scan.predicate = conjoin(
                    split_conjuncts(scan.predicate) + [translated]
                )


def _rejects_nulls(predicate: Expr, columns: set[str]) -> bool:
    """Whether the predicate is FALSE/NULL whenever all ``columns`` are
    NULL — the condition letting an outer join convert to inner."""
    if isinstance(predicate, Comparison):
        return bool(predicate.referenced_columns() & columns)
    if isinstance(predicate, IsNull):
        return predicate.negated and bool(
            predicate.referenced_columns() & columns
        )
    if isinstance(predicate, And):
        return any(_rejects_nulls(op, columns) for op in predicate.operands)
    if isinstance(predicate, Or):
        return all(_rejects_nulls(op, columns) for op in predicate.operands)
    if isinstance(predicate, Not):
        return False
    return False


def convert_outer_to_inner(node: LogicalNode) -> LogicalNode:
    """Downgrade outer joins to inner when a filter above them rejects
    NULLs of the null-extended side (section 6.2)."""
    if isinstance(node, FilterNode):
        node.child = convert_outer_to_inner(node.child)
        node.children[0] = node.child
        child = node.child
        if isinstance(child, JoinNode):
            for conjunct in split_conjuncts(node.predicate):
                if child.join_type is JoinType.LEFT and _rejects_nulls(
                    conjunct, _output_columns_of(child.right)
                ):
                    child.join_type = JoinType.INNER
                elif child.join_type is JoinType.RIGHT and _rejects_nulls(
                    conjunct, _output_columns_of(child.left)
                ):
                    child.join_type = JoinType.INNER
        return node
    for index, child in enumerate(list(node.children)):
        node.children[index] = convert_outer_to_inner(child)
    _resync_child_fields(node)
    return node


def rewrite(node: LogicalNode) -> LogicalNode:
    """The standard rewrite pipeline: outer->inner, push-down,
    transitive predicates, then a second push-down pass."""
    node = convert_outer_to_inner(node)
    node = push_down_filters(node)
    node = add_transitive_predicates(node)
    node = push_down_filters(node)
    return node
