"""Shared physical planning machinery for all optimizer generations.

The three optimizers (StarOpt, StarifiedOpt, V2Opt — section 6.2)
differ in join ordering and in which distribution strategies they may
use; everything else — projection choice, predicate-derived scan
costing, group-by phasing, prepass placement, SIP wiring — is shared
and lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanningError
from ..execution.expressions import ColumnRef, Expr
from ..execution.operators.join import JoinType
from ..projections import HashSegmentation, ProjectionDefinition
from . import physical as P
from .cost import (
    CostBreakdown,
    average_row_bytes,
    estimate_selectivity,
    groupby_cost,
    join_cost,
    network_cost,
    scan_cost,
    sort_cost,
)
from .logical import (
    AnalyticNode,
    DistinctNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from .rewrite import rewrite
from .stats import StatsCatalog


def output_columns(node: P.PhysicalNode) -> list[str]:
    """Output column names of a physical node."""
    if isinstance(node, P.PhysScan):
        return list(node.columns)
    if isinstance(node, P.PhysProject):
        return list(node.outputs)
    if isinstance(node, P.PhysJoin):
        if node.join_type in (JoinType.SEMI, JoinType.ANTI):
            return list(node.left_columns)
        return list(node.left_columns) + list(node.right_columns)
    if isinstance(node, P.PhysGroupBy):
        return [name for name, _ in node.keys] + [
            spec.output_name for spec in node.aggregates
        ]
    return output_columns(node.children[0])


def _key_names(keys: list[Expr]) -> list[str] | None:
    """Column names when every key is a bare column reference."""
    names = []
    for key in keys:
        if not isinstance(key, ColumnRef):
            return None
        names.append(key.name)
    return names


@dataclass
class PlannedJoinSide:
    """A physical subtree plus its planning metadata."""

    plan: P.PhysicalNode
    est_rows: float


class PlannerBase:
    """Common planning logic; generations override join policy hooks."""

    name = "base"
    #: Strategies this generation may use for non-colocated joins.
    allowed_strategies: tuple[str, ...] = (
        P.COLOCATED,
        P.BROADCAST_INNER,
        P.RESEGMENT,
    )
    #: Whether this generation reorders inner-join chains.
    reorders_joins = True

    def __init__(self, cluster, stats: StatsCatalog):
        self.cluster = cluster
        self.stats = stats

    # -- entry point ------------------------------------------------------

    def plan(self, logical: LogicalNode) -> P.PhysicalNode:
        """Produce a physical plan for a logical query tree.

        The tree is deep-copied first: rewrites mutate in place, and
        callers (tests, the Database Designer) plan the same logical
        tree repeatedly.
        """
        import copy

        from ..trace import TRACER

        with TRACER.span(
            "optimizer.plan",
            category="optimizer",
            optimizer=type(self).__name__,
        ):
            logical = rewrite(copy.deepcopy(logical))
            return self._plan_node(logical)

    # -- dispatch ------------------------------------------------------------

    def _plan_node(self, node: LogicalNode) -> P.PhysicalNode:
        if isinstance(node, ScanNode):
            return self.plan_scan(node)
        if isinstance(node, FilterNode):
            child = self._plan_node(node.child)
            phys = P.PhysFilter(child, node.predicate, child.distribution)
            phys.est_rows = child.est_rows * 0.5
            phys.est_cost = child.est_cost
            return phys
        if isinstance(node, JoinNode):
            return self.plan_join_tree(node)
        if isinstance(node, GroupByNode):
            return self.plan_groupby(node)
        if isinstance(node, ProjectNode):
            child = self._plan_node(node.child)
            phys = P.PhysProject(child, node.outputs, child.distribution)
            phys.est_rows = child.est_rows
            phys.est_cost = child.est_cost
            return phys
        if isinstance(node, SortNode):
            child = self._plan_node(node.child)
            limit_hint = None
            phys = P.PhysSort(
                child,
                node.keys,
                P.Distribution(P.COORDINATOR),
                limit_hint=limit_hint,
            )
            phys.est_rows = child.est_rows
            phys.est_cost = child.est_cost + sort_cost(child.est_rows)
            return phys
        if isinstance(node, LimitNode):
            child = self._plan_node(node.child)
            if isinstance(child, P.PhysSort):
                child.limit_hint = node.limit + node.offset
            phys = P.PhysLimit(
                child, node.limit, node.offset, P.Distribution(P.COORDINATOR)
            )
            phys.est_rows = min(child.est_rows, node.limit)
            phys.est_cost = child.est_cost
            return phys
        if isinstance(node, DistinctNode):
            child = self._plan_node(node.child)
            phys = P.PhysDistinct(child, P.Distribution(P.COORDINATOR))
            phys.est_rows = child.est_rows * 0.5
            phys.est_cost = child.est_cost + groupby_cost(
                child.est_rows, phys.est_rows
            )
            return phys
        if isinstance(node, AnalyticNode):
            child = self._plan_node(node.child)
            phys = P.PhysAnalytic(child, node.specs, P.Distribution(P.COORDINATOR))
            phys.est_rows = child.est_rows
            phys.est_cost = child.est_cost + sort_cost(child.est_rows)
            return phys
        raise PlanningError(f"cannot plan {type(node).__name__}")

    # -- scans -------------------------------------------------------------------

    def plan_scan(self, node: ScanNode) -> P.PhysScan:
        """Choose the cheapest covering projection for a scan.

        The choice is cost-based over *measured* encoded sizes, and
        prefers projections whose leading sort column carries a
        predicate (container pruning + faster restriction), exactly the
        properties the Database Designer optimizes for.
        """
        # Convention: node.columns and node.predicate use the table's
        # stored (raw) column names; node.rename maps raw -> output.
        table_stats = self.stats.get(node.table)
        predicate_raw_columns = (
            node.predicate.referenced_columns()
            if node.predicate is not None
            else set()
        )
        needed_raw = set(node.columns) | predicate_raw_columns
        selectivity = estimate_selectivity(node.predicate, table_stats)
        best = None
        best_cost = None
        for family in self.cluster.catalog.families_for_table(node.table):
            projection = family.primary
            if projection.prejoin is not None:
                continue  # prejoins are picked by join planning, not scans
            if not projection.covers(needed_raw):
                continue
            io_bytes = sum(
                self.stats.bytes_for(family.primary.name, raw)
                or table_stats.column(raw).avg_encoded_bytes
                for raw in needed_raw
            )
            cost = table_stats.row_count * io_bytes
            # sorted-on-predicate bonus: leading sort column restricted
            # -> container pruning shrinks the read dramatically.
            if projection.sort_order and projection.sort_order[0] in predicate_raw_columns:
                cost *= max(selectivity, 0.05)
            if best_cost is None or cost < best_cost:
                best, best_cost = family, cost
        if best is None:
            raise PlanningError(
                f"no projection of {node.table!r} covers {sorted(needed_raw)}"
            )
        projection = best.primary
        # keep declared order for requested raw columns, append extras
        ordered_raw = list(node.columns)
        for name in sorted(needed_raw - set(node.columns)):
            ordered_raw.append(name)
        out_names = [node.rename.get(raw, raw) for raw in ordered_raw]
        distribution = self._scan_distribution(projection, node.rename, out_names)
        sort_order = tuple(
            node.rename.get(name, name)
            for name in projection.sort_order
            if node.rename.get(name, name) in out_names
        )
        phys = P.PhysScan(
            table=node.table,
            family_name=best.primary.name,
            columns=out_names,
            rename=dict(node.rename),
            predicate=node.predicate,
            distribution=distribution,
            sort_order=sort_order,
        )
        phys.est_rows = max(table_stats.row_count * selectivity, 1.0)
        phys.est_cost = scan_cost(
            table_stats, sorted(needed_raw), selectivity
        )
        return phys

    def _scan_distribution(
        self,
        projection: ProjectionDefinition,
        rename: dict[str, str],
        out_columns: list[str],
    ) -> P.Distribution:
        if projection.segmentation.replicated:
            return P.Distribution(P.REPLICATED)
        if isinstance(projection.segmentation, HashSegmentation):
            keys = tuple(
                rename.get(name, name) for name in projection.segmentation.columns
            )
            if set(keys) <= set(out_columns):
                return P.Distribution(P.SEGMENTED, keys)
        return P.Distribution(P.SEGMENTED, ())

    # -- joins --------------------------------------------------------------------

    def plan_join_tree(self, node: JoinNode) -> P.PhysicalNode:
        """Plan a join subtree, reordering inner-join chains when the
        generation allows it."""
        relations, conditions, reorderable = self._flatten_inner_joins(node)
        if reorderable and self.reorders_joins and len(relations) > 1:
            return self.order_joins(relations, conditions)
        left = self._plan_node(node.left)
        right = self._plan_node(node.right)
        return self.make_join(
            left, right, node.join_type, node.left_keys, node.right_keys,
            node.residual,
        )

    def _flatten_inner_joins(self, node: JoinNode):
        """Collect the leaves and equi-conditions of a pure inner-join
        tree; returns (leaf logical nodes, conditions, flattenable)."""
        relations: list[LogicalNode] = []
        conditions: list[tuple[Expr, Expr, Expr | None]] = []
        flattenable = True

        def visit(current: LogicalNode):
            nonlocal flattenable
            if isinstance(current, JoinNode) and current.join_type is JoinType.INNER:
                visit(current.left)
                visit(current.right)
                for left_key, right_key in zip(
                    current.left_keys, current.right_keys
                ):
                    conditions.append((left_key, right_key, None))
                if current.residual is not None:
                    conditions.append((None, None, current.residual))
            else:
                relations.append(current)
                if isinstance(current, JoinNode):
                    flattenable = False

        visit(node)
        return relations, conditions, flattenable

    def order_joins(self, relations, conditions) -> P.PhysicalNode:
        """Generation-specific join ordering; must be overridden."""
        raise NotImplementedError

    # -- join construction ----------------------------------------------------------

    def colocated_possible(
        self, left: P.PhysicalNode, right: P.PhysicalNode,
        left_keys: list[Expr], right_keys: list[Expr],
    ) -> bool:
        """Whether the two sides can join without moving data."""
        ld, rd = left.distribution, right.distribution
        if rd.kind == P.REPLICATED:
            return ld.kind in (P.SEGMENTED, P.REPLICATED)
        if ld.kind == P.REPLICATED:
            return False  # outer replicated, inner segmented: wrong shape
        left_names = _key_names(left_keys)
        right_names = _key_names(right_keys)
        if left_names is None or right_names is None:
            return False
        if not ld.keys or not rd.keys:
            return False
        if len(ld.keys) != len(rd.keys):
            return False
        # the i-th segmentation column must be joined to its peer
        pairing = dict(zip(left_names, right_names))
        try:
            mapped = tuple(pairing[name] for name in ld.keys)
        except KeyError:
            return False
        return mapped == rd.keys

    def strategy_cost(
        self, strategy: str, left_rows: float, right_rows: float,
        left_bytes: float, right_bytes: float,
    ) -> CostBreakdown:
        """Network cost of a join distribution strategy."""
        nodes = max(self.cluster.node_count, 1)
        if strategy == P.COLOCATED:
            return CostBreakdown()
        if strategy == P.BROADCAST_INNER:
            return network_cost(right_rows, right_bytes, copies=max(nodes - 1, 1))
        return network_cost(left_rows, left_bytes) + network_cost(
            right_rows, right_bytes
        )

    def choose_strategy(
        self, left: P.PhysicalNode, right: P.PhysicalNode,
        left_keys, right_keys,
    ) -> tuple[str, CostBreakdown]:
        """Cheapest allowed distribution strategy for a join."""
        left_bytes = 16.0
        right_bytes = 16.0
        options: list[tuple[float, str, CostBreakdown]] = []
        if self.colocated_possible(left, right, left_keys, right_keys):
            options.append((0.0, P.COLOCATED, CostBreakdown()))
        for strategy in (P.BROADCAST_INNER, P.RESEGMENT):
            if strategy not in self.allowed_strategies:
                continue
            cost = self.strategy_cost(
                strategy, left.est_rows, right.est_rows, left_bytes, right_bytes
            )
            options.append((cost.total, strategy, cost))
        if not options:
            raise PlanningError(
                f"{self.name} cannot place this join: no co-located layout "
                "and data movement is not permitted"
            )
        options.sort(key=lambda item: item[0])
        _, strategy, cost = options[0]
        return strategy, cost

    def choose_algorithm(
        self, left: P.PhysicalNode, right: P.PhysicalNode,
        left_keys, right_keys, strategy: str,
    ) -> str:
        """Hash join unless both inputs arrive sorted on the join keys
        (then merge join wins, sorted projections paying off)."""
        left_names = _key_names(left_keys)
        right_names = _key_names(right_keys)
        if (
            strategy == P.COLOCATED
            and left_names is not None
            and right_names is not None
            and isinstance(left, P.PhysScan)
            and isinstance(right, P.PhysScan)
            and tuple(left_names) == left.sort_order[: len(left_names)]
            and tuple(right_names) == right.sort_order[: len(right_names)]
        ):
            return "merge"
        return "hash"

    def join_output_rows(
        self, left: P.PhysicalNode, right: P.PhysicalNode,
        left_keys, right_keys, join_type: JoinType,
    ) -> float:
        """Classic |L||R|/max(ndv) estimate."""
        if join_type in (JoinType.SEMI, JoinType.ANTI):
            return max(left.est_rows * 0.5, 1.0)
        ndv = 1.0
        left_names = _key_names(left_keys) or []
        for scan in [n for n in left.walk() if isinstance(n, P.PhysScan)]:
            table_stats = self.stats.get(scan.table)
            for name in left_names:
                raw = {out: raw for raw, out in scan.rename.items()}.get(name, name)
                column = table_stats.column(raw)
                if column.ndv > ndv:
                    ndv = column.ndv
        result = left.est_rows * right.est_rows / max(ndv, 1.0)
        if join_type in (JoinType.LEFT, JoinType.FULL):
            result = max(result, left.est_rows)
        if join_type in (JoinType.RIGHT, JoinType.FULL):
            result = max(result, right.est_rows)
        return max(result, 1.0)

    def make_join(
        self, left: P.PhysicalNode, right: P.PhysicalNode,
        join_type: JoinType, left_keys, right_keys, residual=None,
    ) -> P.PhysJoin:
        """Assemble a physical join with strategy, algorithm, SIP and
        output distribution."""
        # hash joins build from the right (inner) side: for INNER joins
        # put the smaller estimated input there.
        if join_type is JoinType.INNER and left.est_rows < right.est_rows:
            left, right = right, left
            left_keys, right_keys = right_keys, left_keys
        strategy, move_cost = self.choose_strategy(
            left, right, left_keys, right_keys
        )
        algorithm = self.choose_algorithm(
            left, right, left_keys, right_keys, strategy
        )
        if strategy == P.RESEGMENT:
            names = _key_names(left_keys) or ()
            distribution = P.Distribution(P.SEGMENTED, tuple(names))
        elif left.distribution.kind == P.REPLICATED and strategy == P.COLOCATED:
            distribution = right.distribution
        else:
            distribution = left.distribution
        # SIP needs the probe scan to see the *complete* build key set;
        # under RESEGMENT each destination join holds only a slice of
        # the build side, so the filter cannot be pushed to the scan
        # (the paper: "we are not always able to push the SIP filter to
        # the Scan").
        sip = (
            algorithm == "hash"
            and strategy != P.RESEGMENT
            and join_type in (JoinType.INNER, JoinType.SEMI)
            and self._scan_plan_reachable(left)
        )
        join = P.PhysJoin(
            left=left,
            right=right,
            join_type=join_type,
            algorithm=algorithm,
            left_keys=left_keys,
            right_keys=right_keys,
            strategy=strategy,
            left_columns=output_columns(left),
            right_columns=output_columns(right),
            distribution=distribution,
            residual=residual,
            sip=sip,
        )
        join.est_rows = self.join_output_rows(
            left, right, left_keys, right_keys, join_type
        )
        join.est_cost = (
            left.est_cost
            + right.est_cost
            + move_cost
            + join_cost(left.est_rows, right.est_rows, algorithm)
        )
        if sip:
            scan_plan = self._scan_plan_of(left)
            if scan_plan is not None:
                scan_plan.sip_requests.append(list(left_keys))
        return join

    @staticmethod
    def _scan_plan_of(node: P.PhysicalNode):
        current = node
        while current is not None:
            if isinstance(current, P.PhysScan):
                return current
            current = current.children[0] if current.children else None
        return None

    def _scan_plan_reachable(self, node: P.PhysicalNode) -> bool:
        return self._scan_plan_of(node) is not None

    # -- group by ----------------------------------------------------------------------

    def plan_groupby(self, node: GroupByNode) -> P.PhysGroupBy:
        child = self._plan_node(node.child)
        key_names = [name for name, _ in node.keys]
        local_complete = bool(node.keys) and child.distribution.is_segmented_on(
            key_names
        )
        mergeable = all(spec.mergeable for spec in node.aggregates)
        prepass = (
            not local_complete
            and mergeable
            and bool(node.keys)
        )
        algorithm = self._groupby_algorithm(child, node)
        distribution = (
            child.distribution if local_complete else P.Distribution(P.COORDINATOR)
        )
        phys = P.PhysGroupBy(
            child=child,
            keys=node.keys,
            aggregates=node.aggregates,
            algorithm=algorithm,
            local_complete=local_complete,
            prepass=prepass,
            distribution=distribution,
            having=node.having,
        )
        groups = self._estimate_groups(node, child)
        phys.est_rows = groups
        phys.est_cost = child.est_cost + groupby_cost(child.est_rows, groups)
        return phys

    def _groupby_algorithm(self, child: P.PhysicalNode, node: GroupByNode) -> str:
        """Pipelined (one-pass) aggregation when the input is sorted on
        a prefix matching the group keys; hash otherwise."""
        key_names = _key_names([expr for _, expr in node.keys])
        if (
            key_names
            and isinstance(child, P.PhysScan)
            and tuple(key_names) == child.sort_order[: len(key_names)]
        ):
            return "pipelined"
        return "hash"

    def _estimate_groups(self, node: GroupByNode, child: P.PhysicalNode) -> float:
        if not node.keys:
            return 1.0
        ndv = 1.0
        for _, expr in node.keys:
            if isinstance(expr, ColumnRef):
                for scan in [
                    n for n in child.walk() if isinstance(n, P.PhysScan)
                ]:
                    raw = {o: r for r, o in scan.rename.items()}.get(
                        expr.name, expr.name
                    )
                    column_ndv = self.stats.get(scan.table).column(raw).ndv
                    if column_ndv:
                        ndv *= max(column_ndv, 1.0)
                        break
                else:
                    ndv *= 10.0
            else:
                ndv *= 10.0
        return min(max(ndv, 1.0), max(child.est_rows, 1.0))
