"""The three optimizer generations (section 6.2).

* :class:`StarOpt` — the original Kimball-style optimizer: assumes a
  star/snowflake shape, requires co-located projections (replicated
  dimensions, fact segmented), joins the fact with its most selective
  dimensions first.
* :class:`StarifiedOpt` — "by forcing non-star queries to look like a
  star, Vertica could run the StarOpt algorithm on the query": same
  ordering policy, but non-co-located inputs are allowed by
  broadcasting the inner side (treating it as a replicated dimension).
* :class:`V2Opt` — distribution-aware: data may move on the fly
  (broadcast or resegment, cost-chosen), join order is chosen greedily
  from the cost model's row estimates, and all the shared machinery
  (compression-aware scan choice, SIP, prepass, merge joins on sorted
  projections) applies.
"""

from __future__ import annotations

from ..errors import PlanningError
from ..execution.expressions import Comparison, Expr
from ..execution.operators.join import JoinType
from . import physical as P
from .logical import LogicalNode
from .planner import PlannerBase, output_columns
from .rewrite import conjoin


class _OrderedJoinPlanner(PlannerBase):
    """Shared left-deep join assembly given a generation's ordering."""

    def join_order(self, planned: list[P.PhysicalNode], equis) -> list[int]:
        raise NotImplementedError

    def order_joins(self, relations: list[LogicalNode], conditions):
        planned = [self._plan_node(relation) for relation in relations]
        equis = [
            (left, right)
            for left, right, residual in conditions
            if left is not None
        ]
        residuals = [
            residual for _, _, residual in conditions if residual is not None
        ]
        order = self.join_order(planned, equis)
        current = planned[order[0]]
        pending = list(equis)
        for index in order[1:]:
            right = planned[index]
            left_keys: list[Expr] = []
            right_keys: list[Expr] = []
            current_columns = set(output_columns(current))
            right_columns = set(output_columns(right))
            for pair in list(pending):
                a, b = pair
                a_cols = a.referenced_columns()
                b_cols = b.referenced_columns()
                if a_cols <= current_columns and b_cols <= right_columns:
                    left_keys.append(a)
                    right_keys.append(b)
                    pending.remove(pair)
                elif b_cols <= current_columns and a_cols <= right_columns:
                    left_keys.append(b)
                    right_keys.append(a)
                    pending.remove(pair)
            current = self.make_join(
                current, right, JoinType.INNER, left_keys, right_keys
            )
        leftover = residuals + [Comparison("=", a, b) for a, b in pending]
        if leftover:
            predicate = conjoin(leftover)
            filtered = P.PhysFilter(current, predicate, current.distribution)
            filtered.est_rows = current.est_rows * 0.5
            filtered.est_cost = current.est_cost
            return filtered
        return current

    # -- helpers shared by the star-shaped generations --------------------

    @staticmethod
    def _base_rows(planner: PlannerBase, node: P.PhysicalNode) -> float:
        """Unfiltered row count of the node's underlying table (to spot
        the fact table), falling back to the estimate."""
        scan = PlannerBase._scan_plan_of(node)
        if scan is not None:
            return float(planner.stats.get(scan.table).row_count)
        return node.est_rows


class StarOpt(_OrderedJoinPlanner):
    """Generation 1: star-only, co-located-only."""

    name = "StarOpt"
    allowed_strategies = (P.COLOCATED,)
    reorders_joins = True

    def join_order(self, planned, equis) -> list[int]:
        # fact = largest base table; dimensions joined most selective
        # first ("join a fact table with its most highly selective
        # dimensions first").
        indexes = list(range(len(planned)))
        fact = max(indexes, key=lambda i: self._base_rows(self, planned[i]))
        dims = sorted(
            (i for i in indexes if i != fact),
            key=lambda i: planned[i].est_rows,
        )
        return [fact] + dims

    def choose_strategy(self, left, right, left_keys, right_keys):
        if not self.colocated_possible(left, right, left_keys, right_keys):
            raise PlanningError(
                "StarOpt requires co-located projections: segment the fact "
                "and replicate the dimensions, or use a newer optimizer"
            )
        return super().choose_strategy(left, right, left_keys, right_keys)


class StarifiedOpt(StarOpt):
    """Generation 2: StarOpt's ordering, but non-co-located inputs are
    'starified' by broadcasting them like replicated dimensions."""

    name = "StarifiedOpt"
    allowed_strategies = (P.COLOCATED, P.BROADCAST_INNER)

    def choose_strategy(self, left, right, left_keys, right_keys):
        return PlannerBase.choose_strategy(
            self, left, right, left_keys, right_keys
        )


class V2Opt(_OrderedJoinPlanner):
    """Generation 3: distribution-aware, cost-pruned, extensible."""

    name = "V2Opt"
    allowed_strategies = (P.COLOCATED, P.BROADCAST_INNER, P.RESEGMENT)

    def join_order(self, planned, equis) -> list[int]:
        # greedy: start from the smallest filtered input, repeatedly
        # add the connected relation minimizing the estimated
        # intermediate result.
        remaining = set(range(len(planned)))
        start = min(remaining, key=lambda i: planned[i].est_rows)
        order = [start]
        remaining.discard(start)
        current_columns = set(output_columns(planned[start]))
        current_rows = planned[start].est_rows

        def connects(index: int) -> bool:
            columns = set(output_columns(planned[index]))
            for a, b in equis:
                a_cols = a.referenced_columns()
                b_cols = b.referenced_columns()
                if (a_cols <= current_columns and b_cols <= columns) or (
                    b_cols <= current_columns and a_cols <= columns
                ):
                    return True
            return False

        while remaining:
            connected = [index for index in remaining if connects(index)]
            pool = connected or sorted(remaining)
            best = min(pool, key=lambda i: planned[i].est_rows)
            order.append(best)
            remaining.discard(best)
            current_columns |= set(output_columns(planned[best]))
            current_rows *= max(planned[best].est_rows, 1.0)
        return order
