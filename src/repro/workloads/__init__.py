"""Deterministic workload generators for the paper's experiments."""

from . import cstore_benchmark, meters, random_integers

__all__ = ["cstore_benchmark", "meters", "random_integers"]
