"""Meter telemetry generator (section 8.2.2's customer data, scaled).

    Vertica has a customer that collects metrics from some meters.
    There are 4 columns in the schema: Metric (a few hundred), Meter
    (a couple of thousand), Collection Time Stamp (every 5 minutes, 10
    minutes, hour, etc., depending on the metric), Metric Value (a
    64-bit float; some metrics have trends — like lots of 0 values —
    others change gradually with time, some are much more random).

The generator reproduces those distributional properties at a
configurable scale; compression ratios are scale-invariant for this
shape, which is why the scaled-down Table 4b reproduction holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.schema import ColumnDef, TableDefinition
from ..types import FLOAT, INTEGER, VARCHAR

#: The paper's full shape: ~300 metrics x ~2000 meters x 5-min data.
FULL_METRICS = 300
FULL_METERS = 2000

#: Per-metric collection intervals (seconds): 5 min, 10 min, 1 h.
INTERVALS = (300, 600, 3600)

#: Value behaviour classes, weighted like the paper's description.
BEHAVIOURS = ("zero_trend", "gradual", "random")


def meters_table() -> TableDefinition:
    """The 4-column telemetry schema."""
    return TableDefinition(
        "meter_readings",
        [
            ColumnDef("metric", VARCHAR),
            ColumnDef("meter", INTEGER),
            ColumnDef("ts", INTEGER),
            ColumnDef("value", FLOAT),
        ],
    )


@dataclass
class MeterDataSpec:
    """Scaled shape of the generated data set."""

    metrics: int
    meters: int
    readings_per_series: int
    seed: int = 7

    @property
    def total_rows(self) -> int:
        return self.metrics * self.meters * self.readings_per_series


def spec_for_rows(target_rows: int, seed: int = 7) -> MeterDataSpec:
    """A spec with the paper's metric:meter ratio sized to ~target rows."""
    # keep the paper's ~1:7 metric:meter ratio
    import math

    metrics = max(4, int(math.sqrt(target_rows / 7 / 16)))
    meters = metrics * 7
    readings = max(target_rows // (metrics * meters), 2)
    return MeterDataSpec(metrics, meters, readings, seed)


def generate(spec: MeterDataSpec):
    """Yield telemetry rows (in collection order, i.e. unsorted with
    respect to the (metric, meter, ts) projection order)."""
    rng = random.Random(spec.seed)
    metric_interval = {
        index: INTERVALS[rng.randrange(len(INTERVALS))]
        for index in range(spec.metrics)
    }
    metric_behaviour = {
        index: BEHAVIOURS[index % len(BEHAVIOURS)] for index in range(spec.metrics)
    }
    for reading in range(spec.readings_per_series):
        for metric_index in range(spec.metrics):
            name = f"metric_{metric_index:04d}"
            interval = metric_interval[metric_index]
            behaviour = metric_behaviour[metric_index]
            timestamp = reading * interval
            for meter in range(spec.meters):
                if behaviour == "zero_trend":
                    value = 0.0 if rng.random() < 0.8 else round(rng.uniform(0, 5), 2)
                elif behaviour == "gradual":
                    value = round(
                        100.0 + reading * 0.25 + meter * 0.01 + rng.uniform(-0.05, 0.05),
                        3,
                    )
                else:
                    value = rng.uniform(-1e6, 1e6)
                yield {
                    "metric": name,
                    "meter": meter,
                    "ts": timestamp,
                    "value": value,
                }


def csv_line(row: dict) -> str:
    """The baseline CSV rendering used for raw-size accounting."""
    return f"{row['metric']},{row['meter']},{row['ts']},{row['value']}"
