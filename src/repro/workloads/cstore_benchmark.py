"""The C-Store benchmark: data generator and the seven queries.

Table 3 of the paper compares Vertica against the C-Store prototype
"using the queries and test harness of the C-Store paper" — a
TPC-H-derived two-table schema (lineitem, orders).  The 2012 paper
does not print the query texts, so this module defines seven queries
spanning the same operator mix the C-Store paper's harness used:
equality/range restrictions on the date sort column, single-table
group-bys, and fact-fact joins with grouped aggregation (documented as
an approximation in DESIGN.md §2).

The generator is deterministic (seeded) and scale-factor driven:
``scale=1`` produces 60k lineitem / 15k orders rows, the shape ratios
of TPC-H at tiny scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.schema import ColumnDef, TableDefinition
from ..cstore import QuerySpec
from ..types import FLOAT, INTEGER, VARCHAR

#: Dates are day numbers in [BASE_DATE, BASE_DATE + DATE_SPAN).
BASE_DATE = 0
DATE_SPAN = 2400  # ~ 7 years of ship dates

#: Restriction constants used by the queries.
D1 = 1200  # an equality date
D2 = 1300  # range end
D3 = 2000  # "recent orders" cutoff
D4 = 900  # join-query equality date


def lineitem_table() -> TableDefinition:
    """The lineitem fact table (sorted by ship date, like the paper's
    compressed sorted projections)."""
    return TableDefinition(
        "lineitem",
        [
            ColumnDef("l_shipdate", INTEGER),
            ColumnDef("l_orderkey", INTEGER),
            ColumnDef("l_partkey", INTEGER),
            ColumnDef("l_suppkey", INTEGER),
            ColumnDef("l_linenumber", INTEGER),
            ColumnDef("l_quantity", INTEGER),
            ColumnDef("l_extendedprice", FLOAT),
            ColumnDef("l_returnflag", VARCHAR),
        ],
    )


def orders_table() -> TableDefinition:
    """The orders fact table (sorted by order date)."""
    return TableDefinition(
        "orders",
        [
            ColumnDef("o_orderdate", INTEGER),
            ColumnDef("o_orderkey", INTEGER),
            ColumnDef("o_custkey", INTEGER),
            ColumnDef("o_shippriority", INTEGER),
        ],
    )


@dataclass
class CStoreBenchmarkData:
    """Generated benchmark rows plus raw-size accounting."""

    lineitem: list[dict]
    orders: list[dict]
    scale: float

    @property
    def lineitem_rows(self) -> int:
        return len(self.lineitem)

    @property
    def orders_rows(self) -> int:
        return len(self.orders)


def generate(scale: float = 1.0, seed: int = 42) -> CStoreBenchmarkData:
    """Deterministically generate benchmark data at ``scale``."""
    rng = random.Random(seed)
    order_count = int(15_000 * scale)
    lineitem = []
    orders = []
    flags = ["A", "N", "R"]
    for orderkey in range(1, order_count + 1):
        orderdate = rng.randrange(BASE_DATE, BASE_DATE + DATE_SPAN)
        orders.append(
            {
                "o_orderdate": orderdate,
                "o_orderkey": orderkey,
                "o_custkey": rng.randrange(1, max(order_count // 10, 2)),
                "o_shippriority": rng.randrange(0, 5),
            }
        )
        for linenumber in range(1, rng.randrange(2, 7)):
            shipdate = min(
                orderdate + rng.randrange(1, 120), BASE_DATE + DATE_SPAN - 1
            )
            quantity = rng.randrange(1, 51)
            lineitem.append(
                {
                    "l_shipdate": shipdate,
                    "l_orderkey": orderkey,
                    "l_partkey": rng.randrange(1, 20_000),
                    "l_suppkey": rng.randrange(1, 101),
                    "l_linenumber": linenumber,
                    "l_quantity": quantity,
                    "l_extendedprice": round(quantity * rng.uniform(900, 1100), 2),
                    "l_returnflag": rng.choice(flags),
                }
            )
    return CStoreBenchmarkData(lineitem=lineitem, orders=orders, scale=scale)


def queries() -> list[QuerySpec]:
    """The seven benchmark queries, each with SQL for the Vertica-style
    engine and a spec interpretable by the baseline."""
    return [
        QuerySpec(
            name="Q1",
            table="lineitem",
            columns=[],
            filters={"lineitem": lambda row: row["l_shipdate"] == D1},
            filter_columns={"lineitem": ["l_shipdate"]},
            group_by=[],
            aggregate=("COUNT", None),
            sql=f"SELECT count(*) AS agg FROM lineitem WHERE l_shipdate = {D1}",
        ),
        QuerySpec(
            name="Q2",
            table="lineitem",
            columns=[],
            filters={"lineitem": lambda row: row["l_shipdate"] == D1},
            filter_columns={"lineitem": ["l_shipdate"]},
            group_by=["l_suppkey"],
            aggregate=("COUNT", None),
            sql=(
                "SELECT l_suppkey, count(*) AS agg FROM lineitem "
                f"WHERE l_shipdate = {D1} GROUP BY l_suppkey"
            ),
        ),
        QuerySpec(
            name="Q3",
            table="lineitem",
            columns=[],
            filters={
                "lineitem": lambda row: D1 < row["l_shipdate"] < D2
            },
            filter_columns={"lineitem": ["l_shipdate"]},
            group_by=["l_suppkey"],
            aggregate=("COUNT", None),
            sql=(
                "SELECT l_suppkey, count(*) AS agg FROM lineitem "
                f"WHERE l_shipdate > {D1} AND l_shipdate < {D2} "
                "GROUP BY l_suppkey"
            ),
        ),
        QuerySpec(
            name="Q4",
            table="orders",
            columns=[],
            filters={"orders": lambda row: row["o_orderdate"] > D3},
            filter_columns={"orders": ["o_orderdate"]},
            group_by=["o_orderdate"],
            aggregate=("COUNT", None),
            sql=(
                "SELECT o_orderdate, count(*) AS agg FROM orders "
                f"WHERE o_orderdate > {D3} GROUP BY o_orderdate"
            ),
        ),
        QuerySpec(
            name="Q5",
            table="lineitem",
            columns=[],
            filters={"lineitem": lambda row: row["l_shipdate"] > D1},
            filter_columns={"lineitem": ["l_shipdate"]},
            group_by=["l_returnflag"],
            aggregate=("SUM", "l_quantity"),
            sql=(
                "SELECT l_returnflag, sum(l_quantity) AS agg FROM lineitem "
                f"WHERE l_shipdate > {D1} GROUP BY l_returnflag"
            ),
        ),
        QuerySpec(
            name="Q6",
            table="lineitem",
            columns=[],
            join=("lineitem", "l_orderkey", "orders", "o_orderkey"),
            filters={"orders": lambda row: row["o_orderdate"] > D3},
            filter_columns={"orders": ["o_orderdate"]},
            group_by=["o_orderdate"],
            aggregate=("COUNT", None),
            sql=(
                "SELECT o_orderdate, count(*) AS agg FROM lineitem "
                "JOIN orders ON l_orderkey = o_orderkey "
                f"WHERE o_orderdate > {D3} GROUP BY o_orderdate"
            ),
        ),
        QuerySpec(
            name="Q7",
            table="lineitem",
            columns=[],
            join=("lineitem", "l_orderkey", "orders", "o_orderkey"),
            filters={"orders": lambda row: row["o_orderdate"] == D4},
            filter_columns={"orders": ["o_orderdate"]},
            group_by=["l_suppkey"],
            aggregate=("COUNT", None),
            sql=(
                "SELECT l_suppkey, count(*) AS agg FROM lineitem "
                "JOIN orders ON l_orderkey = o_orderkey "
                f"WHERE o_orderdate = {D4} GROUP BY l_suppkey"
            ),
        ),
    ]


def reference_answer(spec: QuerySpec, data: CStoreBenchmarkData) -> list[dict]:
    """Pure-Python brute-force evaluation of a query spec, used to
    check both engines return identical answers."""
    if spec.join is not None:
        left_table, left_key, right_table, right_key = spec.join
        left_rows = [
            row
            for row in getattr(data, left_table)
            if spec.filters.get(left_table, lambda _: True)(row)
        ]
        right_rows = [
            row
            for row in getattr(data, right_table)
            if spec.filters.get(right_table, lambda _: True)(row)
        ]
        index: dict = {}
        for row in right_rows:
            index.setdefault(row[right_key], []).append(row)
        rows = [
            {**left_row, **right_row}
            for left_row in left_rows
            for right_row in index.get(left_row[left_key], ())
        ]
    else:
        rows = [
            row
            for row in getattr(data, spec.table)
            if spec.filters.get(spec.table, lambda _: True)(row)
        ]
    groups: dict[tuple, list] = {}
    func, column = spec.aggregate
    for row in rows:
        key = tuple(row[name] for name in spec.group_by)
        bucket = groups.setdefault(key, [])
        bucket.append(row[column] if column is not None else 1)
    if not groups and not spec.group_by:
        groups[()] = []
    out = []
    for key, values in groups.items():
        if func == "COUNT":
            agg = len(values)
        elif not values:
            agg = None  # SQL: non-COUNT aggregates over no rows are NULL
        elif func == "SUM":
            agg = sum(values)
        elif func == "MIN":
            agg = min(values)
        elif func == "MAX":
            agg = max(values)
        else:
            agg = sum(values) / len(values)
        out.append(dict(zip(spec.group_by, key), agg=agg))
    return out
