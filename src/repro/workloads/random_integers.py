"""Random-integer compression workload (section 8.2.1).

    In this experiment, we took a text file containing a million random
    integers between 1 and 10 million.

The generator reproduces the experiment's inputs: the integer list, its
text-file rendering (one number per line, the "raw" 7.5 MB baseline),
and helpers for the gzip / gzip+sort comparison rows of Table 4.
"""

from __future__ import annotations

import random
import zlib

#: The paper's parameters.
DEFAULT_COUNT = 1_000_000
VALUE_RANGE = (1, 10_000_000)


def generate(count: int = DEFAULT_COUNT, seed: int = 1) -> list[int]:
    """Uniform random integers in [1, 10M], deterministic by seed."""
    rng = random.Random(seed)
    low, high = VALUE_RANGE
    return [rng.randint(low, high) for _ in range(count)]


def as_text(values: list[int]) -> bytes:
    """The raw text-file rendering (numbers + newlines)."""
    return ("\n".join(str(value) for value in values) + "\n").encode("ascii")


def gzip_bytes(data: bytes) -> int:
    """Size of the zlib/gzip-compressed rendering (level 6, as gzip)."""
    return len(zlib.compress(data, level=6))


def table4a_rows(values: list[int]) -> dict[str, int]:
    """The sizes (bytes) of the four Table 4a storage treatments,
    except Vertica's own (measured separately against live storage)."""
    raw = as_text(values)
    sorted_raw = as_text(sorted(values))
    return {
        "raw": len(raw),
        "gzip": gzip_bytes(raw),
        "gzip+sort": gzip_bytes(sorted_raw),
    }
