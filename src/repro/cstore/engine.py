"""C-Store-2005-style execution engine: single-threaded, row-at-a-time.

The paper attributes Vertica's 2x win (Table 3) to vectorized
execution and better compression; this engine is the other side of
that comparison: tuples flow one dict at a time through Python
generators, predicates are evaluated per row, the "optimizer" takes
projections in declaration order and joins in query order (section
6.2: C-Store's minimal optimizer picked "the projections it reaches
first" with a random join order), and no SIP, prepass aggregation,
container pruning or runtime algorithm switching exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .storage import CStoreDatabase


@dataclass
class QuerySpec:
    """Declarative description of one benchmark query, interpretable by
    both engines.  ``filters`` map table -> row predicate; ``group_by``
    and ``aggregate`` describe an optional single-level aggregation;
    ``join`` is an optional (left_table, left_key, right_table,
    right_key) equi-join."""

    name: str
    table: str
    columns: list[str]
    filters: dict[str, Callable[[dict], bool]] = field(default_factory=dict)
    #: table -> columns the filter callables read (scans must fetch them).
    filter_columns: dict[str, list[str]] = field(default_factory=dict)
    join: tuple[str, str, str, str] | None = None
    group_by: list[str] = field(default_factory=list)
    #: (func, column_or_None) — func in COUNT/SUM/MIN/MAX/AVG
    aggregate: tuple[str, str | None] = ("COUNT", None)
    #: equivalent SQL text (for the Vertica side of the bench)
    sql: str = ""


class CStoreEngine:
    """Row-at-a-time interpreter over :class:`CStoreDatabase`."""

    def __init__(self, db: CStoreDatabase):
        self.db = db

    # -- operators (all row-at-a-time generators) ----------------------------

    def _scan(self, table_name: str, columns: list[str], predicate=None):
        """Full scan; no block pruning (the prototype read everything)."""
        for row in self.db.table(table_name).iter_rows(columns):
            if predicate is None or predicate(row):
                yield row

    def _hash_join(self, left_rows, right_rows, left_key: str, right_key: str):
        """Row-at-a-time hash join, inner always built from the right
        input in query order (no side choice, no size estimation)."""
        table: dict = {}
        for row in right_rows:
            table.setdefault(row[right_key], []).append(row)
        for left_row in left_rows:
            for right_row in table.get(left_row[left_key], ()):
                merged = dict(left_row)
                merged.update(right_row)
                yield merged

    def _aggregate(self, rows, group_by: list[str], func: str, column):
        groups: dict[tuple, list] = {}
        for row in rows:
            key = tuple(row[name] for name in group_by)
            state = groups.get(key)
            if state is None:
                state = groups[key] = [0, None, None, None]  # n, sum, min, max
            state[0] += 1
            if column is not None:
                value = row[column]
                if value is not None:
                    state[1] = value if state[1] is None else state[1] + value
                    if state[2] is None or value < state[2]:
                        state[2] = value
                    if state[3] is None or value > state[3]:
                        state[3] = value
        if not groups and not group_by:
            # SQL: a global aggregate over no rows still yields one row
            groups[()] = [0, None, None, None]
        out = []
        for key, (n, total, minimum, maximum) in groups.items():
            if func == "COUNT":
                value = n
            elif func == "SUM":
                value = total
            elif func == "MIN":
                value = minimum
            elif func == "MAX":
                value = maximum
            else:  # AVG
                value = None if not n else total / n
            out.append(dict(zip(group_by, key), agg=value))
        return out

    # -- query interpreter -------------------------------------------------------

    def run(self, spec: QuerySpec) -> list[dict]:
        """Execute a benchmark query spec."""
        needed = set(spec.columns) | set(spec.group_by)
        if spec.aggregate[1] is not None:
            needed.add(spec.aggregate[1])
        if spec.join is not None:
            left_table, left_key, right_table, right_key = spec.join
            left_columns = sorted(
                (needed | {left_key} | set(spec.filter_columns.get(left_table, ())))
                & set(self.db.table(left_table).table.column_names)
            )
            right_columns = sorted(
                (needed | {right_key} | set(spec.filter_columns.get(right_table, ())))
                & set(self.db.table(right_table).table.column_names)
            )
            rows = self._hash_join(
                self._scan(left_table, left_columns, spec.filters.get(left_table)),
                self._scan(right_table, right_columns, spec.filters.get(right_table)),
                left_key,
                right_key,
            )
        else:
            columns = sorted(
                (needed | set(spec.filter_columns.get(spec.table, ())))
                & set(self.db.table(spec.table).table.column_names)
            )
            rows = self._scan(spec.table, columns, spec.filters.get(spec.table))
        if spec.group_by or spec.aggregate:
            return self._aggregate(
                rows, spec.group_by, spec.aggregate[0], spec.aggregate[1]
            )
        return list(rows)
