"""The C-Store-2005-style baseline engine used by Table 3 (section 8.1)."""

from .engine import CStoreEngine, QuerySpec
from .storage import CStoreDatabase, CStoreTable

__all__ = ["CStoreEngine", "QuerySpec", "CStoreDatabase", "CStoreTable"]
