"""C-Store-2005-style storage: the baseline's column store.

Deliberately models the *research prototype* the paper benchmarks
against in Table 3, not Vertica:

* one projection per table, sorted on the first declared column;
* basic compression only — RLE on the sort column, plain storage
  elsewhere (the prototype lacked Vertica's "more sophisticated
  compression algorithms" and empirical per-block selection);
* tuple access is positional, join-index style: reconstructing a row
  fetches each column independently by position (section 3.2 explains
  how expensive this was in practice);
* read-only after load (the prototype's WOS/tuple-mover path was
  rudimentary); 32-bit era simplifications are noted but values are
  stored with the same serializers for a fair byte comparison.
"""

from __future__ import annotations

import os

from ..core.schema import TableDefinition
from ..storage.column_file import ColumnReader, ColumnWriter
from ..types import sort_key


class CStoreTable:
    """One table stored C-Store-prototype style."""

    def __init__(self, path: str, table: TableDefinition):
        self.path = path
        self.table = table
        self.sort_column = table.columns[0].name
        self._readers: dict[str, ColumnReader] = {}
        self.row_count = 0
        os.makedirs(path, exist_ok=True)

    def load(self, rows: list[dict]) -> None:
        """Bulk load (sorts by the first column, writes column files)."""
        ordered = sorted(rows, key=lambda row: sort_key(row[self.sort_column]))
        self.row_count = len(ordered)
        for column in self.table.columns:
            encoding = "RLE" if column.name == self.sort_column else "PLAIN"
            writer = ColumnWriter(column.dtype, encoding)
            writer.extend(row[column.name] for row in ordered)
            data, index = writer.finish()
            with open(os.path.join(self.path, f"{column.name}.dat"), "wb") as f:
                f.write(data)
            with open(os.path.join(self.path, f"{column.name}.pidx"), "wb") as f:
                f.write(index)
        self._readers.clear()

    def reader(self, column: str) -> ColumnReader:
        """Column reader (loaded lazily)."""
        reader = self._readers.get(column)
        if reader is None:
            with open(os.path.join(self.path, f"{column}.dat"), "rb") as f:
                data = f.read()
            with open(os.path.join(self.path, f"{column}.pidx"), "rb") as f:
                index = f.read()
            reader = ColumnReader(data, index)
            self._readers[column] = reader
        return reader

    def fetch_value(self, column: str, position: int):
        """Join-index-style positional fetch of a single value."""
        return self.reader(column).get(position)

    def iter_rows(self, columns: list[str]):
        """Row-at-a-time iteration (the prototype's execution model):
        one dict per row, each value fetched per row."""
        readers = [self.reader(column) for column in columns]
        for position in range(self.row_count):
            yield {
                column: reader.get(position)
                for column, reader in zip(columns, readers)
            }

    def data_size_bytes(self) -> int:
        """On-disk bytes of the column data files."""
        total = 0
        for column in self.table.columns:
            total += os.path.getsize(os.path.join(self.path, f"{column.name}.dat"))
        return total


class CStoreDatabase:
    """A set of C-Store-style tables under one directory."""

    def __init__(self, path: str):
        self.path = path
        self.tables: dict[str, CStoreTable] = {}
        os.makedirs(path, exist_ok=True)

    def create_table(self, table: TableDefinition) -> CStoreTable:
        store = CStoreTable(os.path.join(self.path, table.name), table)
        self.tables[table.name] = store
        return store

    def load(self, table_name: str, rows: list[dict]) -> None:
        self.tables[table_name].load(rows)

    def table(self, name: str) -> CStoreTable:
        return self.tables[name]

    def total_data_bytes(self) -> int:
        """Total on-disk user data across tables."""
        return sum(store.data_size_bytes() for store in self.tables.values())
