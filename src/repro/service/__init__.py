"""Workload management: the concurrent multi-session SQL service.

The paper's section 7 subsystem — sessions, resource pools with memory
budgets, admission queues, statement timeouts — reproduced over the
existing engine.  Public surface:

* :class:`SqlService` — the front door: owns the session registry,
  the resource governor, the statement gate and the degradation
  ladder (overload → queue → reject; slow → timeout/cancel; deadlock
  → one victim; quorum loss → read-only);
* :class:`ServiceSession` — one governed client connection;
* :class:`ResourceGovernor` / :class:`PoolConfig` /
  :class:`AdmissionTicket` — Vertica-style named resource pools;
* :class:`CancelToken` — the cooperative cancel/deadline flag checked
  by operator pull loops and lock waits;
* :class:`StatementGate` — the statement/commit read-write bracket.
"""

from .cancel import CancelToken
from .gate import StatementGate
from .governor import AdmissionTicket, PoolConfig, ResourceGovernor
from .service import SqlService
from .session import ServiceSession

__all__ = [
    "AdmissionTicket",
    "CancelToken",
    "PoolConfig",
    "ResourceGovernor",
    "ServiceSession",
    "SqlService",
    "StatementGate",
]
