"""The resource governor: Vertica-style named resource pools.

Section 7 of the paper describes workload management as *resource
pools*: named budgets of memory and concurrency that statements are
admitted against, queue for, or are rejected from.  This module is
that layer for the reproduction.  Each :class:`PoolConfig` carries the
four knobs that matter:

* ``memory_budget_rows`` — total working memory (in rows, the same
  deterministic byte-proxy the operator :class:`ResourcePool` uses)
  all concurrently running statements of the pool may pin;
* ``max_concurrency`` — statements allowed to run at once;
* ``queue_depth`` — statements allowed to *wait* for a slot; a
  submission that finds the queue full is rejected immediately;
* ``queue_timeout_ticks`` — how long (simulated-clock ticks) a queued
  statement waits before giving up with
  :class:`repro.errors.AdmissionTimeoutError`.

Admission is a deterministic two-phase state machine so every decision
is replayable:

1. :meth:`ResourceGovernor.submit` is synchronous and non-blocking —
   under one mutex it either **grants** (capacity and memory fit),
   **queues** (FIFO, queue not full) or **rejects** (queue full) and
   returns an :class:`AdmissionTicket` in that state.  Single-threaded
   tests drive this directly: the same submission sequence always
   produces the same grants/queue/rejections.
2. :meth:`ResourceGovernor.admit` wraps ``submit`` for threaded
   callers: a queued ticket parks on the governor's condition variable
   (bounded wake slices, so cancellation and clock advances are never
   missed — the "backoff" of the degradation ladder) until a
   :meth:`release` promotes it, its queue deadline passes, or its
   cancel token fires.

Timeouts are *tick*-driven: a queued ticket expires only when the
:class:`SimulatedClock` passes its deadline (``on_tick`` sweeps
expiry), so overload scenarios are exactly reproducible.  A wall-clock
safety valve (:attr:`ResourceGovernor.SAFETY_VALVE_SECONDS`) exists
solely so a mis-driven test hangs for seconds, not forever; it is far
outside any deterministic test's horizon.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import AdmissionTimeoutError, ResourceExceededError
from ..monitor import METRICS

#: Ticket lifecycle states.
QUEUED = "queued"
GRANTED = "granted"
REJECTED = "rejected"
TIMED_OUT = "timed_out"
CANCELLED = "cancelled"
RELEASED = "released"


@dataclass(frozen=True)
class PoolConfig:
    """Operator-facing knobs of one named resource pool."""

    name: str
    #: Total rows of working memory the pool's running statements may
    #: pin at once (the governor's *global* view of the per-operator
    #: budgets of section 6.1).
    memory_budget_rows: int = 1_000_000
    #: Statements allowed to execute concurrently.
    max_concurrency: int = 4
    #: Statements allowed to wait for a slot before new arrivals are
    #: rejected outright.
    queue_depth: int = 8
    #: Simulated-clock ticks a queued statement waits before
    #: :class:`AdmissionTimeoutError`.
    queue_timeout_ticks: int = 10
    #: Memory granted to one statement when the submitter does not ask
    #: for a specific amount; None = budget / max_concurrency.
    per_query_memory_rows: int | None = None

    def default_grant(self) -> int:
        """Rows one statement receives absent an explicit request."""
        if self.per_query_memory_rows is not None:
            return self.per_query_memory_rows
        return max(self.memory_budget_rows // max(self.max_concurrency, 1), 1)


@dataclass
class AdmissionTicket:
    """One statement's admission record, from submit to release."""

    ticket_id: int
    pool: str
    memory_rows: int
    session_id: int | None = None
    state: str = QUEUED
    #: Tick the ticket was submitted.
    submit_tick: int = 0
    #: Tick a queued ticket gives up (submit + queue_timeout_ticks).
    deadline_tick: int = 0
    #: Tick the grant happened (== submit_tick for immediate grants).
    grant_tick: int | None = None
    #: Why a ticket left the queue without running, for observability.
    detail: str = ""

    @property
    def queued_ticks(self) -> int:
        """Ticks spent waiting before the grant (0 if immediate)."""
        if self.grant_tick is None:
            return 0
        return self.grant_tick - self.submit_tick


@dataclass
class _PoolState:
    """Mutable accounting of one pool; guarded by the governor mutex."""

    config: PoolConfig
    #: ticket_id -> memory rows of currently running statements.
    running: dict[int, int] = field(default_factory=dict)
    #: FIFO of queued tickets.
    queue: list[AdmissionTicket] = field(default_factory=list)
    admitted_total: int = 0
    queued_total: int = 0
    rejected_total: int = 0
    timed_out_total: int = 0
    cancelled_total: int = 0
    peak_running: int = 0

    @property
    def memory_in_use(self) -> int:
        return sum(self.running.values())

    def fits(self, memory_rows: int) -> bool:
        """Whether one more statement of this size can run right now."""
        return (
            len(self.running) < self.config.max_concurrency
            and self.memory_in_use + memory_rows
            <= self.config.memory_budget_rows
        )


class ResourceGovernor:
    """Admits, queues, rejects and reclaims statements across pools."""

    #: Upper bound between wakeups while parked in :meth:`admit`; the
    #: re-check is what observes clock advances and cancellations that
    #: raced the notify.
    WAKE_SLICE = 0.05

    #: Wall-clock bound on one blocking admission — a mis-driven test's
    #: failure mode is a seconds-long hang plus a clear error, never a
    #: silent deadlock.  Deterministic tests finish orders of magnitude
    #: before this fires.
    SAFETY_VALVE_SECONDS = 30.0

    def __init__(self, clock, pools: list[PoolConfig] | None = None):
        self.clock = clock
        self._cond = threading.Condition()
        self._pools: dict[str, _PoolState] = {}  # concurrency: guarded-by(self._cond)
        self._next_ticket = 1  # concurrency: guarded-by(self._cond)
        #: Optional Data Collector (duck-typed; set by the SQL
        #: service).  Every admission outcome lands in
        #: ``dc_resource_acquisitions``.  The collector's internal
        #: mutex nests strictly inside ``self._cond``; recording defers
        #: segment flushes so no disk I/O (or injected ``dc.flush.*``
        #: fault) ever runs inside this critical section.
        self.collector = None
        for config in pools or [PoolConfig("general")]:
            self._pools[config.name] = _PoolState(config)

    def _dc_record(self, outcome: str, ticket: AdmissionTicket) -> None:
        """Mirror one admission outcome into the collector."""
        if self.collector is None:
            return
        self.collector.record(
            "resource_acquisitions",
            outcome,
            defer_flush=True,
            pool_name=ticket.pool,
            session_id=ticket.session_id,
            ticket_id=ticket.ticket_id,
            memory_rows=ticket.memory_rows,
            queued_ticks=ticket.queued_ticks,
            detail=ticket.detail,
        )

    # -- configuration ---------------------------------------------------

    def add_pool(self, config: PoolConfig) -> None:
        """Register (or replace) a named pool."""
        with self._cond:
            self._pools[config.name] = _PoolState(config)

    def pool_names(self) -> list[str]:
        """Registered pool names, sorted."""
        with self._cond:
            return sorted(self._pools)

    def _pool(self, name: str) -> _PoolState:
        try:
            return self._pools[name]
        except KeyError:
            raise AdmissionTimeoutError(
                f"unknown resource pool {name!r}; have {sorted(self._pools)}"
            ) from None

    # -- admission --------------------------------------------------------

    def submit(
        self,
        pool_name: str = "general",
        memory_rows: int | None = None,
        session_id: int | None = None,
    ) -> AdmissionTicket:
        """Non-blocking admission decision: grant, queue or reject.

        Returns the ticket in state ``granted``, ``queued`` or
        ``rejected`` — pure function of governor state and arguments,
        so submission sequences replay exactly.  Raises
        :class:`ResourceExceededError` if the request can *never* fit
        the pool's total budget (queueing would be a guaranteed
        timeout).
        """
        with self._cond:
            pool = self._pool(pool_name)
            rows = (
                memory_rows
                if memory_rows is not None
                else pool.config.default_grant()
            )
            if rows > pool.config.memory_budget_rows:
                raise ResourceExceededError(
                    f"statement needs {rows} rows of memory; pool "
                    f"{pool_name!r} budget is {pool.config.memory_budget_rows}"
                )
            now = self.clock.now
            ticket = AdmissionTicket(
                ticket_id=self._next_ticket,
                pool=pool_name,
                memory_rows=rows,
                session_id=session_id,
                submit_tick=now,
                deadline_tick=now + pool.config.queue_timeout_ticks,
            )
            self._next_ticket += 1
            if pool.fits(rows) and not pool.queue:
                self._grant(pool, ticket)
            elif len(pool.queue) < pool.config.queue_depth:
                ticket.state = QUEUED
                pool.queue.append(ticket)
                pool.queued_total += 1
                METRICS.inc("service.admission_queued")
                self._dc_record(QUEUED, ticket)
            else:
                ticket.state = REJECTED
                ticket.detail = (
                    f"pool {pool_name!r} saturated: "
                    f"{len(pool.running)} running, "
                    f"{len(pool.queue)}/{pool.config.queue_depth} queued"
                )
                pool.rejected_total += 1
                METRICS.inc("service.admission_rejected")
                self._dc_record(REJECTED, ticket)
            return ticket

    def admit(
        self,
        pool_name: str = "general",
        memory_rows: int | None = None,
        session_id: int | None = None,
        cancel=None,
    ) -> AdmissionTicket:
        """Blocking admission: submit, then wait out the queue.

        Returns a granted ticket, or raises
        :class:`AdmissionTimeoutError` (queue full, or queued past the
        pool's tick deadline) / whatever ``cancel`` raises (statement
        cancelled while queued).  Any exception path deregisters the
        ticket — nothing is held on failure.
        """
        ticket = self.submit(pool_name, memory_rows, session_id)
        if ticket.state == GRANTED:
            return ticket
        if ticket.state == REJECTED:
            raise AdmissionTimeoutError(ticket.detail)
        valve = time.monotonic() + self.SAFETY_VALVE_SECONDS
        # Local alias keeps the R9 name-based call resolution from
        # conflating this callback (a CancelToken.check — raises, takes
        # no locks) with methods named ``cancel`` elsewhere.
        check_cancel = cancel
        with self._cond:
            while True:
                if ticket.state == GRANTED:
                    return ticket
                if ticket.state == TIMED_OUT:
                    raise AdmissionTimeoutError(ticket.detail)
                if check_cancel is not None:
                    try:
                        check_cancel()
                    except BaseException:
                        self._leave_queue(ticket, CANCELLED, "cancelled")
                        raise
                self._expire_locked()
                if ticket.state == QUEUED and time.monotonic() >= valve:
                    self._leave_queue(
                        ticket, TIMED_OUT, "wall-clock safety valve"
                    )
                    raise AdmissionTimeoutError(
                        f"admission wait exceeded the "
                        f"{self.SAFETY_VALVE_SECONDS:.0f}s safety valve "
                        f"(clock at tick {self.clock.now}, deadline tick "
                        f"{ticket.deadline_tick}); is anything advancing "
                        f"the clock or releasing grants?"
                    )
                if ticket.state == QUEUED:
                    self._cond.wait(self.WAKE_SLICE)

    # -- lifecycle --------------------------------------------------------

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a granted ticket's slot and memory; promote waiters.

        Idempotent: releasing a ticket twice (or one that never ran)
        is a no-op, so error-path ``finally`` blocks can call it
        unconditionally.
        """
        with self._cond:
            pool = self._pools.get(ticket.pool)
            if pool is None or ticket.ticket_id not in pool.running:
                return
            del pool.running[ticket.ticket_id]
            ticket.state = RELEASED
            METRICS.inc("service.grants_released")
            self._pump(pool)
            self._cond.notify_all()

    def cancel_queued(self, ticket: AdmissionTicket) -> None:
        """Withdraw a queued ticket (session cancelled while waiting)."""
        with self._cond:
            self._leave_queue(ticket, CANCELLED, "cancelled while queued")
            self._cond.notify_all()

    def on_tick(self) -> None:
        """Clock-advance hook: expire queued tickets past deadline and
        wake parked waiters to observe the new time.  Tests (and any
        component that advances the SimulatedClock) call this after
        ``clock.advance``."""
        with self._cond:
            self._expire_locked()
            self._cond.notify_all()

    # -- internals (caller holds self._cond) ------------------------------

    def _grant(self, pool: _PoolState, ticket: AdmissionTicket) -> None:
        ticket.state = GRANTED
        ticket.grant_tick = self.clock.now
        pool.running[ticket.ticket_id] = ticket.memory_rows
        pool.admitted_total += 1
        pool.peak_running = max(pool.peak_running, len(pool.running))
        METRICS.inc("service.admitted")
        self._dc_record(GRANTED, ticket)

    def _pump(self, pool: _PoolState) -> None:
        """Promote queued tickets FIFO while the head fits.  Strict
        head-of-line order keeps promotion deterministic (no small
        statement ever jumps a big one, so arrival order alone decides
        who runs)."""
        while pool.queue and pool.fits(pool.queue[0].memory_rows):
            self._grant(pool, pool.queue.pop(0))

    def _expire_locked(self) -> None:
        now = self.clock.now
        for pool in self._pools.values():
            expired = [t for t in pool.queue if t.deadline_tick <= now]
            for ticket in expired:
                pool.queue.remove(ticket)
                ticket.state = TIMED_OUT
                ticket.detail = (
                    f"queued at tick {ticket.submit_tick}, deadline tick "
                    f"{ticket.deadline_tick} passed at tick {now} in pool "
                    f"{ticket.pool!r}"
                )
                pool.timed_out_total += 1
                METRICS.inc("service.admission_timeouts")
                self._dc_record(TIMED_OUT, ticket)
            if expired:
                self._pump(pool)

    def _leave_queue(
        self, ticket: AdmissionTicket, state: str, detail: str
    ) -> None:
        pool = self._pools.get(ticket.pool)
        if pool is None or ticket not in pool.queue:
            return
        pool.queue.remove(ticket)
        ticket.state = state
        ticket.detail = detail
        if state == CANCELLED:
            pool.cancelled_total += 1
            METRICS.inc("service.admission_cancelled")
        self._dc_record(state, ticket)

    # -- observability ----------------------------------------------------

    def pool_rows(self) -> list[dict]:
        """One dict per pool for ``v_monitor.resource_pools``."""
        with self._cond:
            rows = []
            for name in sorted(self._pools):
                pool = self._pools[name]
                config = pool.config
                rows.append(
                    {
                        "pool_name": name,
                        "memory_budget_rows": config.memory_budget_rows,
                        "memory_in_use_rows": pool.memory_in_use,
                        "max_concurrency": config.max_concurrency,
                        "running": len(pool.running),
                        "queue_depth": config.queue_depth,
                        "queued": len(pool.queue),
                        "queue_timeout_ticks": config.queue_timeout_ticks,
                        "admitted_total": pool.admitted_total,
                        "queued_total": pool.queued_total,
                        "rejected_total": pool.rejected_total,
                        "timed_out_total": pool.timed_out_total,
                        "cancelled_total": pool.cancelled_total,
                        "peak_running": pool.peak_running,
                    }
                )
            return rows

    def assert_idle(self) -> None:
        """Raise AssertionError unless every pool has zero running
        grants and an empty queue — the no-leak postcondition the
        overload tests assert after the storm passes."""
        with self._cond:
            for name in sorted(self._pools):
                pool = self._pools[name]
                if pool.running or pool.queue:
                    raise AssertionError(
                        f"pool {name!r} not idle: {len(pool.running)} "
                        f"running grants, {len(pool.queue)} queued"
                    )
