"""Cooperative statement cancellation and deadline tokens.

A :class:`CancelToken` is the single flag a running statement shares
with the outside world: the service session that started it, the
statement-timeout bookkeeping, and an operator pull loop deep inside
the executor all observe the same object.  Cancellation is entirely
cooperative — nothing is interrupted mid-block; instead every
checkpoint (operator pull boundaries, lock-wait wakeups, failover
retries) calls :meth:`CancelToken.check`, which raises
:class:`repro.errors.QueryCancelledError` (or its
:class:`repro.errors.StatementTimeoutError` subclass) once the flag is
set or the deadline has passed.  The raising path then unwinds through
ordinary ``finally`` blocks, releasing locks, pool grants and trace
spans exactly as any other statement error would.

Deadlines are expressed on the cluster's :class:`SimulatedClock`
(integer ticks), never wall time, so timeout behaviour is replayable:
a statement times out if and only if the test advanced the clock past
its deadline — the same decision on every machine.
"""

from __future__ import annotations

from ..errors import QueryCancelledError, StatementTimeoutError


class CancelToken:
    """Shared cancel flag + optional tick deadline for one statement.

    Thread-safety: :meth:`cancel` performs a single attribute store
    (atomic in CPython) and :meth:`check` a pair of reads; there is no
    lock because the worst race — a checkpoint reading the flag one
    pull before the store lands — only delays cancellation by one
    block, which is within the cooperative contract.
    """

    __slots__ = ("clock", "deadline_tick", "_cancelled", "_reason")

    def __init__(self, clock=None, deadline_tick: int | None = None):
        #: SimulatedClock consulted for deadline checks (None = no
        #: deadline, explicit cancellation only).
        self.clock = clock
        #: Tick at (or after) which :meth:`check` raises
        #: :class:`StatementTimeoutError`.
        self.deadline_tick = deadline_tick
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "cancelled by session") -> None:
        """Flip the flag; every later :meth:`check` raises."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the flag is set (deadline expiry not included)."""
        return self._cancelled

    def expired(self) -> bool:
        """Whether the tick deadline (if any) has passed."""
        return (
            self.deadline_tick is not None
            and self.clock is not None
            and self.clock.now >= self.deadline_tick
        )

    def check(self) -> None:
        """Raise if cancelled or past deadline; otherwise return.

        This is the checkpoint every cooperative site calls:
        ``Operator.blocks()`` between blocks, ``LockManager`` waits
        between wakeups, the executor between failover retries, and
        the governor between admission-queue wakeups.
        """
        if self._cancelled:
            raise QueryCancelledError(self._reason)
        if self.expired():
            raise StatementTimeoutError(
                f"statement deadline (tick {self.deadline_tick}) passed "
                f"at tick {self.clock.now}"
            )
