"""The multi-session SQL service: front door, governor, degradation.

:class:`SqlService` is the concurrency boundary of the reproduction:
many client threads hold :class:`ServiceSession` objects and execute
statements concurrently; below the service, the engine keeps its
single-writer storage discipline (commits serialize through the
statement gate and the database commit lock; snapshot reads run lock
free).  The service owns:

* the **session registry** — numbered sessions with live state for
  ``v_monitor.sessions``;
* the **resource governor** — named pools admitting/queueing/rejecting
  statements (``v_monitor.resource_pools``);
* the **degradation ladder** — the ordered responses to trouble, each
  strictly smaller than the last:

  1. *healthy*: statements admitted and run;
  2. *pool saturation*: statements queue (bounded, tick-timed), then
     reject with :class:`AdmissionTimeoutError` — overload sheds load
     instead of piling it up;
  3. *slow/stuck statements*: statement timeouts and client
     cancellation unwind cooperatively, releasing locks, grants and
     spans;
  4. *deadlock*: exactly one transaction of the cycle is chosen victim
     (deterministically) and rolled back; the others proceed;
  5. *quorum loss*: the service steps down to **read-only** — writes
     fail fast with :class:`ReadOnlyModeError`, reads keep answering —
     and steps back up automatically once quorum returns.
"""

from __future__ import annotations

import threading

from ..errors import ReadOnlyModeError
from ..monitor import METRICS
from ..txn import IsolationLevel
from .gate import StatementGate
from .governor import PoolConfig, ResourceGovernor
from .session import CLOSED, ServiceSession


class SqlService:
    """A threaded, governed, multi-session front end over one Database."""

    def __init__(
        self,
        db,
        pools: list[PoolConfig] | None = None,
        default_pool: str = "general",
        statement_timeout_ticks: int | None = None,
        lock_timeout_seconds: float = 5.0,
        autocommit: bool = True,
    ):
        self.db = db
        self.clock = db.cluster.clock
        self.governor = ResourceGovernor(self.clock, pools)
        # admission outcomes land in dc_resource_acquisitions.
        self.governor.collector = getattr(db.cluster, "dc", None)
        self.default_pool = default_pool
        self.statement_timeout_ticks = statement_timeout_ticks
        self.lock_timeout_seconds = lock_timeout_seconds
        self.autocommit = autocommit
        self.gate = StatementGate()
        self._mutex = threading.Lock()
        self._sessions: dict[int, ServiceSession] = {}  # concurrency: guarded-by(self._mutex)
        self._next_session = 1  # concurrency: guarded-by(self._mutex)
        self._read_only = False  # concurrency: guarded-by(self._mutex)
        self._read_only_reason = ""  # concurrency: guarded-by(self._mutex)
        db.service = self

    # -- sessions ----------------------------------------------------------

    def connect(
        self,
        pool: str | None = None,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        statement_timeout_ticks: int | None = None,
    ) -> ServiceSession:
        """Open a session bound to ``pool`` (default pool when None)."""
        with self._mutex:
            session_id = self._next_session
            self._next_session += 1
            session = ServiceSession(
                self,
                session_id,
                pool or self.default_pool,
                isolation=isolation,
                statement_timeout_ticks=(
                    statement_timeout_ticks
                    if statement_timeout_ticks is not None
                    else self.statement_timeout_ticks
                ),
            )
            self._sessions[session_id] = session
            METRICS.inc("service.sessions_opened")
            return session

    def _forget(self, session_id: int) -> None:
        """Drop a closed session from the registry."""
        with self._mutex:
            self._sessions.pop(session_id, None)

    def sessions(self) -> list[ServiceSession]:
        """Live sessions, ordered by id."""
        with self._mutex:
            return [self._sessions[k] for k in sorted(self._sessions)]

    def shutdown(self) -> None:
        """Cancel every in-flight statement and close every session."""
        for session in self.sessions():
            session.cancel("service shutdown")
        for session in self.sessions():
            if session.state != CLOSED:
                session.close()
        self.db.service = None

    # -- degradation ladder ------------------------------------------------

    @property
    def read_only(self) -> bool:
        """Whether the service is currently degraded to read-only."""
        with self._mutex:
            return self._read_only

    def enter_read_only(self, reason: str) -> None:
        """Step down: reject writes, keep serving reads (rung 5)."""
        with self._mutex:
            if not self._read_only:
                self._read_only = True
                self._read_only_reason = reason
                METRICS.inc("service.read_only_entered")
                METRICS.set_gauge("service.read_only", 1)

    def exit_read_only(self) -> None:
        """Step back up to read-write."""
        with self._mutex:
            if self._read_only:
                self._read_only = False
                self._read_only_reason = ""
                METRICS.set_gauge("service.read_only", 0)

    def require_writable(self) -> None:
        """Gate for write statements: raise
        :class:`ReadOnlyModeError` while degraded.  Steps down
        proactively when quorum is already gone (the write would only
        discover it at commit, after doing work), and steps back up
        automatically when quorum has returned.
        """
        has_quorum = self.db.cluster.membership.has_quorum()
        with self._mutex:
            if not has_quorum and not self._read_only:
                self._read_only = True
                self._read_only_reason = "quorum lost"
                METRICS.inc("service.read_only_entered")
                METRICS.set_gauge("service.read_only", 1)
            if self._read_only and has_quorum:
                # quorum returned: step back up and let the write run.
                self._read_only = False
                self._read_only_reason = ""
                METRICS.set_gauge("service.read_only", 0)
            if self._read_only:
                raise ReadOnlyModeError(
                    f"service is read-only ({self._read_only_reason}); "
                    f"writes rejected until quorum returns"
                )

    # -- observability -----------------------------------------------------

    def session_rows(self) -> list[dict]:
        """One dict per live session for ``v_monitor.sessions``."""
        rows = []
        for session in self.sessions():
            rows.append(
                {
                    "session_id": session.session_id,
                    "state": session.state,
                    "pool_name": session.pool,
                    "isolation": session.isolation.name,
                    "txn_id": session.txn_id,
                    "current_statement": session.current_statement,
                    "statements_run": session.statements_run,
                    "statements_failed": session.statements_failed,
                    "last_error": session.last_error,
                }
            )
        return rows
