"""Service sessions: governed, cancellable statement execution.

A :class:`ServiceSession` is one client's connection to the
:class:`repro.service.SqlService`.  It wraps a core
:class:`repro.core.database.Session` (which owns the transaction and
its locks) and adds the workload-management lifecycle around every
statement:

1. **classify** — parse the statement once and decide whether it
   writes (INSERT/UPDATE/DELETE/COPY/DDL) or only reads;
2. **degradation gate** — writes are rejected fast with
   :class:`repro.errors.ReadOnlyModeError` while the service is
   degraded to read-only (quorum loss);
3. **admission** — the resource governor grants, queues or rejects the
   statement against the session's resource pool;
4. **governed run** — the statement executes with a fresh
   :class:`CancelToken` (deadline = statement timeout) installed on
   the core session, a workload policy sized to the pool grant, and
   the service's statement gate held shared;
5. **reclaim** — the pool grant, the cancel token, and (on error) the
   transaction's locks are released on every exit path, success or
   not.

States move ``idle → queued → running → idle`` (or ``closed``); the
``v_monitor.sessions`` table renders them live.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import (
    QueryCancelledError,
    QuorumLossError,
    ReadOnlyModeError,
    TransactionError,
)
from ..monitor import METRICS
from ..txn import IsolationLevel
from .cancel import CancelToken

#: Session lifecycle states (``v_monitor.sessions.state``).
IDLE = "idle"
QUEUED = "queued"
RUNNING = "running"
CLOSED = "closed"

#: AST statement class names that mutate data or metadata.
_WRITE_STATEMENTS = {
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "CopyStatement",
    "CreateTableStatement",
    "CreateProjectionStatement",
    "DropTableStatement",
}


class ServiceSession:
    """One governed client connection; created by ``SqlService.connect``."""

    def __init__(
        self,
        service,
        session_id: int,
        pool: str,
        isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        statement_timeout_ticks: int | None = None,
    ):
        self.service = service
        self.session_id = session_id
        self.pool = pool
        #: None = no deadline; otherwise ticks from statement start to
        #: :class:`repro.errors.StatementTimeoutError`.
        self.statement_timeout_ticks = statement_timeout_ticks
        self._core = service.db.session(isolation)
        self._core.lock_block = True
        self._core.lock_timeout = service.lock_timeout_seconds
        # stamp the core session so the SQL front end can attribute
        # dc_requests_completed records to this session and pool.
        self._core.service_session_id = session_id
        self._core.service_pool = pool
        self.state = IDLE
        self.current_statement: str | None = None
        self.statements_run = 0
        self.statements_failed = 0
        self.last_error: str | None = None
        #: Token of the in-flight statement (None when idle); kept so
        #: :meth:`cancel` can reach a statement from another thread.
        self._token: CancelToken | None = None

    # -- introspection ----------------------------------------------------

    @property
    def txn_id(self) -> int | None:
        """The open transaction's id, if a transaction is open."""
        txn = self._core.txn
        return txn.txn_id if txn is not None else None

    @property
    def isolation(self) -> IsolationLevel:
        """The session's isolation level."""
        return self._core.isolation

    # -- statement execution ----------------------------------------------

    def execute(self, text: str, copy_rows: Iterable | None = None):
        """Execute one SQL statement through the full governed path.

        Returns what the SQL front end returns (rows for SELECT, plan
        text for EXPLAIN, a CopyResult for COPY...).  Raises
        :class:`AdmissionTimeoutError` when the pool turns the
        statement away, :class:`ReadOnlyModeError` for writes while
        degraded, :class:`QueryCancelledError` /
        :class:`StatementTimeoutError` when cancelled mid-flight, and
        :class:`DeadlockError` when this statement is the chosen
        victim (the transaction is rolled back first).
        """
        if self.state == CLOSED:
            raise TransactionError(
                f"session {self.session_id} is closed"
            )
        writes = self._classify(text)
        service = self.service
        if writes:
            service.require_writable()
        token = CancelToken(
            clock=service.clock,
            deadline_tick=(
                service.clock.now + self.statement_timeout_ticks
                if self.statement_timeout_ticks is not None
                else None
            ),
        )
        self._token = token
        self.current_statement = text
        self.state = QUEUED
        try:
            ticket = service.governor.admit(
                self.pool,
                session_id=self.session_id,
                cancel=token.check,
            )
        except BaseException:
            self.state = IDLE
            self.current_statement = None
            self._token = None
            raise
        self.state = RUNNING
        try:
            result = self._run_governed(text, copy_rows, ticket)
            self.statements_run += 1
            return result
        except QuorumLossError as exc:
            self._fail(exc)
            service.enter_read_only(str(exc))
            raise
        except BaseException as exc:
            self._fail(exc)
            raise
        finally:
            service.governor.release(ticket)
            self._core.cancel_token = None
            self._core.workload_policy = None
            self._token = None
            self.current_statement = None
            if self.state != CLOSED:
                self.state = IDLE

    def _run_governed(self, text: str, copy_rows, ticket):
        """The single sanctioned entry into the SQL front end (replint
        R11): every service statement reaches ``execute_sql`` through
        here, carrying a pool grant, a cancel token, and the statement
        gate — never through ``Database.sql()``."""
        from ..execution.resource import WorkloadPolicy
        from ..sql import execute_sql

        service = self.service
        self._core.cancel_token = self._token
        self._core.workload_policy = WorkloadPolicy(
            query_memory_rows=ticket.memory_rows
        )
        with service.gate.shared():
            result = execute_sql(self._core, text, copy_rows=copy_rows)
        if service.autocommit and self._core.txn is not None:
            if self._core.txn.has_dml:
                self.commit()
            else:
                # read-only: commit at the snapshot epoch to release
                # the snapshot and any S locks; no apply step, so the
                # exclusive commit bracket is unnecessary.
                self._core.commit()
        METRICS.inc("service.statements")
        return result

    def _fail(self, exc: BaseException) -> None:
        """Error-path bookkeeping: roll back the open transaction (which
        releases its locks) and record the failure."""
        self.statements_failed += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        METRICS.inc("service.statement_errors")
        if self._core.txn is not None:
            self._core.rollback()

    # -- transaction control ----------------------------------------------

    def commit(self) -> int:
        """Commit the open transaction under the commit bracket of the
        statement gate; returns the commit epoch."""
        with self.service.gate.exclusive():
            return self._core.commit()

    def rollback(self) -> None:
        """Abort the open transaction and release its locks."""
        self._core.rollback()

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Cancel the in-flight statement (callable from any thread).

        Cooperative: the statement observes the flag at its next
        checkpoint — operator pull, lock wakeup, admission wakeup —
        and unwinds with :class:`QueryCancelledError`.
        """
        token = self._token
        if token is not None:
            token.cancel(reason)
            # prod parked waiters so cancellation is prompt.
            self.service.db.cluster.locks.wake_waiters()
            self.service.governor.on_tick()

    def close(self) -> None:
        """End the session: roll back any open transaction, mark closed."""
        if self._core.txn is not None:
            self._core.rollback()
        self.state = CLOSED
        self.service._forget(self.session_id)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _classify(text: str) -> bool:
        """Whether the statement writes data or metadata.  Parses the
        text (the front end parses again — two cheap parses beat
        guessing from keywords and misclassifying a write)."""
        from ..sql.parser import parse

        statement = parse(text)
        return type(statement).__name__ in _WRITE_STATEMENTS
