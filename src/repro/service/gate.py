"""The statement gate: a writer-preference read/write lock.

Concurrent sessions interact with the storage substrate in exactly two
shapes: **statements** (snapshot reads and DML buffering — many at
once, touching only immutable committed state plus their own
transaction buffers) and **commit application** (one at a time,
mutating WOS buffers, delete vectors and ROS container maps for
everyone).  The service therefore brackets every statement body in the
*shared* side of this gate and every commit's apply step in the
*exclusive* side — the same division of labour as Vertica's global
catalog lock, which is held only for the commit critical section, not
for the life of a transaction.

Writer preference: once a committer is waiting, new readers queue
behind it.  Commits are short (they move buffered rows, they do not
scan), so preferring them bounds commit latency under read storms
instead of starving writers.

Deadlock safety: a shared holder may park inside the lock *manager*
(waiting for a table lock another session holds) while it holds this
gate; that wait is always bounded — lock waits carry timeouts and
cancel flags — so an exclusive waiter is delayed, never deadlocked.
The gate itself is never acquired while holding a lock-manager mutex
(gate → table locks is the only order that exists in the codebase,
enforced by the R9 whole-program lock-order analysis).
"""

from __future__ import annotations

import threading


class StatementGate:
    """Writer-preference shared/exclusive lock for statement vs commit."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0  # concurrency: guarded-by(self._cond)
        self._writer = False  # concurrency: guarded-by(self._cond)
        self._writers_waiting = 0  # concurrency: guarded-by(self._cond)

    # -- shared (statement) side ------------------------------------------

    def acquire_shared(self) -> None:
        """Enter the shared side; blocks while a commit runs or waits."""
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        """Leave the shared side; wakes a waiting committer when last out."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive (commit) side ------------------------------------------

    def acquire_exclusive(self) -> None:
        """Enter the exclusive side; blocks until all statements drain."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_exclusive(self) -> None:
        """Leave the exclusive side; wakes everyone."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # -- context-manager sugar --------------------------------------------

    class _Side:
        """Context manager for one side of the gate."""

        __slots__ = ("_enter", "_exit")

        def __init__(self, enter, leave):
            self._enter = enter
            self._exit = leave

        def __enter__(self) -> None:
            self._enter()

        def __exit__(self, *exc: object) -> None:
            self._exit()

    def shared(self) -> "_Side":
        """``with gate.shared():`` — the statement bracket."""
        return self._Side(self.acquire_shared, self.release_shared)

    def exclusive(self) -> "_Side":
        """``with gate.exclusive():`` — the commit bracket."""
        return self._Side(self.acquire_exclusive, self.release_exclusive)
