"""The metadata catalog.

    The primary state managed between the nodes is the metadata
    catalog, which records information about tables, users, nodes,
    epochs, etc.  Unlike other databases, the catalog is not stored in
    database tables [...] implemented using a custom memory resident
    data structure.  (section 5.3)

Every simulated node holds a replica of the catalog; in this
single-process simulation they share one object, which is faithful to
the paper's observable behaviour (the catalog is kept consistent by the
agreement protocol, which we model at the cluster layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DuplicateObjectError, UnknownObjectError
from ..projections import ProjectionDefinition, ProjectionFamily
from .schema import TableDefinition


@dataclass
class Catalog:
    """Tables and projection families, by name."""

    tables: dict[str, TableDefinition] = field(default_factory=dict)
    #: projection family keyed by the primary projection's name.
    families: dict[str, ProjectionFamily] = field(default_factory=dict)

    # -- tables --------------------------------------------------------

    def add_table(self, table: TableDefinition) -> None:
        """Register a new table."""
        if table.name in self.tables:
            raise DuplicateObjectError(f"table {table.name!r} already exists")
        self.tables[table.name] = table

    def table(self, name: str) -> TableDefinition:
        """Look up a table by name."""
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownObjectError(f"unknown table {name!r}") from None

    def drop_table(self, name: str) -> list[ProjectionDefinition]:
        """Drop a table; returns the projections that must be removed."""
        self.table(name)
        removed: list[ProjectionDefinition] = []
        for family_name in list(self.families):
            family = self.families[family_name]
            if family.primary.anchor_table == name:
                removed.extend(family.all_copies)
                del self.families[family_name]
        del self.tables[name]
        return removed

    def table_names(self) -> list[str]:
        """Sorted names of all tables."""
        return sorted(self.tables)

    # -- projections ------------------------------------------------------

    def add_family(self, family: ProjectionFamily) -> None:
        """Register a projection family (primary + buddies)."""
        name = family.primary.name
        if name in self.families:
            raise DuplicateObjectError(f"projection {name!r} already exists")
        self.table(family.primary.anchor_table)  # must exist
        self.families[name] = family

    def family(self, name: str) -> ProjectionFamily:
        """Look up a projection family by primary name."""
        try:
            return self.families[name]
        except KeyError:
            raise UnknownObjectError(f"unknown projection {name!r}") from None

    def families_for_table(self, table_name: str) -> list[ProjectionFamily]:
        """All projection families anchored on ``table_name``."""
        return [
            family
            for _, family in sorted(self.families.items())
            if family.primary.anchor_table == table_name
        ]

    def all_projections(self) -> list[ProjectionDefinition]:
        """Every physical projection copy in the catalog."""
        out: list[ProjectionDefinition] = []
        for _, family in sorted(self.families.items()):
            out.extend(family.all_copies)
        return out

    def super_projection_for(self, table_name: str) -> ProjectionFamily:
        """The (first) super projection family of a table."""
        table = self.table(table_name)
        for family in self.families_for_table(table_name):
            if family.primary.is_super_for(table):
                return family
        raise UnknownObjectError(
            f"table {table_name!r} has no super projection"
        )

    def check_super_projection_invariant(self, table_name: str) -> bool:
        """Section 3.2: every table must keep at least one super
        projection (join indexes do not exist)."""
        table = self.table(table_name)
        return any(
            family.primary.is_super_for(table)
            for family in self.families_for_table(table_name)
        )
