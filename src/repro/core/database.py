"""The public database facade.

:class:`Database` assembles the whole system — simulated cluster,
epoch-based transactions, locking, statistics, the optimizer
generations and the distributed executor — behind the API an
application would use.  :class:`Session` provides transactions with the
paper's semantics: snapshot reads that take no locks (section 5),
Insert/Exclusive table locks for writers (Table 1), UPDATE as
delete-plus-insert (section 3.7.1), and commit through the cluster
agreement protocol.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter

from ..cluster import Cluster, recover_node
from ..durability.journal import DEFAULT_CHECKPOINT_INTERVAL
from ..errors import DurabilityError, TransactionError
from ..execution.executor import DistributedExecutor, ExecutorStats
from ..monitor import METRICS, QueryProfile, build_query_profile
from ..execution.expressions import Expr
from ..execution.resource import ResourcePool, WorkloadPolicy
from ..optimizer import StarifiedOpt, StarOpt, StatsCatalog, V2Opt
from ..optimizer.logical import LogicalNode
from ..tuple_mover import MergePolicy
from ..txn import IsolationLevel, LockMode, Transaction, TxnStatus
from .schema import TableDefinition

OPTIMIZERS = {
    "star": StarOpt,
    "starified": StarifiedOpt,
    "v2": V2Opt,
}


class Database:
    """A single-process simulation of a Vertica-style cluster."""

    def __init__(
        self,
        path: str,
        node_count: int = 3,
        k_safety: int = 1,
        optimizer: str = "v2",
        segments_per_node: int = 3,
        wos_capacity: int = 65536,
        merge_policy: MergePolicy | None = None,
        workload_policy: WorkloadPolicy | None = None,
        durable: bool = True,
        journal_checkpoint_interval: int | None = None,
    ):
        from ..durability import Journal

        journal_dir = os.path.join(path, "journal")
        if durable and Journal.exists(journal_dir):
            raise DurabilityError(
                f"a journal already exists at {journal_dir!r}; use "
                "Database.open() to restart from it (or pass "
                "durable=False for a throwaway database)"
            )
        self._setup(
            path,
            node_count=node_count,
            k_safety=k_safety,
            optimizer=optimizer,
            segments_per_node=segments_per_node,
            wos_capacity=wos_capacity,
            merge_policy=merge_policy,
            workload_policy=workload_policy,
            # operational history persists with the data; a fresh
            # database wipes any stale collector segments at its path.
            dc_persist=durable,
            dc_fresh=True,
        )
        if durable:
            self.cluster.journal = Journal.create(
                journal_dir,
                genesis={
                    "node_count": node_count,
                    "k_safety": k_safety,
                    "segments_per_node": segments_per_node,
                    "wos_capacity": wos_capacity,
                },
                checkpoint_interval=(
                    journal_checkpoint_interval
                    if journal_checkpoint_interval is not None
                    else DEFAULT_CHECKPOINT_INTERVAL
                ),
            )

    @classmethod
    def open(
        cls,
        path: str,
        optimizer: str = "v2",
        merge_policy: MergePolicy | None = None,
        workload_policy: WorkloadPolicy | None = None,
        journal_checkpoint_interval: int | None = None,
    ) -> "Database":
        """Cold-start a database from its on-disk state.

        Reopens the write-ahead journal at ``<path>/journal``, rebuilds
        a cluster with the journaled topology, replays checkpoint +
        journal tail against the scavenged ROS containers, truncates
        anything past the durable floor, and rejoins every node through
        the supervisor's recovery state machine.  The replay summary is
        left on ``db.replay_report``.
        """
        from ..durability import Journal, replay_journal

        journal = Journal.open(
            os.path.join(path, "journal"),
            checkpoint_interval=(
                journal_checkpoint_interval
                if journal_checkpoint_interval is not None
                else DEFAULT_CHECKPOINT_INTERVAL
            ),
        )
        genesis = journal.genesis
        db = cls.__new__(cls)
        db._setup(
            path,
            node_count=genesis["node_count"],
            k_safety=genesis["k_safety"],
            optimizer=optimizer,
            segments_per_node=genesis["segments_per_node"],
            wos_capacity=genesis["wos_capacity"],
            merge_policy=merge_policy,
            workload_policy=workload_policy,
            # cold start: recover the Data Collector's segments so
            # dc_* history spans the pre-restart incarnation.
            dc_persist=True,
            dc_fresh=False,
        )
        db.replay_report = replay_journal(db.cluster, journal)
        db.cluster.journal = journal
        return db

    def _setup(
        self,
        path: str,
        *,
        node_count: int,
        k_safety: int,
        optimizer: str,
        segments_per_node: int,
        wos_capacity: int,
        merge_policy: MergePolicy | None,
        workload_policy: WorkloadPolicy | None,
        dc_persist: bool = False,
        dc_fresh: bool = False,
    ) -> None:
        #: Resource-management policy applied to every query (section 7
        #: "Resource Management"); operators spill to disk rather than
        #: exceed it.
        self.workload_policy = workload_policy or WorkloadPolicy()
        self.cluster = Cluster(
            path,
            node_count=node_count,
            k_safety=k_safety,
            segments_per_node=segments_per_node,
            wos_capacity=wos_capacity,
            merge_policy=merge_policy,
            dc_persist=dc_persist,
            dc_fresh=dc_fresh,
        )
        #: Cold-start summary (:class:`repro.durability.ColdStartReport`)
        #: when this database came up through :meth:`open`; else None.
        self.replay_report = None
        self.stats = StatsCatalog()
        self.optimizer_name = optimizer
        self._txn_id_lock = threading.Lock()
        self._next_txn_id = 1  # concurrency: guarded-by(self._txn_id_lock)
        #: Serializes commit application across sessions: the storage
        #: substrate (WOS lists, delete vectors, epoch advance) is
        #: written by exactly one committer at a time, mirroring
        #: Vertica's global catalog lock held for the commit's critical
        #: section.  Readers take no lock — snapshot isolation below
        #: the committed epoch keeps them consistent.
        self._commit_lock = threading.Lock()
        #: Back-reference set by :class:`repro.service.SqlService` when
        #: a service wraps this database; the ``v_monitor.sessions`` /
        #: ``resource_pools`` producers read it (None = no service).
        self.service = None
        #: The health/alert engine behind ``v_monitor.alerts`` and the
        #: ``v_monitor.slow_queries`` threshold (lazy import: repro.dc
        #: sits above the cluster in the import graph).
        from ..dc import HealthMonitor

        self.health = HealthMonitor(self)
        # traces stamp spans with this cluster's simulated clock; the
        # last-constructed Database wins, matching METRICS' process-wide
        # registry semantics.
        from ..trace import TRACER

        TRACER.bind_clock(self.cluster.clock)

    # -- DDL ------------------------------------------------------------

    def create_table(
        self,
        table: TableDefinition,
        sort_order: list[str] | None = None,
        segmentation=None,
        encodings: dict[str, str] | None = None,
    ):
        """Create a table with an auto-designed super projection."""
        return self.cluster.create_table(
            table, sort_order=sort_order, segmentation=segmentation,
            encodings=encodings,
        )

    def add_projection(self, projection, populate: bool = True):
        """Add a projection family (populated from existing data)."""
        return self.cluster.add_projection_family(projection, populate=populate)

    def drop_table(self, name: str) -> None:
        """Drop a table and its storage everywhere."""
        self.cluster.drop_table(name)

    # -- sessions -----------------------------------------------------------

    def session(
        self, isolation: IsolationLevel = IsolationLevel.READ_COMMITTED
    ) -> "Session":
        """Open a client session."""
        return Session(self, isolation)

    def _allocate_txn_id(self) -> int:
        with self._txn_id_lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            return txn_id

    # -- conveniences (autocommit) ---------------------------------------------

    def load(self, table: str, rows: list[dict], direct_to_ros: bool = False) -> int:
        """Bulk load rows in one autocommit transaction; returns the
        commit epoch."""
        session = self.session()
        session.insert(table, rows, direct_to_ros=direct_to_ros)
        return session.commit()

    def query(self, logical: LogicalNode, optimizer: str | None = None) -> list[dict]:
        """Run a query in a fresh READ COMMITTED session."""
        return self.session().query(logical, optimizer=optimizer)

    def explain(self, logical: LogicalNode, optimizer: str | None = None) -> str:
        """Physical plan text for a query."""
        planner = self.planner(optimizer)
        return planner.plan(logical).explain()

    def planner(self, optimizer: str | None = None):
        """Instantiate an optimizer generation bound to current stats."""
        name = optimizer or self.optimizer_name
        try:
            cls = OPTIMIZERS[name]
        except KeyError:
            raise TransactionError(f"unknown optimizer {name!r}") from None
        return cls(self.cluster, self.stats)

    def analyze_statistics(self) -> None:
        """Collect optimizer statistics from live data."""
        self.stats.refresh(
            self.cluster, self.cluster.epochs.latest_queryable_epoch
        )

    # -- SQL ----------------------------------------------------------------------

    def sql(self, text: str, copy_rows=None):
        """Execute one SQL statement in an autocommitting session.

        SELECTs return row dicts; EXPLAIN returns the plan text; COPY
        takes its input via ``copy_rows`` (an iterable of dicts, field
        lists or '|'-delimited lines) and returns a
        :class:`repro.sql.CopyResult`.
        """
        from ..sql import execute_sql

        session = self.session()
        result = execute_sql(session, text, copy_rows=copy_rows)
        if session.txn is not None and session.txn.has_dml:
            session.commit()
        return result

    def system(self, view: str) -> list[dict]:
        """A monitoring view (``projections``, ``storage_containers``,
        ``nodes``, ``locks``, ``epochs``) — section 7's resource and
        allocation reporting."""
        from .monitor import system_view

        return system_view(self, view)

    # -- maintenance ---------------------------------------------------------------

    def run_tuple_movers(self) -> None:
        """One moveout+mergeout cycle on every node."""
        self.cluster.run_tuple_movers()

    def fail_node(self, node_index: int) -> None:
        """Crash a node."""
        self.cluster.fail_node(node_index)

    def recover_node(self, node_index: int, historical_lag: int = 0):
        """Recover a failed node from its buddies."""
        return recover_node(self.cluster, node_index, historical_lag)

    @property
    def current_epoch(self) -> int:
        """The cluster's current (uncommitted) epoch."""
        return self.cluster.epochs.current_epoch

    @property
    def latest_epoch(self) -> int:
        """The newest queryable epoch."""
        return self.cluster.epochs.latest_queryable_epoch


class Session:
    """A client connection with transaction state."""

    def __init__(self, db: Database, isolation: IsolationLevel):
        self.db = db
        self.isolation = isolation
        self.txn: Transaction | None = None
        self.last_stats: ExecutorStats | None = None
        #: Resource pool of the most recent query (spill observability).
        self.last_pool: ResourcePool | None = None
        #: Operator profile of the most recent query (EXPLAIN ANALYZE).
        self.last_profile: QueryProfile | None = None
        #: Cooperative cancel flag for the running statement
        #: (:class:`repro.service.CancelToken`); installed by the
        #: service layer per statement, checked by operators between
        #: blocks and by lock waits between wakeups.
        self.cancel_token = None
        #: Per-session workload policy override; when set (by the
        #: resource governor, sized to the statement's pool grant) it
        #: replaces the database-wide default for this session's pools.
        self.workload_policy: WorkloadPolicy | None = None
        #: Lock acquisition discipline.  Standalone sessions keep the
        #: historical fail-fast behaviour (``block=False`` keeps the
        #: single-threaded protocol tests exact); service sessions set
        #: ``lock_block=True`` so concurrent writers park on the lock
        #: manager's condition variable instead of erroring.
        self.lock_block = False
        self.lock_timeout = 1.0

    # -- transaction control ------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction (implicit on first statement)."""
        if self.txn is not None and self.txn.status is TxnStatus.ACTIVE:
            return self.txn
        self.txn = Transaction(
            txn_id=self.db._allocate_txn_id(),
            isolation=self.isolation,
            snapshot_epoch=self.db.latest_epoch,
        )
        return self.txn

    def _active(self) -> Transaction:
        txn = self.begin()
        txn.check_active()
        if txn.isolation is IsolationLevel.READ_COMMITTED:
            txn.snapshot_epoch = self.db.latest_epoch
        return txn

    def _acquire_lock(self, txn: Transaction, table: str, mode: LockMode):
        """One lock acquisition under this session's discipline:
        fail-fast for standalone sessions, blocking (with the session's
        timeout and cancel flag) for service sessions."""
        return self.db.cluster.locks.acquire(
            txn.txn_id,
            table,
            mode,
            block=self.lock_block,
            timeout=self.lock_timeout,
            cancel=self.cancel_token.check if self.cancel_token else None,
        )

    def commit(self) -> int:
        """Commit; returns the commit epoch (or the current snapshot
        epoch when the transaction had no DML)."""
        txn = self.begin()
        txn.check_active()
        try:
            if txn.has_dml:
                with self.db._commit_lock:
                    epoch = self.db.cluster.commit_dml(
                        txn.pending_inserts,
                        [(d.table, d.predicate) for d in txn.pending_deletes],
                        snapshot_epoch=txn.snapshot_epoch,
                        direct_to_ros=txn.direct_to_ros,
                    )
            else:
                epoch = txn.snapshot_epoch
            txn.status = TxnStatus.COMMITTED
            return epoch
        finally:
            self.db.cluster.locks.release_all(txn.txn_id)
            self.txn = None

    def rollback(self) -> None:
        """Abort: discard buffered changes, release locks."""
        txn = self.begin()
        txn.status = TxnStatus.ABORTED
        self.db.cluster.locks.release_all(txn.txn_id)
        self.txn = None

    # -- DML -----------------------------------------------------------------

    def insert(
        self, table: str, rows: list[dict], direct_to_ros: bool = False
    ) -> None:
        """Buffer rows for insert (Insert lock; multiple loaders can
        hold it concurrently)."""
        txn = self._active()
        self.db.cluster.catalog.table(table)  # must exist
        self._acquire_lock(txn, table, LockMode.I)
        txn.buffer_insert(table, rows)
        if direct_to_ros:
            txn.direct_to_ros = True

    def delete(self, table: str, predicate) -> None:
        """Buffer a delete (Exclusive lock).  ``predicate`` is a
        callable over row dicts or an :class:`Expr`."""
        txn = self._active()
        self._acquire_lock(txn, table, LockMode.X)
        txn.buffer_delete(table, _as_callable(predicate))

    def update(self, table: str, assignments: dict[str, object], predicate) -> int:
        """SQL UPDATE: delete matching rows and insert updated copies
        (section 3.7.1).  Returns the number of rows updated."""
        txn = self._active()
        self._acquire_lock(txn, table, LockMode.X)
        matcher = _as_callable(predicate)
        current = self.db.cluster.read_table(table, txn.snapshot_epoch)
        updated = []
        for row in current:
            if matcher(row):
                new_row = dict(row)
                for column, value in assignments.items():
                    new_row[column] = (
                        value.evaluate_row(row) if isinstance(value, Expr) else value
                    )
                updated.append(new_row)
        if updated:
            txn.buffer_delete(table, matcher)
            txn.buffer_insert(table, updated)
        return len(updated)

    # -- queries -----------------------------------------------------------------

    def query(
        self,
        logical: LogicalNode,
        optimizer: str | None = None,
        at_epoch: int | None = None,
        sql_text: str | None = None,
    ) -> list[dict]:
        """Plan and execute a query at the session's snapshot.

        Historical queries pass ``at_epoch`` ("a query executing in the
        recent past needs no locks and is assured of a consistent
        snapshot").  ``sql_text`` labels the query's profile in
        ``v_monitor.query_profiles``.
        """
        txn = self._active()
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            for table in {
                scan.table
                for scan in logical.walk()
                if type(scan).__name__ == "ScanNode"
            }:
                self._acquire_lock(txn, table, LockMode.S)
        epoch = at_epoch if at_epoch is not None else txn.snapshot_epoch
        planner = self.db.planner(optimizer)
        plan = planner.plan(logical)
        pool = ResourcePool(self.workload_policy or self.db.workload_policy)
        executor = DistributedExecutor(
            self.db.cluster,
            epoch,
            pool=pool,
            pending_inserts=txn.pending_inserts if at_epoch is None else {},
            cancel_token=self.cancel_token,
        )
        started = perf_counter()
        rows = executor.run(plan)
        wall = perf_counter() - started
        self.last_stats = executor.stats
        self.last_pool = pool
        METRICS.inc("queries.executed")
        self.last_profile = build_query_profile(
            executor.root_operator,
            sql=sql_text or f"<plan:{type(logical).__name__}>",
            epoch=epoch,
            rows_returned=len(rows),
            wall_seconds=wall,
        )
        return rows

    def explain(self, logical: LogicalNode, optimizer: str | None = None) -> str:
        """Physical plan for a query under this session's database."""
        return self.db.explain(logical, optimizer=optimizer)

    def sql(self, text: str, copy_rows=None):
        """Execute one SQL statement inside this session's transaction."""
        from ..sql import execute_sql

        return execute_sql(self, text, copy_rows=copy_rows)


def _as_callable(predicate):
    if isinstance(predicate, Expr):
        compiled = predicate

        def run(row: dict) -> bool:
            return compiled.evaluate_row(row) is True

        return run
    return predicate
