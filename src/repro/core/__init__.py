"""Public facade: database, sessions, catalog and schema objects."""

from .catalog import Catalog
from .database import Database, Session
from .schema import ColumnDef, TableDefinition

__all__ = ["Catalog", "Database", "Session", "ColumnDef", "TableDefinition"]
