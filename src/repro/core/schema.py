"""Logical schema objects: column definitions and tables.

Vertica models user data as tables of columns, "though the data is not
physically arranged in this manner" (section 3) — physical layout
belongs to projections (:mod:`repro.projections`).  A table owns its
column definitions and, optionally, a table-level partition expression
(section 3.5: partitioning is specified at the table level, not the
projection level, so bulk deletion stays fast on every projection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import SqlAnalysisError
from ..types import DataType


@dataclass(frozen=True)
class ColumnDef:
    """A named, typed table column."""

    name: str
    dtype: DataType

    def __post_init__(self):
        if not self.name:
            raise SqlAnalysisError("column name cannot be empty")


@dataclass
class TableDefinition:
    """A logical table: name, columns and optional partition expression.

    ``partition_by`` maps a row (dict of column name -> value) to its
    partition key; it models ``CREATE TABLE ... PARTITION BY <expr>``.
    Most real partition expressions are date-derived (month/year); any
    deterministic callable is accepted here.
    """

    name: str
    columns: list[ColumnDef]
    partition_by: Callable[[dict], object] | None = None
    #: Source text of the partition expression, for catalog display.
    partition_by_text: str | None = None
    #: Primary-key column names (used for constraint-aware planning).
    primary_key: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SqlAnalysisError(f"duplicate column names in table {self.name!r}")
        for key in self.primary_key:
            if key not in names:
                raise SqlAnalysisError(f"primary key column {key!r} not in table")

    @property
    def column_names(self) -> list[str]:
        """Ordered column names."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> ColumnDef:
        """Look up a column definition by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SqlAnalysisError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Whether the table defines a column called ``name``."""
        return any(column.name == name for column in self.columns)

    def partition_key(self, row: dict):
        """Partition key of ``row`` (None when the table is unpartitioned)."""
        if self.partition_by is None:
            return None
        return self.partition_by(row)

    def validate_row(self, row: dict) -> dict:
        """Type-check one row dict against the schema; returns the row
        with values normalized (e.g. int -> float for FLOAT columns)."""
        if set(row) != set(self.column_names):
            raise SqlAnalysisError(
                f"row columns {sorted(row)} do not match table "
                f"{self.name!r} columns {sorted(self.column_names)}"
            )
        return {
            column.name: column.dtype.validate(row[column.name])
            for column in self.columns
        }
