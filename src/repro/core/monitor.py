"""Monitoring views (section 7, "Resource Management": "reporting on
the current resource allocation with many concurrent users is critical
to real world deployments").

Vertica exposes this through virtual system tables; here the same
information is available as row-dict views over the live cluster:

* ``projections`` — one row per (node, projection copy): rows stored,
  encoded bytes, ROS container count, WOS backlog.
* ``storage_containers`` — one row per ROS container.
* ``nodes`` — membership, WOS totals, LGE summary per node.
* ``locks`` — currently granted table locks.
* ``epochs`` — the epoch clock (current / latest queryable / AHM).
"""

from __future__ import annotations

from ..errors import UnknownObjectError


def projections_view(db) -> list[dict]:
    """Per-(node, projection) storage accounting."""
    rows = []
    for node in db.cluster.nodes:
        for name in node.manager.projection_names():
            state = node.manager.storage(name)
            stored = sum(c.row_count for c in state.containers.values())
            rows.append(
                {
                    "node": node.name,
                    "projection": name,
                    "anchor_table": state.projection.anchor_table,
                    "ros_rows": stored,
                    "wos_rows": state.wos.row_count,
                    "ros_containers": len(state.containers),
                    "data_bytes": node.manager.total_data_bytes(name),
                    "delete_markers": state.delete_count(),
                    "up": db.cluster.membership.is_up(node.index),
                }
            )
    return rows


def storage_containers_view(db) -> list[dict]:
    """Per-ROS-container inventory (Figure 2's content, live)."""
    rows = []
    for node in db.cluster.nodes:
        for name in node.manager.projection_names():
            state = node.manager.storage(name)
            for container_id in sorted(state.containers):
                container = state.containers[container_id]
                rows.append(
                    {
                        "node": node.name,
                        "projection": name,
                        "container_id": container_id,
                        "rows": container.row_count,
                        "partition_key": container.meta.partition_key,
                        "local_segment": container.meta.local_segment,
                        "min_epoch": container.meta.min_epoch,
                        "max_epoch": container.meta.max_epoch,
                        "bytes": container.size_bytes(),
                    }
                )
    return rows


def nodes_view(db) -> list[dict]:
    """Membership and per-node storage summary."""
    rows = []
    for node in db.cluster.nodes:
        wos_total = sum(
            node.manager.wos_row_count(name)
            for name in node.manager.projection_names()
        )
        lges = [
            db.cluster.epochs.lge(node.index, name)
            for name in node.manager.projection_names()
        ]
        rows.append(
            {
                "node": node.name,
                "up": db.cluster.membership.is_up(node.index),
                "projections": len(node.manager.projection_names()),
                "wos_rows": wos_total,
                "min_lge": min(lges, default=0),
                "data_bytes": node.manager.total_data_bytes(),
            }
        )
    return rows


def locks_view(db) -> list[dict]:
    """Currently granted table locks."""
    rows = []
    for obj, state in sorted(db.cluster.locks._objects.items()):
        for txn_id, mode in sorted(state.holders.items()):
            rows.append({"object": obj, "txn": txn_id, "mode": mode.value})
    return rows


def epochs_view(db) -> list[dict]:
    """The epoch clock."""
    epochs = db.cluster.epochs
    return [
        {
            "current_epoch": epochs.current_epoch,
            "latest_queryable_epoch": epochs.latest_queryable_epoch,
            "ahm": epochs.ahm,
            "nodes_down": epochs.nodes_down,
        }
    ]


VIEWS = {
    "projections": projections_view,
    "storage_containers": storage_containers_view,
    "nodes": nodes_view,
    "locks": locks_view,
    "epochs": epochs_view,
}


def system_view(db, name: str) -> list[dict]:
    """Evaluate one monitoring view by name."""
    try:
        view = VIEWS[name]
    except KeyError:
        raise UnknownObjectError(
            f"unknown system view {name!r}; have {sorted(VIEWS)}"
        ) from None
    return view(db)
