"""Tick-driven health rules with raise/clear hysteresis.

``v_monitor.alerts`` is produced here: a small set of deterministic
rules, each reducing the Data Collector rings / metrics registry /
cluster state to one scalar per evaluation, compared against a pair of
thresholds.  The rule grammar is deliberately tiny:

    raise   when  value >  raise_above
    clear   when  value <= clear_below          (clear_below <= raise_above)
    hold    otherwise                           (hysteresis band)

Evaluation is driven by the simulated clock — ``evaluate()`` stamps
transitions with ``cluster.clock.now``, never the wall clock — so an
alert's raise/clear history replays tick-for-tick under a chaos seed.
Each transition is also recorded into the collector's ``errors``
component (``alert_raised`` / ``alert_cleared``), making alert history
itself part of the durable operational record.

Thresholds live on the mutable :class:`HealthConfig` (also the home of
the ``v_monitor.slow_queries`` threshold), so tests and operators can
retune without rebuilding the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..monitor.registry import METRICS


@dataclass
class HealthConfig:
    """Tunable thresholds for the health rules and slow-query view."""

    #: ``v_monitor.slow_queries`` reports requests at or above this.
    slow_query_ms: float = 250.0
    #: queue_wait_p99 rule: p99 admission queue wait (ticks) budget.
    queue_wait_p99_budget_ticks: float = 8.0
    queue_wait_p99_clear_ticks: float = 4.0
    #: row_engine_fallback rule: fraction of blocks decoded on the row
    #: engine instead of the vectorized kernels.
    row_fallback_raise_ratio: float = 0.5
    row_fallback_clear_ratio: float = 0.25
    #: crc_failures rule: failures tolerated inside the sliding window.
    crc_failure_window_ticks: int = 32
    crc_failure_raise_count: float = 2.0
    crc_failure_clear_count: float = 0.0


@dataclass(frozen=True)
class AlertRule:
    """One health rule: a value source plus its hysteresis thresholds.

    ``value`` reduces current state to one float; the threshold
    callables read the live :class:`HealthConfig` so retuning takes
    effect on the next evaluation.
    """

    name: str
    severity: str
    description: str
    value: Callable[["HealthMonitor"], float]
    raise_above: Callable[[HealthConfig], float]
    clear_below: Callable[[HealthConfig], float]


@dataclass
class AlertState:
    """Mutable raise/clear bookkeeping for one rule."""

    state: str = "ok"  # "ok" | "firing"
    raised_tick: int | None = None
    cleared_tick: int | None = None
    times_raised: int = 0
    last_value: float = 0.0


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _queue_wait_p99(monitor: "HealthMonitor") -> float:
    collector = getattr(monitor.db.cluster, "dc", None)
    if collector is None:
        return 0.0
    waits = [
        float(row.get("queued_ticks", 0))
        for row in collector.rows("resource_acquisitions")
        if row.get("kind") in ("granted", "timed_out")
    ]
    return _percentile(waits, 0.99)


def _row_fallback_ratio(monitor: "HealthMonitor") -> float:
    fallback = METRICS.counter("executor.row_fallback_blocks")
    vectorized = METRICS.counter("storage.blocks_vectorized")
    total = fallback + vectorized
    return (fallback / total) if total else 0.0


def _down_nodes(monitor: "HealthMonitor") -> float:
    return float(len(monitor.db.cluster.membership.down_nodes()))


def _quarantined_nodes(monitor: "HealthMonitor") -> float:
    supervisor = monitor.db.cluster.supervisor
    return float(
        sum(
            1
            for record in supervisor.states().values()
            if record.state == "QUARANTINED"
        )
    )


def _recent_crc_failures(monitor: "HealthMonitor") -> float:
    return float(monitor._crc_failures_in_window())


#: The built-in rule set, in report order.
DEFAULT_RULES = (
    AlertRule(
        "crc_failures",
        "critical",
        "repeated storage CRC failures inside the sliding window",
        _recent_crc_failures,
        lambda c: c.crc_failure_raise_count,
        lambda c: c.crc_failure_clear_count,
    ),
    AlertRule(
        "node_down",
        "critical",
        "one or more nodes are out of the cluster membership",
        _down_nodes,
        lambda c: 0.0,
        lambda c: 0.0,
    ),
    AlertRule(
        "node_quarantined",
        "critical",
        "a node exhausted its recovery attempts and was quarantined",
        _quarantined_nodes,
        lambda c: 0.0,
        lambda c: 0.0,
    ),
    AlertRule(
        "queue_wait_p99",
        "warning",
        "p99 admission queue wait exceeds the configured tick budget",
        _queue_wait_p99,
        lambda c: c.queue_wait_p99_budget_ticks,
        lambda c: c.queue_wait_p99_clear_ticks,
    ),
    AlertRule(
        "row_engine_fallback",
        "warning",
        "too many blocks fell back from the kernels to the row engine",
        _row_fallback_ratio,
        lambda c: c.row_fallback_raise_ratio,
        lambda c: c.row_fallback_clear_ratio,
    ),
)


class HealthMonitor:
    """Evaluates the health rules against one database.

    Owned by :class:`repro.core.Database` as ``db.health``; the
    ``v_monitor.alerts`` producer calls :meth:`evaluate` (so reading
    the table is always current) and renders :meth:`rows`.
    """

    def __init__(self, db, config: HealthConfig | None = None):
        self.db = db
        self.config = config or HealthConfig()
        self.rules = DEFAULT_RULES
        self._states: dict[str, AlertState] = {
            rule.name: AlertState() for rule in self.rules
        }
        #: (tick, count) deltas of storage.crc_failures, for the
        #: sliding-window rule.
        self._crc_events: list[tuple[int, int]] = []
        self._crc_seen = METRICS.counter("storage.crc_failures")

    # -- the crc sliding window -----------------------------------------

    def _crc_failures_in_window(self) -> int:
        now = self.db.cluster.clock.now
        current = METRICS.counter("storage.crc_failures")
        if current > self._crc_seen:
            self._crc_events.append((now, current - self._crc_seen))
            self._crc_seen = current
        window = self.config.crc_failure_window_ticks
        self._crc_events = [
            (tick, count)
            for tick, count in self._crc_events
            if now - tick <= window
        ]
        return sum(count for _, count in self._crc_events)

    # -- evaluation ------------------------------------------------------

    def evaluate(self) -> list[str]:
        """Run every rule once; returns the names of firing alerts.

        Transitions follow the hysteresis grammar in the module
        docstring and are stamped with the cluster's simulated clock.
        """
        now = self.db.cluster.clock.now
        collector = getattr(self.db.cluster, "dc", None)
        firing = []
        for rule in self.rules:
            state = self._states[rule.name]
            value = rule.value(self)
            state.last_value = value
            if state.state == "ok" and value > rule.raise_above(self.config):
                state.state = "firing"
                state.raised_tick = now
                state.times_raised += 1
                METRICS.inc("dc.alerts_raised")
                if collector is not None:
                    collector.record(
                        "errors",
                        "alert_raised",
                        source="health",
                        node_index=-1,
                        detail=f"{rule.name} value={value:g} > "
                        f"{rule.raise_above(self.config):g}",
                    )
            elif state.state == "firing" and value <= rule.clear_below(
                self.config
            ):
                state.state = "ok"
                state.cleared_tick = now
                METRICS.inc("dc.alerts_cleared")
                if collector is not None:
                    collector.record(
                        "errors",
                        "alert_cleared",
                        source="health",
                        node_index=-1,
                        detail=f"{rule.name} value={value:g} <= "
                        f"{rule.clear_below(self.config):g}",
                    )
            if state.state == "firing":
                firing.append(rule.name)
        return firing

    def state_of(self, rule_name: str) -> AlertState:
        """The live raise/clear state for one rule (tests)."""
        return self._states[rule_name]

    def rows(self) -> list[dict]:
        """One ``v_monitor.alerts`` row per rule, report order."""
        rows = []
        for rule in self.rules:
            state = self._states[rule.name]
            rows.append(
                {
                    "alert": rule.name,
                    "severity": rule.severity,
                    "state": state.state,
                    "value": state.last_value,
                    "raise_above": rule.raise_above(self.config),
                    "clear_below": rule.clear_below(self.config),
                    "raised_tick": state.raised_tick,
                    "cleared_tick": state.cleared_tick,
                    "times_raised": state.times_raised,
                    "detail": rule.description,
                }
            )
        return rows
