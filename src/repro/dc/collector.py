"""The Data Collector: durable, retention-bounded operational history.

Vertica's Data Collector records every operationally interesting event
— statement completions, resource acquisitions, lock waits, node
up/down transitions, tuple-mover cycles, errors — into per-component
ring buffers that are periodically persisted, then serves them back as
ordinary ``dc_*`` SQL tables.  This module is that subsystem for the
reproduction.

Every event flows through one :meth:`DataCollector.record` call into a
per-component ring bounded by a :class:`RetentionPolicy` (record count
plus optional simulated-clock tick age).  When persistence is enabled
the collector mirrors its rings to disk in CRC-framed segment files
under ``<database>/dc/`` using the same stage/publish + torn-tail
truncation protocol as the write-ahead journal
(:mod:`repro.durability.journal`), so operational history survives
``Database.open()`` cold starts:

* one line per record, framed ``<crc32 hex, 8 chars> <canonical
  JSON>\\n``;
* flushes rewrite the component's active segment to a ``.tmp`` sibling
  and publish it with a single atomic ``os.replace``
  (:mod:`repro.storage.fsio`), with fault points ``dc.flush.stage`` /
  ``dc.flush.publish`` for the kill-mid-flush chaos checks;
* at recovery, a damaged line truncates the segment to its valid
  prefix and discards later segments of that component — history
  recovers to a valid prefix, never a torn middle;
* segments rotate at ``segment_records`` records and old sealed
  segments past the retention cap are pruned.

Flushes are batched (every ``flush_interval`` records by default, plus
explicit :meth:`flush` calls at cluster maintenance points) so the
per-statement cost stays a dict append under one mutex —
``benchmarks/bench_dc_overhead.py`` keeps the collector under a 10%
statement-throughput tax.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .. import faults
from ..lint.concur.runtime import TrackedLock
from ..monitor.registry import METRICS
from ..monitor.retention import DEFAULT_RETENTION, RetentionPolicy
from ..storage import fsio

#: Component names (= ring buffers = on-disk segment families = the
#: ``v_monitor.dc_*`` tables built on top).
COMPONENTS = (
    "requests",
    "resource_acquisitions",
    "lock_waits",
    "node_events",
    "tuple_mover",
    "errors",
)

#: Records buffered across all components before an automatic flush.
DEFAULT_FLUSH_INTERVAL = 16
#: Records per on-disk segment before the component rotates files.
DEFAULT_SEGMENT_RECORDS = 128

SEGMENT_SUFFIX = ".log"


@dataclass(frozen=True)
class DCRecord:
    """One Data Collector event."""

    #: Per-component monotonically increasing id (dense from 1 within
    #: one database incarnation; recovery continues the sequence).
    record_id: int
    #: Simulated-clock tick the event was recorded at.
    tick: int
    #: Component-specific event kind (e.g. ``granted``, ``moveout``).
    kind: str
    #: Event fields; JSON-serializable values only.
    payload: dict

    def row(self) -> dict:
        """The record flattened for the ``dc_*`` table producers."""
        return {"record_id": self.record_id, "tick": self.tick,
                "kind": self.kind, **self.payload}


@dataclass
class _Ring:
    """One component's in-memory ring plus its persistence bookkeeping.

    All fields are owned by the enclosing collector and guarded by its
    mutex; the dataclass only groups them per component.
    """

    component: str
    records: list[DCRecord] = field(default_factory=list)
    next_id: int = 1
    #: Records appended since the component's last flush.
    pending: list[DCRecord] = field(default_factory=list)
    #: Index of the segment new frames are appended to.
    active_index: int = 1
    #: Framed lines of the active segment (full-file rewrite on flush).
    active_lines: list[str] = field(default_factory=list)
    #: segment index -> record count, for sealed-segment pruning.
    segment_records: dict[int, int] = field(default_factory=dict)


def _frame(body: dict) -> str:
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return f"{fsio.crc32(text.encode('utf-8')):08x} {text}\n"


def _parse_line(raw: bytes) -> dict | None:
    """Decode one framed line; ``None`` if torn or corrupted."""
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError:
        return None
    if not text.endswith("\n"):
        return None  # torn mid-record
    if len(text) < 10 or text[8] != " ":
        return None
    crc_hex, body_text = text[:8], text[9:-1]
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if fsio.crc32(body_text.encode("utf-8")) != expected:
        return None
    try:
        body = json.loads(body_text)
    except ValueError:
        return None
    if not isinstance(body, dict) or "id" not in body or "kind" not in body:
        return None
    return body


class DataCollector:
    """Retention-bounded operational event rings with durable segments.

    One instance per :class:`repro.cluster.Cluster`; the cluster, the
    lock manager, the resource governor, the tuple movers and the SQL
    front end all feed it (duck-typed ``collector`` attributes, so the
    lower layers never import this package).  ``persist=False`` keeps
    everything in memory (throwaway/test clusters); ``fresh=True``
    wipes any previous incarnation's segments; ``persist=True,
    fresh=False`` recovers history from disk — the ``Database.open()``
    cold-start path.
    """

    def __init__(
        self,
        directory: str,
        *,
        clock=None,
        persist: bool = False,
        fresh: bool = False,
        retention: RetentionPolicy | None = None,
        flush_interval: int = DEFAULT_FLUSH_INTERVAL,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        enabled: bool | None = None,
    ):
        self.directory = directory
        self.clock = clock
        self.persist = persist
        self.retention = retention or DEFAULT_RETENTION
        self.flush_interval = max(flush_interval, 1)
        self.segment_records = max(segment_records, 1)
        if enabled is None:
            enabled = os.environ.get("REPRO_DC_DISABLE", "") not in ("1", "true")
        #: Kill switch: a disabled collector's record() is a no-op
        #: (``REPRO_DC_DISABLE=1``, or the overhead bench's off leg).
        self.enabled = enabled
        self._lock = TrackedLock("DataCollector._lock")
        # concurrency: guarded-by(self._lock) — per-component rings and
        # the cross-component pending-record counter.
        self._rings: dict[str, _Ring] = {
            name: _Ring(name) for name in COMPONENTS
        }
        self._dirty = 0  # concurrency: guarded-by(self._lock)
        if fresh:
            self._wipe()
        elif persist:
            self._recover()

    # -- recording ------------------------------------------------------

    def record(
        self, component: str, kind: str, *, defer_flush: bool = False,
        **payload,
    ) -> DCRecord | None:
        """Append one event to ``component``'s ring.

        Stamps the current simulated-clock tick, evicts past retention,
        and (when persisting) batches the record for the next flush.
        Returns ``None`` when the collector is disabled.

        ``defer_flush=True`` is for callers recording from inside their
        own critical section (the lock manager and resource governor
        hold their condition variables across the call): the record
        still enters the ring and the pending batch, but the
        threshold-triggered segment flush — synchronous file I/O plus
        the ``dc.flush.*`` fault points — is skipped, so no disk write
        or injected fault can happen under the caller's lock.  The
        batch is persisted by the next non-deferred record that crosses
        the threshold or by an explicit :meth:`flush`.
        """
        if not self.enabled:
            return None
        with self._lock:
            ring = self._rings[component]
            tick = self.clock.now if self.clock is not None else 0
            record = DCRecord(ring.next_id, tick, kind, payload)
            ring.next_id += 1
            ring.records.append(record)
            self._evict_ring(ring, tick)
            METRICS.inc("dc.records")
            if self.persist:
                ring.pending.append(record)
                self._dirty += 1
                if not defer_flush and self._dirty >= self.flush_interval:
                    self._flush_locked()
            return record

    def on_tick(self) -> None:
        """Clock-advance hook: age out expired records everywhere.

        Called by :meth:`repro.cluster.supervisor.ClusterSupervisor.tick`
        after it advances the simulated clock, so age-based eviction is
        tick-driven and deterministic.
        """
        if not self.enabled or self.clock is None:
            return
        if self.retention.max_age_ticks is None:
            return
        with self._lock:
            now = self.clock.now
            for ring in self._rings.values():
                self._evict_ring(ring, now)

    def _evict_ring(self, ring: _Ring, now: int) -> None:
        """Apply both retention bounds to one ring (caller holds lock)."""
        evicted = 0
        over = len(ring.records) - self.retention.max_records
        if over > 0:
            del ring.records[:over]
            evicted += over
        while ring.records and self.retention.expired(
            ring.records[0].tick, now
        ):
            del ring.records[0]
            evicted += 1
        if evicted:
            METRICS.inc("dc.records_evicted", evicted)

    # -- reads ----------------------------------------------------------

    def rows(self, component: str) -> list[dict]:
        """Snapshot of one component's retained records as table rows,
        oldest first.  Each row is a fresh dict — readers can never
        observe a record mid-mutation (records are frozen) or tear the
        list (copied under the mutex)."""
        with self._lock:
            return [record.row() for record in self._rings[component].records]

    def counts(self) -> dict[str, int]:
        """Retained record count per component (tests, console)."""
        with self._lock:
            return {
                name: len(ring.records)
                for name, ring in sorted(self._rings.items())
            }

    def reset(self) -> None:
        """Drop all in-memory records (ids keep increasing; the disk
        segments are untouched)."""
        with self._lock:
            for ring in self._rings.values():
                ring.records.clear()
                ring.pending.clear()

    # -- persistence ----------------------------------------------------

    def flush(self) -> None:
        """Write every pending record to its component's segments."""
        if not (self.enabled and self.persist):
            return
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        self._dirty = 0
        for name in COMPONENTS:
            ring = self._rings[name]
            if not ring.pending:
                continue
            touched: list[int] = []
            # Segments sealed *during this batch*: index -> the full
            # framed line list snapshotted at rotation time.  Without
            # the snapshot, a batch that straddles a rotation would
            # write only the new active segment and silently drop the
            # records that completed the sealed one.
            sealed_lines: dict[int, list[str]] = {}
            for record in ring.pending:
                if len(ring.active_lines) >= self.segment_records:
                    sealed_lines[ring.active_index] = ring.active_lines
                    ring.active_index += 1
                    ring.active_lines = []
                ring.active_lines.append(
                    _frame(
                        {
                            "id": record.record_id,
                            "tick": record.tick,
                            "kind": record.kind,
                            "payload": record.payload,
                        }
                    )
                )
                ring.segment_records[ring.active_index] = len(
                    ring.active_lines
                )
                if ring.active_index not in touched:
                    touched.append(ring.active_index)
            ring.pending = []
            for index in touched:
                lines = (
                    ring.active_lines
                    if index == ring.active_index
                    else sealed_lines[index]
                )
                self._write_segment(ring, index, lines)
            self._prune_segments(ring)
            METRICS.inc("dc.flushes")

    def _write_segment(
        self, ring: _Ring, index: int, lines: list[str]
    ) -> None:
        """Publish one segment file via stage + atomic rename.

        ``lines`` is the segment's complete framed contents — the
        current ``active_lines`` for the active segment, or the
        snapshot taken at rotation time for a segment sealed mid-batch.
        """
        os.makedirs(self.directory, exist_ok=True)
        final = self._segment_path(ring.component, index)
        data = "".join(lines).encode("utf-8")
        tmp = fsio.stage_file(final)
        fsio.write_bytes(tmp, data)
        faults.inject("dc.flush.stage", files=[tmp])
        fsio.publish_file(tmp, final)
        METRICS.inc("dc.bytes_written", len(data))
        faults.inject("dc.flush.publish", files=[final])

    def _prune_segments(self, ring: _Ring) -> None:
        """Drop the oldest sealed segments once the sealed-record total
        exceeds the retention cap (the active segment never goes)."""
        while True:
            sealed = sorted(
                index
                for index in ring.segment_records
                if index != ring.active_index
            )
            total = sum(ring.segment_records[index] for index in sealed)
            if not sealed or total <= self.retention.max_records:
                return
            victim = sealed[0]
            path = self._segment_path(ring.component, victim)
            if os.path.exists(path):
                os.remove(path)
            del ring.segment_records[victim]
            METRICS.inc("dc.segments_pruned")

    # -- cold-start recovery --------------------------------------------

    def _recover(self) -> None:
        """Load every component's valid segment prefix from disk.

        Mirrors the journal's replay: a damaged line truncates its
        segment to the valid prefix on disk and discards later segments
        of that component; stray ``.tmp`` stages from a crashed flush
        are removed.  Recovered records re-enter the rings (retention
        applies) and each ring's id sequence continues past the newest
        recovered id.
        """
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith(".tmp"):
                os.remove(os.path.join(self.directory, name))
        recovered_total = 0
        truncated_total = 0
        for component in COMPONENTS:
            ring = self._rings[component]
            indexes = self._segment_indexes(component)
            damaged_at: int | None = None
            for position, index in enumerate(indexes):
                path = self._segment_path(component, index)
                with open(path, "rb") as handle:
                    raw = handle.read()
                valid_bytes = 0
                count = 0
                damaged = False
                offset = 0
                while offset < len(raw):
                    newline = raw.find(b"\n", offset)
                    if newline < 0:
                        truncated_total += 1
                        damaged = True
                        break
                    line = raw[offset : newline + 1]
                    body = _parse_line(line)
                    if body is None:
                        truncated_total += 1 + raw[newline + 1 :].count(b"\n")
                        damaged = True
                        break
                    ring.records.append(
                        DCRecord(
                            body["id"],
                            body.get("tick", 0),
                            body["kind"],
                            body.get("payload", {}),
                        )
                    )
                    ring.active_lines = (
                        ring.active_lines if count else []
                    )
                    count += 1
                    valid_bytes += len(line)
                    offset = newline + 1
                if count:
                    ring.segment_records[index] = count
                    ring.active_index = index
                    recovered_total += count
                if damaged:
                    os.truncate(path, valid_bytes)
                    if count == 0:
                        os.remove(path)
                        ring.segment_records.pop(index, None)
                    damaged_at = position
                    break
            if damaged_at is not None:
                for index in indexes[damaged_at + 1 :]:
                    path = self._segment_path(component, index)
                    with open(path, "rb") as handle:
                        truncated_total += handle.read().count(b"\n")
                    os.remove(path)
                    ring.segment_records.pop(index, None)
            if ring.records:
                ring.next_id = max(r.record_id for r in ring.records) + 1
                # the surviving tail segment becomes the active one; its
                # frames must be reloaded so the next flush's full-file
                # rewrite preserves them.
                ring.active_lines = []
                tail = self._segment_path(component, ring.active_index)
                if os.path.exists(tail):
                    with open(tail, "rb") as handle:
                        for line in handle.read().splitlines(keepends=True):
                            ring.active_lines.append(line.decode("utf-8"))
                now = self.clock.now if self.clock is not None else 0
                self._evict_ring(ring, now)
        METRICS.inc("dc.recovered_records", recovered_total)
        METRICS.inc("dc.truncated_records", truncated_total)

    def _wipe(self) -> None:
        """Remove any previous incarnation's segments (fresh database)."""
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith((SEGMENT_SUFFIX, ".tmp")):
                os.remove(os.path.join(self.directory, name))

    def _segment_path(self, component: str, index: int) -> str:
        return os.path.join(
            self.directory, f"{component}_{index:06d}{SEGMENT_SUFFIX}"
        )

    def _segment_indexes(self, component: str) -> list[int]:
        if not os.path.isdir(self.directory):
            return []
        prefix = f"{component}_"
        found = []
        for name in os.listdir(self.directory):
            if not (name.startswith(prefix) and name.endswith(SEGMENT_SUFFIX)):
                continue
            stem = name[len(prefix) : -len(SEGMENT_SUFFIX)]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)
