"""Data Collector: durable operational history and health alerting.

The package behind Vertica's "the database is its own diagnostic tool"
story (Lamb et al., VLDB 2012 §3.6): every operationally interesting
event flows through one :class:`DataCollector` into retention-bounded,
CRC-framed, crash-recoverable per-component rings, which the
``v_monitor.dc_*`` SQL tables, the :class:`HealthMonitor` alert engine
(``v_monitor.alerts``) and the ``python -m repro.console`` dashboard
all read back.
"""

from ..monitor.retention import DEFAULT_RETENTION, RetentionPolicy
from .collector import COMPONENTS, DataCollector, DCRecord
from .health import AlertRule, HealthConfig, HealthMonitor

__all__ = [
    "COMPONENTS",
    "DataCollector",
    "DCRecord",
    "RetentionPolicy",
    "DEFAULT_RETENTION",
    "AlertRule",
    "HealthConfig",
    "HealthMonitor",
]
