"""Runtime invariant sanitizer (the dynamic half of replint).

Enabled with ``REPRO_SANITIZE=1`` (any value other than empty/``0``),
or programmatically via :func:`override` / :func:`set_enabled`.  When
disabled every check is a cheap no-op, so production paths can call
them unconditionally.

The checks assert the physical invariants the paper relies on:

* **ROS containers** (:func:`check_container`): the position index is
  monotonic and gap-free, per-block row counts sum to the container's
  row count, every column stores the same number of rows, and each
  block's recorded min/max matches the decoded values (section 3.7 —
  pruning correctness depends on this metadata being exact).
* **Moveout / mergeout** (:func:`check_moveout_conservation`,
  :func:`check_mergeout_conservation`): WOS→ROS moveout conserves row
  counts, and mergeout writes exactly what it read minus what it
  purged (section 4 — "read from disk once and written to disk once").
* **Delete vectors** (:func:`check_no_double_delete`): a position is
  never recorded deleted twice in one vector (section 3.7.1).
* **Epochs** (:func:`check_ahm_advance`, :func:`check_epoch_advance`):
  the AHM never regresses, never passes the cluster Last Good Epoch,
  and never passes the latest queryable epoch; the epoch clock is
  strictly monotonic (section 5).

Failures raise :class:`repro.errors.InvariantViolation` with a message
naming the violated invariant and the offending values.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from ..errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.ros import ROSContainer

#: Serializes writes to the override flag (a plain ``threading.Lock``,
#: not a TrackedLock: the race detector itself calls ``enabled()``).
_OVERRIDE_LOCK = threading.Lock()

#: Tri-state programmatic override; None defers to the environment.
_OVERRIDE: bool | None = None  # concurrency: guarded-by(_OVERRIDE_LOCK)


def enabled() -> bool:
    """Whether sanitizer checks are active."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def set_enabled(value: bool | None) -> None:
    """Force the sanitizer on/off; ``None`` restores env control."""
    global _OVERRIDE
    with _OVERRIDE_LOCK:
        _OVERRIDE = value


@contextmanager
def override(value: bool) -> Iterator[None]:
    """Temporarily force the sanitizer on/off (tests, fixtures)."""
    previous = _OVERRIDE
    set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)


def invariant(condition: bool, message: str) -> None:
    """Raise :class:`InvariantViolation` unless ``condition`` holds."""
    if not condition:
        raise InvariantViolation(f"sanitizer: {message}")


# -- ROS containers ----------------------------------------------------


def check_container(container: "ROSContainer") -> None:
    """Validate a container's position indexes, counts and block min/max.

    Called after :meth:`ROSContainer.write` and :meth:`ROSContainer.load`
    when the sanitizer is enabled.  Decodes every block once — bounded
    by container size, which is what makes this affordable at test
    scale while still catching byte-level corruption.
    """
    if not enabled():
        return
    from ..storage.ros import EPOCH_COLUMN

    meta = container.meta
    grouped = {name for group in meta.column_groups for name in group}
    names = [n for n in meta.columns if n not in grouped] + [EPOCH_COLUMN]
    for name in names:
        reader = container.column_reader(name)
        invariant(
            reader.row_count == meta.row_count,
            f"container {meta.container_id}: column {name!r} has "
            f"{reader.row_count} rows, meta.row_count is {meta.row_count}",
        )
        expected_start = 0
        for index, info in enumerate(reader.blocks):
            invariant(
                info.start_position == expected_start,
                f"container {meta.container_id}: column {name!r} block "
                f"{index} starts at {info.start_position}, expected "
                f"{expected_start} (position index must be monotonic and "
                "gap-free)",
            )
            invariant(
                info.row_count > 0,
                f"container {meta.container_id}: column {name!r} block "
                f"{index} is empty",
            )
            expected_start = info.end_position
            values = reader.block_values(index)
            invariant(
                len(values) == info.row_count,
                f"container {meta.container_id}: column {name!r} block "
                f"{index} decoded {len(values)} values, index says "
                f"{info.row_count}",
            )
            non_nulls = [value for value in values if value is not None]
            invariant(
                len(values) - len(non_nulls) == info.null_count,
                f"container {meta.container_id}: column {name!r} block "
                f"{index} has {len(values) - len(non_nulls)} NULLs, index "
                f"says {info.null_count}",
            )
            if non_nulls:
                actual_min, actual_max = min(non_nulls), max(non_nulls)
                invariant(
                    info.min_value == actual_min and info.max_value == actual_max,
                    f"container {meta.container_id}: column {name!r} block "
                    f"{index} min/max metadata ({info.min_value!r}, "
                    f"{info.max_value!r}) does not match decoded values "
                    f"({actual_min!r}, {actual_max!r}) — pruning would be "
                    "wrong",
                )
            else:
                invariant(
                    info.min_value is None and info.max_value is None,
                    f"container {meta.container_id}: column {name!r} block "
                    f"{index} is all-NULL but has min/max metadata",
                )


# -- tuple mover -------------------------------------------------------


def check_moveout_conservation(
    projection: str, drained_rows: int, written_rows: int
) -> None:
    """WOS→ROS moveout must conserve the row count exactly."""
    if not enabled():
        return
    invariant(
        drained_rows == written_rows,
        f"moveout of {projection!r} drained {drained_rows} WOS rows but "
        f"wrote {written_rows} ROS rows — rows were lost or duplicated",
    )


def check_mergeout_conservation(
    projection: str, rows_read: int, rows_written: int, rows_purged: int
) -> None:
    """Mergeout output must equal input minus purged rows."""
    if not enabled():
        return
    invariant(
        rows_read == rows_written + rows_purged,
        f"mergeout of {projection!r} read {rows_read} rows but wrote "
        f"{rows_written} and purged {rows_purged} "
        f"({rows_written + rows_purged} accounted)",
    )


def check_wos_truncate(
    epoch: int,
    rows_past_epoch: int,
    rows_dropped: int,
    surviving_epochs: list[int],
) -> None:
    """WOS truncation must drop exactly the rows past ``epoch``.

    Row conservation for recovery's first step: the number of rows
    dropped equals the number stamped after the truncation epoch, and
    no surviving row is stamped after it.
    """
    if not enabled():
        return
    invariant(
        rows_dropped == rows_past_epoch,
        f"WOS truncate to epoch {epoch} dropped {rows_dropped} rows but "
        f"{rows_past_epoch} rows were stamped past the epoch — rows were "
        "lost or wrongly kept",
    )
    invariant(
        all(e <= epoch for e in surviving_epochs),
        f"WOS truncate to epoch {epoch} left a row stamped after it",
    )


# -- delete vectors ----------------------------------------------------


def check_no_double_delete(
    target_container: int | None, positions: list[int], position: int
) -> None:
    """A delete vector must not record the same position twice."""
    if not enabled():
        return
    if position in positions:
        target = "WOS" if target_container is None else f"container {target_container}"
        raise InvariantViolation(
            f"sanitizer: double delete of position {position} in the "
            f"delete vector for {target} — a row was deleted twice in one "
            "operation"
        )


# -- epochs ------------------------------------------------------------


def check_ahm_advance(
    old_ahm: int, new_ahm: int, cluster_lge: int | None, latest_queryable: int
) -> None:
    """The Ancient History Mark advances monotonically and never passes
    the latest queryable epoch; fresh advancement (not a held value)
    additionally never passes the cluster LGE when one is tracked —
    the AHM may legitimately *hold* above an LGE that appears late, it
    just must not advance further."""
    if not enabled():
        return
    invariant(
        new_ahm >= old_ahm,
        f"AHM regressed from {old_ahm} to {new_ahm}",
    )
    invariant(
        new_ahm <= latest_queryable,
        f"AHM {new_ahm} passed the latest queryable epoch "
        f"{latest_queryable} — committed history would be purged",
    )
    if cluster_lge is not None and new_ahm > old_ahm:
        invariant(
            new_ahm <= cluster_lge,
            f"AHM advanced to {new_ahm}, past the cluster Last Good Epoch "
            f"{cluster_lge} — purge would outrun durability",
        )


def check_epoch_advance(previous_epoch: int, new_epoch: int) -> None:
    """The epoch clock is strictly monotonic."""
    if not enabled():
        return
    invariant(
        new_epoch > previous_epoch,
        f"epoch clock moved from {previous_epoch} to {new_epoch}; commits "
        "must strictly advance the epoch",
    )


# -- traces ------------------------------------------------------------

#: Wall-clock slack for the nesting check: synthesized operator spans
#: are clipped to their parent exactly, so only float rounding needs
#: absorbing.
_NEST_EPS = 1e-9


def check_trace_spans_closed(trace) -> None:
    """Every span opened during a trace must be closed by its end.

    Called by ``Tracer.end_trace`` after ``TraceContext.finish``; a
    still-open span at this point means a code path closed the trace
    while bypassing the span's context manager."""
    if not enabled():
        return
    for span in trace.spans:
        invariant(
            span.closed,
            f"trace {trace.trace_id}: span {span.span_id} "
            f"({span.name!r}) was opened but never closed",
        )


def check_trace_nesting(trace) -> None:
    """Every span's interval must nest inside its parent's.

    Checks both clocks: wall offsets (within ``_NEST_EPS``) and the
    simulated ticks.  A child outside its parent means the span tree's
    causality story is a lie — the Perfetto rendering would show work
    attributed to a request that had already finished."""
    if not enabled():
        return
    for span in trace.spans:
        if span.parent_id is None:
            continue
        parent = trace.span_by_id(span.parent_id)
        invariant(
            parent is not None,
            f"trace {trace.trace_id}: span {span.span_id} "
            f"({span.name!r}) has unknown parent {span.parent_id}",
        )
        if not (span.closed and parent.closed):
            continue
        invariant(
            span.start_offset >= parent.start_offset - _NEST_EPS
            and span.end_offset <= parent.end_offset + _NEST_EPS,
            f"trace {trace.trace_id}: span {span.span_id} "
            f"({span.name!r}) interval [{span.start_offset:.9f}, "
            f"{span.end_offset:.9f}] escapes parent {parent.span_id} "
            f"({parent.name!r}) [{parent.start_offset:.9f}, "
            f"{parent.end_offset:.9f}]",
        )
        invariant(
            span.start_tick >= parent.start_tick
            and (
                span.end_tick is None
                or parent.end_tick is None
                or span.end_tick <= parent.end_tick
            ),
            f"trace {trace.trace_id}: span {span.span_id} "
            f"({span.name!r}) ticks [{span.start_tick}, {span.end_tick}] "
            f"escape parent {parent.span_id} ({parent.name!r}) ticks "
            f"[{parent.start_tick}, {parent.end_tick}]",
        )


# -- execution kernels -------------------------------------------------


def check_filter_conservation(rows_in: int, rows_out: int) -> None:
    """A filter may only ever drop rows, never invent them."""
    if not enabled():
        return
    invariant(
        0 <= rows_out <= rows_in,
        f"filter emitted {rows_out} rows from a {rows_in}-row block — "
        "a predicate kernel fabricated or lost track of rows",
    )


def check_groupby_conservation(rows_in: int, count_star_total: int) -> None:
    """Non-merge GROUP BY COUNT(*) outputs must sum to the input rows.

    Row conservation across the kernel/row engines: however a block was
    absorbed (RLE run arithmetic, dictionary histograms, per-row
    folds), every input row lands in exactly one group.
    """
    if not enabled():
        return
    invariant(
        rows_in == count_star_total,
        f"group-by absorbed {rows_in} rows but its COUNT(*) totals sum "
        f"to {count_star_total} — rows were dropped or double-counted",
    )
