"""CLI entry point: ``python -m repro.lint [paths...]``.

Exit status is 0 when no findings survive suppression, 1 otherwise —
suitable for CI gates (``tools/check.sh``) and the self-clean test.
The summary line breaks the total down per rule so CI logs show which
rule regressed; ``--concurrency`` restricts the run to the
whole-program concurrency analyses (R9 lock-order graph, R10
guarded-by audit) and ``--json`` emits a machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core import CHECKERS, run_lint


def _summarize(findings) -> dict[str, int]:
    """Finding count per rule id, in rule-id order."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(
        sorted(counts.items(), key=lambda item: (len(item[0]), item[0]))
    )


def main(argv: list[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="replint: project-specific static analysis for the "
        "Vertica reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (e.g. R1,R3); default all",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run only the concurrency analyses (R9 whole-program "
        "lock-order graph, R10 shared-state guarded-by audit)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON report on stdout",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        from . import rules as _rules  # noqa: F401  (registers checkers)

        for checker in CHECKERS:
            print(f"{checker.rule}  {checker.title}")
        return 0

    if args.concurrency and args.rules:
        print(
            "replint: error: --concurrency and --rules are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2
    if args.concurrency:
        from .rules.concurrency import CONCURRENCY_RULES

        rules = list(CONCURRENCY_RULES)
    else:
        rules = args.rules.split(",") if args.rules else None
    try:
        findings = run_lint(args.paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"replint: error: {exc}", file=sys.stderr)
        return 2
    counts = _summarize(findings)
    if args.as_json:
        print(
            json.dumps(
                {
                    "findings": [
                        {
                            "rule": finding.rule,
                            "path": finding.path,
                            "line": finding.line,
                            "message": finding.message,
                        }
                        for finding in findings
                    ],
                    "counts": counts,
                    "total": len(findings),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        per_rule = ", ".join(f"{rule}={n}" for rule, n in counts.items())
        print(
            f"replint: {len(findings)} finding(s) ({per_rule})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
