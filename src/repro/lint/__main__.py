"""CLI entry point: ``python -m repro.lint [paths...]``.

Exit status is 0 when no findings survive suppression, 1 otherwise —
suitable for CI gates (``tools/check.sh``) and the self-clean test.
"""

from __future__ import annotations

import argparse
import sys

from .core import CHECKERS, run_lint


def main(argv: list[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="replint: project-specific static analysis for the "
        "Vertica reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (e.g. R1,R3); default all",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        from . import rules as _rules  # noqa: F401  (registers checkers)

        for checker in CHECKERS:
            print(f"{checker.rule}  {checker.title}")
        return 0

    rules = args.rules.split(",") if args.rules else None
    try:
        findings = run_lint(args.paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"replint: error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"replint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
