"""Concurrency-safety analyses: whole-program and runtime.

Static half (consumed by lint rules R9/R10 in
:mod:`repro.lint.rules.concurrency`):

* :func:`build_lock_graph` — interprocedural acquired-while-holding
  graph over txn lock modes and ``threading`` mutexes, with down-rank
  order violations, non-reentrant self-loops and cycles (R9).
* :class:`SharedStateAudit` — Eraser-style guarded-by discipline for
  module globals and singleton attributes (R10), driven by
  ``# concurrency: guarded-by(<lock>) | immutable | thread-local``
  annotations.

Runtime half (active under ``REPRO_SANITIZE=1``):

* :class:`TrackedLock` / :func:`held_locks` — named mutexes whose
  per-thread ownership the detector can see.
* :data:`RACES` — the process-wide lockset race detector; shared
  objects register with :meth:`RaceDetector.track` and report writes
  with :meth:`RaceDetector.note_write`.
"""

from .lockgraph import LockGraph, build_lock_graph
from .runtime import RACES, RaceDetector, RaceReport, TrackedLock, held_locks
from .shared_state import ANNOTATION_RE, Annotation, SharedStateAudit

__all__ = [
    "ANNOTATION_RE",
    "Annotation",
    "LockGraph",
    "RACES",
    "RaceDetector",
    "RaceReport",
    "SharedStateAudit",
    "TrackedLock",
    "build_lock_graph",
    "held_locks",
]
