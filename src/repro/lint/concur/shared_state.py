"""Shared-mutable-state audit (rule R10): Eraser-style guarded-by, static.

Inventory: every module-level binding in ``src/repro`` plus every
``self.attr`` slot of a *singleton class* — a class with a module-level
instance (``METRICS = MetricsRegistry()``), whose one object is
process-wide shared state the moment a second thread exists.

A *mutation* of an audited target is any of: a ``global`` rebind, an
attribute or subscript store (``T.x = v`` / ``T[k] = v`` / ``del``),
an augmented assignment, or a call to a known mutator method
(``append``, ``update``, ``pop`` ...).  Mutations are fine in
single-threaded construction contexts — module top level (import is
serialized), ``__init__`` / ``__post_init__``, and registration
functions (any function whose name contains ``register``).  Every
other mutation site must be covered by a ``# concurrency:`` annotation
on the target's defining line:

* ``# concurrency: guarded-by(<lock-expr>)`` — each mutation must sit
  inside ``with <lock-expr>:`` (compared as whitespace-stripped
  ``ast.unparse`` text against the enclosing ``with`` items);
* ``# concurrency: immutable`` — the target is only written during
  import/registration, so a non-exempt mutation is itself the finding;
* ``# concurrency: thread-local`` — the target holds per-thread state
  (``threading.local``), so writes need no lock.

Unannotated non-exempt mutation → finding.  Annotated but the guard is
not held at the write → finding.  The annotation is the contract the
runtime lockset detector (``concur.runtime``) spot-checks dynamically.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from ..core import Module, Project

ANNOTATION_RE = re.compile(
    r"#\s*concurrency:\s*(immutable|thread-local|guarded-by\(([^)]+)\))"
)

#: Method names that mutate their receiver in place.
MUTATORS = {
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "setdefault", "sort", "reverse",
    "appendleft", "popleft",
}

#: Constructors whose instances are synchronization primitives or
#: otherwise self-synchronized — attributes bound to them are not
#: shared *data* and need no guarded-by annotation.
_SYNC_CTORS = {
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "TrackedLock", "local", "Queue",
}


@dataclass(frozen=True)
class Annotation:
    """Parsed ``# concurrency:`` marker from a defining line."""

    kind: str  # "immutable" | "thread-local" | "guarded-by"
    guard: str | None  # whitespace-stripped lock expression text

    @property
    def display(self) -> str:
        if self.kind == "guarded-by":
            return f"guarded-by({self.guard})"
        return self.kind


def module_annotations(module: Module) -> dict[int, Annotation]:
    """line number -> parsed annotation, for one module's source."""
    out: dict[int, Annotation] = {}
    for lineno, line in enumerate(module.source.splitlines(), start=1):
        match = ANNOTATION_RE.search(line)
        if match is None:
            continue
        if match.group(2) is not None:
            out[lineno] = Annotation(
                "guarded-by", re.sub(r"\s+", "", match.group(2))
            )
        else:
            out[lineno] = Annotation(match.group(1), None)
    return out


@dataclass
class TargetInfo:
    """One audited piece of shared state."""

    display: str  # "_ACTIVE" or "MetricsRegistry._counters"
    annotation: Annotation | None


@dataclass
class MutationReport:
    """A non-exempt, non-covered mutation — one R10 finding."""

    module: Module
    line: int
    message: str


def _in_scope(module: Module) -> bool:
    return "repro/" in module.norm_path and not module.is_test_code()


def _is_sync_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name in _SYNC_CTORS


class SharedStateAudit:
    """Builds the target inventory, then walks every function body."""

    def __init__(self, project: Project):
        self.project = project
        self.reports: list[MutationReport] = []
        #: global name -> TargetInfo (first module to define it wins).
        self.globals: dict[str, TargetInfo] = {}
        #: module norm_path -> set of its own module-level names.
        self.module_globals: dict[str, set[str]] = {}
        #: class name -> {attr -> TargetInfo} for singleton classes.
        self.singleton_attrs: dict[str, dict[str, TargetInfo]] = {}
        #: module-level instance name -> its class ("METRICS" -> "MetricsRegistry").
        self.instance_of: dict[str, str] = {}
        self._collect_targets()

    # -- inventory ----------------------------------------------------

    def _collect_targets(self) -> None:
        class_defs: dict[str, tuple[Module, ast.ClassDef]] = {}
        instantiated: set[str] = set()
        for module in self.project.modules:
            if not _in_scope(module):
                continue
            annotations = module_annotations(module)
            names = self.module_globals.setdefault(module.norm_path, set())
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    class_defs.setdefault(node.name, (module, node))
                    continue
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    names.add(target.id)
                    self.globals.setdefault(
                        target.id,
                        TargetInfo(target.id, annotations.get(node.lineno)),
                    )
                value = node.value
                if isinstance(value, ast.Call) and isinstance(
                    value.func, ast.Name
                ):
                    instantiated.add(value.func.id)
                    for target in targets:
                        if isinstance(target, ast.Name):
                            self.instance_of.setdefault(
                                target.id, value.func.id
                            )
        for class_name in sorted(instantiated):
            if class_name not in class_defs:
                continue
            module, node = class_defs[class_name]
            annotations = module_annotations(module)
            attrs: dict[str, TargetInfo] = {}
            for child in ast.walk(node):
                if isinstance(child, ast.Assign):
                    child_targets = child.targets
                elif isinstance(child, ast.AnnAssign) and child.value is not None:
                    child_targets = [child.target]
                else:
                    continue
                if _is_sync_ctor(child.value):
                    continue
                for target in child_targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    annotation = annotations.get(child.lineno)
                    existing = attrs.get(target.attr)
                    # the annotated defining line wins over bare stores.
                    if existing is None or (
                        existing.annotation is None and annotation is not None
                    ):
                        attrs[target.attr] = TargetInfo(
                            f"{class_name}.{target.attr}", annotation
                        )
            if attrs:
                self.singleton_attrs[class_name] = attrs

    # -- walk ---------------------------------------------------------

    def run(self) -> list[MutationReport]:
        for module in self.project.modules:
            if not _in_scope(module):
                continue
            walker = _ModuleWalker(self, module)
            walker.run()
        return self.reports

    def record(
        self,
        module: Module,
        line: int,
        target: TargetInfo,
        verb: str,
        func_chain: list[str],
        with_guards: list[str],
    ) -> None:
        where = func_chain[-1] + "()" if func_chain else "module scope"
        annotation = target.annotation
        if annotation is None:
            self.reports.append(
                MutationReport(
                    module,
                    line,
                    f"shared state '{target.display}' is {verb} in {where} "
                    "without a '# concurrency:' annotation at its "
                    "definition (guarded-by(<lock>) | immutable | "
                    "thread-local)",
                )
            )
        elif annotation.kind == "immutable":
            self.reports.append(
                MutationReport(
                    module,
                    line,
                    f"'{target.display}' is annotated "
                    f"'# concurrency: immutable' but {verb} in {where} "
                    "(outside __init__/registration)",
                )
            )
        elif annotation.kind == "guarded-by":
            if annotation.guard not in with_guards:
                held = ", ".join(with_guards) if with_guards else "no locks"
                self.reports.append(
                    MutationReport(
                        module,
                        line,
                        f"'{target.display}' is "
                        f"guarded-by({annotation.guard}) but {verb} in "
                        f"{where} holding [{held}]; wrap the write in "
                        f"'with {annotation.guard}:'",
                    )
                )
        # thread-local: writes are per-thread by construction.


class _ModuleWalker:
    """Statement walker tracking function, class and ``with`` context."""

    def __init__(self, audit: SharedStateAudit, module: Module):
        self.audit = audit
        self.module = module
        self.own_globals = audit.module_globals.get(module.norm_path, set())

    def run(self) -> None:
        for stmt in self.module.tree.body:
            self.visit(stmt, func_chain=[], class_name=None, guards=[])

    def exempt(self, func_chain: list[str]) -> bool:
        if not func_chain:
            return True  # module top level: import is single-threaded
        for name in func_chain:
            if name in ("__init__", "__post_init__") or "register" in name:
                return True
        return False

    # -- traversal ----------------------------------------------------

    def visit(
        self,
        stmt: ast.stmt,
        func_chain: list[str],
        class_name: str | None,
        guards: list[str],
    ) -> None:
        if isinstance(stmt, ast.ClassDef):
            for child in stmt.body:
                self.visit(child, func_chain, stmt.name, guards)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            chain = func_chain + [stmt.name]
            for child in stmt.body:
                self.visit(child, chain, class_name, guards)
            return
        if isinstance(stmt, ast.With):
            inner = guards + [
                re.sub(r"\s+", "", ast.unparse(item.context_expr))
                for item in stmt.items
            ]
            self.inspect(stmt, func_chain, class_name, guards, shallow=True)
            for child in stmt.body:
                self.visit(child, func_chain, class_name, inner)
            return
        compound_bodies = []
        if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
            compound_bodies = [stmt.body, stmt.orelse]
        elif isinstance(stmt, ast.Try):
            compound_bodies = [stmt.body, stmt.orelse, stmt.finalbody]
            compound_bodies += [handler.body for handler in stmt.handlers]
        elif isinstance(stmt, ast.Match):
            compound_bodies = [case.body for case in stmt.cases]
        if compound_bodies:
            self.inspect(stmt, func_chain, class_name, guards, shallow=True)
            for body in compound_bodies:
                for child in body:
                    self.visit(child, func_chain, class_name, guards)
            return
        self.inspect(stmt, func_chain, class_name, guards, shallow=False)

    def inspect(
        self,
        stmt: ast.stmt,
        func_chain: list[str],
        class_name: str | None,
        guards: list[str],
        shallow: bool,
    ) -> None:
        """Check one statement's own (non-body) mutations."""
        if self.exempt(func_chain):
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self.check_store(target, stmt.lineno, "rebound", func_chain,
                                 class_name, guards)
        elif isinstance(stmt, ast.AugAssign):
            self.check_store(stmt.target, stmt.lineno, "mutated", func_chain,
                             class_name, guards)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.check_store(stmt.target, stmt.lineno, "rebound", func_chain,
                             class_name, guards)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.check_store(target, stmt.lineno, "deleted from",
                                 func_chain, class_name, guards)
        # mutator method calls can hide anywhere in an expression.
        for node in ast.walk(stmt) if not shallow else self._shallow(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATORS
            ):
                target = self.lookup(node.func.value, class_name)
                if target is not None:
                    self.audit.record(
                        self.module, node.lineno, target,
                        f"mutated ({node.func.attr})", func_chain, guards,
                    )

    @staticmethod
    def _shallow(stmt: ast.stmt):
        """Expression nodes of a compound statement, excluding bodies."""
        fields = {
            ast.If: ["test"], ast.While: ["test"],
            ast.For: ["iter", "target"], ast.AsyncFor: ["iter", "target"],
            ast.With: ["items"], ast.Match: ["subject"], ast.Try: [],
        }.get(type(stmt), [])
        for name in fields:
            value = getattr(stmt, name)
            items = value if isinstance(value, list) else [value]
            for item in items:
                if isinstance(item, ast.withitem):
                    item = item.context_expr
                yield from ast.walk(item)

    # -- target resolution --------------------------------------------

    def lookup(
        self, expr: ast.expr, class_name: str | None
    ) -> TargetInfo | None:
        """TargetInfo for an expression denoting audited state, if any."""
        if isinstance(expr, ast.Name):
            if expr.id in self.own_globals:
                return self.audit.globals.get(expr.id)
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            base, attr = expr.value.id, expr.attr
            if base == "self" and class_name is not None:
                return self.audit.singleton_attrs.get(class_name, {}).get(attr)
            if base != "self":
                # a singleton's attr poked from outside
                # (``METRICS._counters[...] = v``) ...
                instance_class = self.audit.instance_of.get(base)
                if instance_class is not None:
                    owner = self.audit.singleton_attrs.get(instance_class, {})
                    found = owner.get(attr)
                    if found is not None:
                        return found
                # ... or a cross-module write through an import alias
                # (``other._REGISTRY[k] = v``): only names actually
                # bound by an import qualify, so attribute access on
                # ordinary local objects never matches a global that
                # happens to share the attribute's name.
                if base in self._imported_names():
                    return self.audit.globals.get(attr)
        return None

    def _imported_names(self) -> set[str]:
        cached = getattr(self, "_import_cache", None)
        if cached is None:
            cached = set()
            for node in self.module.tree.body:
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        cached.add(alias.asname or alias.name.split(".")[0])
            self._import_cache = cached
        return cached

    def check_store(
        self,
        target: ast.expr,
        line: int,
        verb: str,
        func_chain: list[str],
        class_name: str | None,
        guards: list[str],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.check_store(element, line, verb, func_chain,
                                 class_name, guards)
            return
        if isinstance(target, ast.Name):
            # plain name stores are locals unless declared global.
            if target.id in self.own_globals and self._declared_global(
                target.id, func_chain
            ):
                info = self.audit.globals.get(target.id)
                if info is not None:
                    self.audit.record(self.module, line, info, verb,
                                      func_chain, guards)
            return
        if isinstance(target, ast.Subscript):
            info = self.lookup(target.value, class_name)
            if info is not None:
                self.audit.record(self.module, line, info,
                                  verb if verb != "rebound" else "mutated",
                                  func_chain, guards)
            return
        if isinstance(target, ast.Attribute):
            info = self.lookup(target, class_name)
            if info is not None:
                self.audit.record(self.module, line, info, verb,
                                  func_chain, guards)
                return
            # storing through a global object: ``_HELD.names = []``.
            if isinstance(target.value, ast.Name):
                info = self.lookup(target.value, class_name)
                if info is not None:
                    self.audit.record(self.module, line, info,
                                      f"mutated (.{target.attr})",
                                      func_chain, guards)

    def _declared_global(self, name: str, func_chain: list[str]) -> bool:
        if not func_chain:
            return True
        return name in self._global_decls()

    def _global_decls(self) -> set[str]:
        cached = getattr(self, "_global_decl_cache", None)
        if cached is None:
            cached = set()
            for node in ast.walk(self.module.tree):
                if isinstance(node, ast.Global):
                    cached.update(node.names)
            self._global_decl_cache = cached
        return cached
