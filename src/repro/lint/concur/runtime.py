"""Runtime concurrency companion: tracked locks + lockset race detection.

This is the dynamic half of the R9/R10 static analyses, enabled (like
the rest of the sanitizer) by ``REPRO_SANITIZE=1``.  Two pieces:

* :class:`TrackedLock` — a ``threading.Lock`` wrapper that records the
  locks each thread currently holds in a thread-local stack.  The
  process-wide singletons (``METRICS``, ``PROFILES``, ``EVENTS``,
  ``TRACER``) guard their mutable state with one, which is what lets
  the race detector compute candidate locksets without patching the
  interpreter.

* :data:`RACES` — an Eraser-style lockset race detector
  (Savage et al., SOSP '97).  Registered shared objects report each
  write via :func:`RaceDetector.note_write`; the detector intersects
  the writer's held-lock set into the object's candidate lockset.
  While a single thread writes, the object is *exclusive* and nothing
  is checked (initialisation needs no locks).  The first write from a
  second thread moves it to *shared*, seeding the candidate lockset
  from that write's held locks; every later write intersects.  A write
  that empties the lockset means no single lock protects the object —
  a data race candidate — and is recorded (once per object) on
  :meth:`RaceDetector.reports`.

Nothing here raises from arbitrary threads: reports accumulate and the
test harness asserts them empty (thread-stress smoke) or non-empty
(seeded negative fixtures).  With no objects tracked — the production
default — ``note_write`` is a single attribute read and a truthiness
check, so instrumented hot paths (``MetricsRegistry.inc``) stay cheap.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .. import sanitizer

#: Per-thread stack of held :class:`TrackedLock` names.
_HELD = threading.local()  # concurrency: thread-local


def held_locks() -> tuple[str, ...]:
    """Names of the tracked locks the calling thread holds right now."""
    return tuple(getattr(_HELD, "names", ()))


def _push_held(name: str) -> None:
    names = getattr(_HELD, "names", None)
    if names is None:
        names = _HELD.names = []
    names.append(name)


def _pop_held(name: str) -> None:
    names = getattr(_HELD, "names", None)
    if names and names[-1] == name:
        names.pop()
    elif names and name in names:
        # released out of acquisition order: still forget it.
        names.reverse()
        names.remove(name)
        names.reverse()


class TrackedLock:
    """A named mutex whose ownership is visible to the race detector.

    Semantics match ``threading.Lock`` (non-reentrant); the only
    addition is that acquiring pushes ``name`` onto the calling
    thread's held-lock stack and releasing pops it, so
    :func:`held_locks` — and through it the lockset algorithm — can
    see which guards a write ran under.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, timeout: float = -1) -> bool:
        """Acquire the underlying lock; records ownership on success."""
        got = self._lock.acquire(timeout=timeout)
        if got:
            _push_held(self.name)
        return got

    def release(self) -> None:
        """Release the underlying lock and forget ownership."""
        _pop_held(self.name)
        self._lock.release()

    def locked(self) -> bool:
        """Whether any thread currently holds the lock."""
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


@dataclass
class RaceReport:
    """One shared object whose candidate lockset went empty."""

    #: Registered name of the shared object.
    name: str
    #: Free-form location hint supplied by the writing site.
    where: str
    #: Number of writes observed up to (and including) the racy one.
    writes: int
    #: The lockset held at the emptying write (always disjoint from
    #: the prior candidate set, by construction).
    held: tuple[str, ...]

    def render(self) -> str:
        """Human-readable one-liner for harness output."""
        guard = ", ".join(self.held) if self.held else "no locks"
        site = f" at {self.where}" if self.where else ""
        return (
            f"lockset race: {self.name}{site} — write #{self.writes} under "
            f"[{guard}] leaves no common guard across all writers"
        )


@dataclass
class _SharedState:
    """Eraser bookkeeping for one registered shared object."""

    first_thread: int | None = None
    shared: bool = False
    lockset: frozenset[str] = frozenset()
    writes: int = 0
    reported: bool = False
    report: RaceReport | None = field(default=None, repr=False)


class RaceDetector:
    """Process-wide lockset (Eraser) race detector for shared objects."""

    def __init__(self):
        self._mutex = threading.Lock()
        self._objects: dict[str, _SharedState] = {}  # concurrency: guarded-by(self._mutex)

    def track(self, name: str) -> None:
        """Start monitoring writes reported under ``name``."""
        with self._mutex:
            self._objects.setdefault(name, _SharedState())

    def untrack(self, name: str) -> None:
        """Stop monitoring ``name`` and drop its state."""
        with self._mutex:
            self._objects.pop(name, None)

    def tracking(self, name: str) -> bool:
        """Whether ``name`` is currently monitored."""
        return name in self._objects

    def note_write(self, name: str, where: str = "") -> None:
        """Record one write to the shared object registered as ``name``.

        Call sites invoke this unconditionally; the fast path (nothing
        tracked, or this object untracked, or sanitizer off) is a dict
        probe and returns immediately.
        """
        objects = self._objects
        if not objects or name not in objects:
            return
        if not sanitizer.enabled():
            return
        held = frozenset(held_locks())
        thread_id = threading.get_ident()
        with self._mutex:
            state = objects.get(name)
            if state is None:
                return
            state.writes += 1
            if state.first_thread is None:
                state.first_thread = thread_id
            if thread_id != state.first_thread and not state.shared:
                # first write from a second thread: the object is now
                # genuinely shared; seed the candidate lockset here so
                # unguarded single-threaded initialisation never trips.
                state.shared = True
                state.lockset = held
            elif state.shared:
                state.lockset &= held
            if state.shared and not state.lockset and not state.reported:
                state.reported = True
                state.report = RaceReport(
                    name=name, where=where, writes=state.writes, held=tuple(sorted(held))
                )

    def reports(self) -> list[RaceReport]:
        """All race reports so far, in registration order of the objects."""
        with self._mutex:
            return [
                state.report
                for state in self._objects.values()
                if state.report is not None
            ]

    def reset(self) -> None:
        """Forget every tracked object and report."""
        with self._mutex:
            self._objects.clear()


#: The process-wide race detector shared-object writes report into.
RACES = RaceDetector()
