"""Name-based interprocedural call graph over the lint project.

R9 needs to know, for every function in ``src/repro``, the full set of
lock modes and tracked mutexes its *callees* may acquire — not just
the ones it acquires directly.  Python has no static types to resolve
method calls precisely, so resolution is name-based (the same
approximation R3 uses within one module, widened to the whole
project), sharpened by two filters that remove the worst collisions:

* **self binding** — ``self.f(...)`` inside class ``C`` resolves to
  ``C.f`` alone when ``C`` defines ``f``, instead of every ``f`` in
  the tree;
* **signature compatibility** — a call site only reaches functions
  whose parameter list could accept its argument shape, so
  ``stats.update(mapping)`` (one argument, a dict method) never links
  to a three-argument ``Session.update`` that takes table locks.

Both filters only *remove* impossible edges; anything ambiguous stays,
which is the right bias for a deadlock analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..core import Module, Project


@dataclass(frozen=True)
class CallSite:
    """Shape of one call expression, for signature filtering."""

    name: str
    npos: int
    kwnames: frozenset[str]
    #: ``*args`` / ``**kwargs`` at the call — matches any signature.
    star: bool
    #: True for ``self.name(...)`` receivers.
    self_receiver: bool


@dataclass
class FunctionInfo:
    """One function or method definition in the analyzed tree."""

    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    name: str
    #: ``Class.method`` for methods, bare name for module functions.
    qualname: str
    #: Enclosing class name, or None for module-level functions.
    class_name: str | None
    call_sites: list[CallSite] = field(default_factory=list)


def site_of_call(call: ast.Call) -> CallSite | None:
    """Build a :class:`CallSite` for a call expression, if nameable."""
    if isinstance(call.func, ast.Name):
        name, self_receiver = call.func.id, False
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
        self_receiver = (
            isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        )
    else:
        return None
    star = any(isinstance(arg, ast.Starred) for arg in call.args) or any(
        kw.arg is None for kw in call.keywords
    )
    return CallSite(
        name=name,
        npos=sum(1 for arg in call.args if not isinstance(arg, ast.Starred)),
        kwnames=frozenset(
            kw.arg for kw in call.keywords if kw.arg is not None
        ),
        star=star,
        self_receiver=self_receiver,
    )


#: Method names shared with the builtin container/str/file protocols.
#: An attribute call with one of these names (``mapping.get(key)``) is
#: overwhelmingly a builtin call, and because nearly every project
#: function transitively bumps ``METRICS`` (taking its lock), resolving
#: them by bare name would hang phantom lock edges off every dict
#: lookup.  They resolve only through an explicit ``self.`` receiver
#: whose class defines the method; anything else is treated as builtin.
BUILTIN_COLLISIONS = frozenset(
    {
        "get", "keys", "values", "items", "setdefault", "pop", "popitem",
        "clear", "copy", "append", "extend", "insert", "remove", "discard",
        "add", "update", "sort", "reverse", "index", "count", "join",
        "split", "rsplit", "strip", "lstrip", "rstrip", "startswith",
        "endswith", "format", "encode", "decode", "read", "write",
        "readline", "readlines", "seek", "tell", "flush", "close", "open",
    }
)


def _in_scope(module: Module) -> bool:
    """Whether a module participates in the whole-program analysis."""
    return "repro/" in module.norm_path and not module.is_test_code()


def collect_functions(project: Project) -> list[FunctionInfo]:
    """Every function/method in the project's in-scope modules."""
    functions: list[FunctionInfo] = []
    for module in project.modules:
        if not _in_scope(module):
            continue
        for node in module.tree.body:
            functions.extend(_walk_scope(module, node, class_name=None))
    return functions


def _walk_scope(
    module: Module, node: ast.stmt, class_name: str | None
) -> list[FunctionInfo]:
    out: list[FunctionInfo] = []
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        qual = f"{class_name}.{node.name}" if class_name else node.name
        info = FunctionInfo(
            module=module,
            node=node,
            name=node.name,
            qualname=qual,
            class_name=class_name,
        )
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                site = site_of_call(child)
                if site is not None:
                    info.call_sites.append(site)
        out.append(info)
        # nested defs are analysed as their own functions too.
        for stmt in node.body:
            out.extend(_walk_scope(module, stmt, class_name))
    elif isinstance(node, ast.ClassDef):
        for stmt in node.body:
            out.extend(_walk_scope(module, stmt, node.name))
    return out


def _signature(fn: FunctionInfo) -> tuple[int, int, int | None, set[str], bool]:
    """(required_pos, required_kwonly, max_pos, kw_names, has_kwargs)."""
    args = fn.node.args
    positional = [param.arg for param in args.posonlyargs + args.args]
    is_static = any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in fn.node.decorator_list
    )
    if (
        fn.class_name is not None
        and not is_static
        and positional
        and positional[0] in ("self", "cls")
    ):
        positional = positional[1:]
    required = max(0, len(positional) - len(args.defaults))
    max_pos = None if args.vararg else len(positional)
    kw_names = set(positional) | {param.arg for param in args.kwonlyargs}
    required_kwonly = sum(
        1 for default in args.kw_defaults if default is None
    )
    return required, required_kwonly, max_pos, kw_names, args.kwarg is not None


def _compatible(site: CallSite, fn: FunctionInfo) -> bool:
    """Whether ``site``'s argument shape could invoke ``fn``."""
    if site.star:
        return True
    required, required_kwonly, max_pos, kw_names, has_kwargs = _signature(fn)
    if max_pos is not None and site.npos > max_pos:
        return False
    if not has_kwargs and not site.kwnames <= kw_names:
        return False
    if site.npos + len(site.kwnames) < required + required_kwonly:
        return False
    return True


class CallGraph:
    """Name-indexed call graph with transitive acquisition closure."""

    def __init__(self, functions: list[FunctionInfo]):
        self.functions = functions
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.by_class: dict[tuple[str, str], list[FunctionInfo]] = {}
        for fn in functions:
            self.by_name.setdefault(fn.name, []).append(fn)
            if fn.class_name is not None:
                self.by_class.setdefault(
                    (fn.class_name, fn.name), []
                ).append(fn)

    def resolve_site(
        self, site: CallSite, caller_class: str | None
    ) -> list[FunctionInfo]:
        """Project functions a call site might reach, post-filtering."""
        candidates: list[FunctionInfo] | None = None
        if site.self_receiver and caller_class is not None:
            candidates = self.by_class.get((caller_class, site.name))
        if candidates is None:
            if site.name in BUILTIN_COLLISIONS:
                return []
            candidates = self.by_name.get(site.name, [])
        return [fn for fn in candidates if _compatible(site, fn)]

    def transitive_closure(
        self, direct: dict[int, frozenset[str]]
    ) -> dict[int, frozenset[str]]:
        """Fixpoint of "acquisitions reachable from each function".

        ``direct`` maps ``id(FunctionInfo)`` to the set of acquisition
        labels the body performs itself; the result adds everything any
        transitively reachable callee performs.  Plain worklist
        iteration — the project has a few thousand functions, and each
        converges in a handful of rounds.
        """
        callers_of: dict[int, list[FunctionInfo]] = {}
        for fn in self.functions:
            seen: set[int] = set()
            for site in fn.call_sites:
                for callee in self.resolve_site(site, fn.class_name):
                    if id(callee) not in seen and callee is not fn:
                        seen.add(id(callee))
                        callers_of.setdefault(id(callee), []).append(fn)
        result: dict[int, set[str]] = {
            id(fn): set(direct.get(id(fn), frozenset()))
            for fn in self.functions
        }
        worklist = list(self.functions)
        while worklist:
            fn = worklist.pop()
            acquired = result[id(fn)]
            for caller in callers_of.get(id(fn), []):
                target = result[id(caller)]
                if not acquired <= target:
                    target |= acquired
                    worklist.append(caller)
        return {key: frozenset(value) for key, value in result.items()}
