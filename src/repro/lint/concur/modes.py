"""Canonical txn lock-mode ranking and acquisition-site detection.

Shared by the intra-file R3 rule (:mod:`repro.lint.rules.lock_order`)
and the whole-program R9 analysis (:mod:`repro.lint.concur.lockgraph`);
it lives here, dependency-free, so neither package imports the other.
"""

from __future__ import annotations

import ast

#: Canonical acquisition rank; acquire low ranks first.
LOCK_RANK = {"O": 0, "X": 1, "S": 2, "I": 2, "SI": 2, "T": 3, "U": 3}


def mode_of_call(node: ast.Call) -> str | None:
    """The ``LockMode.<M>`` mode name an acquire-style call passes."""
    if not isinstance(node.func, ast.Attribute) or node.func.attr != "acquire":
        return None
    candidates = list(node.args) + [kw.value for kw in node.keywords]
    for argument in candidates:
        if (
            isinstance(argument, ast.Attribute)
            and isinstance(argument.value, ast.Name)
            and argument.value.id == "LockMode"
            and argument.attr in LOCK_RANK
        ):
            return argument.attr
    return None
