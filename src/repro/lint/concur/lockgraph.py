"""Whole-program lock-order graph construction (rule R9).

Promotes the intra-file R3 scan to an interprocedural analysis:

* **Nodes** are either txn lock *ranks* (the canonical R3 classes
  ``O < X < S/I/SI < T/U`` — equal-rank modes share one node so S→I
  never reads as a cycle) or concrete *mutexes* (module globals and
  ``self.attr`` slots initialised with ``threading.Lock`` / ``RLock``
  / ``Condition`` / ``TrackedLock``, named ``GLOBAL`` or
  ``Class.attr``).

* **Edges** mean "acquired while holding": ``with`` nesting for
  mutexes, R3's acquire-after-acquire sequencing for txn modes, and —
  the interprocedural part — call sites, where everything a callee may
  transitively acquire (via the name-based call graph's fixpoint) is
  acquired under whatever the caller holds at that line.

* **Findings**: txn-mode edges that run *down* the canonical rank
  order; a mutex acquired while already held (self-loop — every mutex
  here is non-reentrant); and cycles (strongly connected components)
  in the remaining graph, the classic static deadlock signal.

The walk is branch-aware: statements in different arms of an
``if``/``elif``/``else`` or ``try``/``except`` never order against
each other (only one arm runs), which is what keeps dispatchers like
``execute_sql`` — S-taking SELECT arm textually before the X-taking
DELETE arm — out of the report.  Loop bodies are walked once with no
back edge.  Callee acquisitions are assumed balanced (released by
return), so they order against the caller's held set but do not extend
it; direct txn-mode acquisitions *do* persist for the rest of the
function, matching the transaction model where locks live to commit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..core import Module, Project
from .callgraph import CallGraph, FunctionInfo, collect_functions, site_of_call
from .modes import LOCK_RANK, mode_of_call as _mode_of_call

#: Rank -> display/node label for the collapsed mode classes.
RANK_LABEL = {0: "O", 1: "X", 2: "S/I/SI", 3: "T/U"}

_LOCK_CTORS = {"Lock", "RLock", "Condition", "TrackedLock"}


def _is_lock_ctor(node: ast.expr) -> bool:
    """Whether an expression constructs a mutex we should track."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _LOCK_CTORS
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_CTORS
    return False


def _mode_node(mode: str) -> str:
    return f"mode:{RANK_LABEL[LOCK_RANK[mode]]}"


def _mode_rank(label: str) -> int | None:
    """Rank of a ``mode:`` node label, None for mutex nodes."""
    if not label.startswith("mode:"):
        return None
    name = label[len("mode:"):]
    for rank, display in RANK_LABEL.items():
        if display == name:
            return rank
    return None


@dataclass(frozen=True)
class Witness:
    """Source location that contributed an edge."""

    path: str
    line: int
    function: str


@dataclass
class Order:
    """One raw analysis result before rendering into lint findings."""

    kind: str  # "down-rank" | "self-loop" | "cycle"
    message: str
    witness: Witness


class LockInventory:
    """Every statically known mutex in the project."""

    def __init__(self, project: Project, functions: list[FunctionInfo]):
        #: module norm_path -> set of module-level lock global names.
        self.globals: dict[str, set[str]] = {}
        #: class name -> set of lock attribute names.
        self.class_attrs: dict[str, set[str]] = {}
        #: attr name -> classes defining a lock under that attr.
        self._attr_owners: dict[str, set[str]] = {}
        for module in project.modules:
            for node in module.tree.body:
                if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.globals.setdefault(
                                module.norm_path, set()
                            ).add(target.id)
        for fn in functions:
            if fn.class_name is None:
                continue
            for child in ast.walk(fn.node):
                if not isinstance(child, ast.Assign):
                    continue
                if not _is_lock_ctor(child.value):
                    continue
                for target in child.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.class_attrs.setdefault(fn.class_name, set()).add(
                            target.attr
                        )
                        self._attr_owners.setdefault(target.attr, set()).add(
                            fn.class_name
                        )

    def resolve(
        self, expr: ast.expr, module: Module, class_name: str | None
    ) -> str | None:
        """Node label for an expression denoting a known mutex, if any."""
        if isinstance(expr, ast.Name):
            if expr.id in self.globals.get(module.norm_path, ()):
                return f"lock:{expr.id}"
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            attr = expr.attr
            if expr.value.id == "self" and class_name is not None:
                if attr in self.class_attrs.get(class_name, ()):
                    return f"lock:{class_name}.{attr}"
                return None
            owners = self._attr_owners.get(attr, set())
            if len(owners) == 1:
                return f"lock:{next(iter(owners))}.{attr}"
            if owners:
                return f"lock:*.{attr}"
        return None


def _direct_labels(
    fn: FunctionInfo, inventory: LockInventory
) -> frozenset[str]:
    """Acquisition labels performed directly by one function body."""
    labels: set[str] = set()
    for child in ast.walk(fn.node):
        if isinstance(child, ast.With):
            for item in child.items:
                label = inventory.resolve(
                    item.context_expr, fn.module, fn.class_name
                )
                if label is not None:
                    labels.add(label)
        elif isinstance(child, ast.Call):
            mode = _mode_of_call(child)
            if mode is not None:
                labels.add(_mode_node(mode))
                continue
            if (
                isinstance(child.func, ast.Attribute)
                and child.func.attr == "acquire"
            ):
                label = inventory.resolve(
                    child.func.value, fn.module, fn.class_name
                )
                if label is not None:
                    labels.add(label)
    return frozenset(labels)


class LockGraph:
    """The assembled acquired-while-holding graph plus raw findings."""

    def __init__(self):
        #: (holder, acquired) -> witnesses (first few retained).
        self.edges: dict[tuple[str, str], list[Witness]] = {}
        self.orders: list[Order] = []

    def add_edge(self, holder: str, acquired: str, witness: Witness) -> None:
        if holder == acquired and holder.startswith("mode:"):
            return  # re-acquiring the same rank class is conversion, not order
        bucket = self.edges.setdefault((holder, acquired), [])
        if len(bucket) < 4:
            bucket.append(witness)


class _FunctionWalker:
    """Branch-aware ordered walk of one function body."""

    def __init__(
        self,
        fn: FunctionInfo,
        graph: LockGraph,
        inventory: LockInventory,
        callgraph: CallGraph,
        acquired_all: dict[int, frozenset[str]],
    ):
        self.fn = fn
        self.graph = graph
        self.inventory = inventory
        self.callgraph = callgraph
        self.acquired_all = acquired_all

    def witness(self, line: int) -> Witness:
        return Witness(self.fn.module.path, line, self.fn.qualname)

    def run(self) -> None:
        self.walk_body(self.fn.node.body, held=(), mode_ranks=frozenset())

    # -- state propagation -------------------------------------------

    def walk_body(
        self,
        stmts: list[ast.stmt],
        held: tuple[str, ...],
        mode_ranks: frozenset[int],
    ) -> frozenset[int]:
        """Walk statements in order; returns escaping txn-mode ranks."""
        for stmt in stmts:
            mode_ranks = self.walk_stmt(stmt, held, mode_ranks)
        return mode_ranks

    def walk_stmt(
        self,
        stmt: ast.stmt,
        held: tuple[str, ...],
        mode_ranks: frozenset[int],
    ) -> frozenset[int]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return mode_ranks  # nested scopes are analysed separately
        if isinstance(stmt, ast.With):
            mode_ranks = self.scan_exprs(
                [item.context_expr for item in stmt.items], held, mode_ranks
            )
            inner = held
            for item in stmt.items:
                label = self.inventory.resolve(
                    item.context_expr, self.fn.module, self.fn.class_name
                )
                if label is None:
                    continue
                self.acquire_lock(label, inner, mode_ranks, item.context_expr.lineno)
                inner = inner + (label,)
            return self.walk_body(stmt.body, inner, mode_ranks)
        if isinstance(stmt, ast.If):
            mode_ranks = self.scan_exprs([stmt.test], held, mode_ranks)
            after_body = self.walk_body(stmt.body, held, mode_ranks)
            after_else = self.walk_body(stmt.orelse, held, mode_ranks)
            return after_body | after_else
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            mode_ranks = self.scan_exprs([stmt.iter], held, mode_ranks)
            after = self.walk_body(stmt.body, held, mode_ranks)
            return self.walk_body(stmt.orelse, held, after)
        if isinstance(stmt, ast.While):
            mode_ranks = self.scan_exprs([stmt.test], held, mode_ranks)
            after = self.walk_body(stmt.body, held, mode_ranks)
            return self.walk_body(stmt.orelse, held, after)
        if isinstance(stmt, ast.Try):
            after_body = self.walk_body(stmt.body, held, mode_ranks)
            outcomes = [self.walk_body(stmt.orelse, held, after_body)]
            for handler in stmt.handlers:
                # an exception may fire before any acquisition in the
                # body completed, so handlers restart from the pre-try
                # state rather than ordering after the body.
                outcomes.append(self.walk_body(handler.body, held, mode_ranks))
            merged = frozenset().union(*outcomes)
            return self.walk_body(stmt.finalbody, held, merged)
        if isinstance(stmt, ast.Match):
            subject = self.scan_exprs([stmt.subject], held, mode_ranks)
            outcomes = [
                self.walk_body(case.body, held, subject) for case in stmt.cases
            ]
            return frozenset(subject).union(*outcomes)
        # simple statement: scan every expression inside it, in order.
        return self.scan_exprs([stmt], held, mode_ranks)

    def scan_exprs(
        self,
        roots: list[ast.AST],
        held: tuple[str, ...],
        mode_ranks: frozenset[int],
    ) -> frozenset[int]:
        """Process calls inside non-body expressions, in source order."""
        for root in roots:
            for node in ast.walk(root):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(node, ast.Call):
                    mode_ranks = self.handle_call(node, held, mode_ranks)
        return mode_ranks

    # -- events -------------------------------------------------------

    def handle_call(
        self,
        call: ast.Call,
        held: tuple[str, ...],
        mode_ranks: frozenset[int],
    ) -> frozenset[int]:
        mode = _mode_of_call(call)
        if mode is not None:
            rank = LOCK_RANK[mode]
            self.acquire_mode(rank, held, mode_ranks, call.lineno, direct=True)
            return mode_ranks | {rank}
        if isinstance(call.func, ast.Attribute) and call.func.attr == "acquire":
            label = self.inventory.resolve(
                call.func.value, self.fn.module, self.fn.class_name
            )
            if label is not None:
                self.acquire_lock(label, held, mode_ranks, call.lineno)
                return mode_ranks
        # plain call: charge everything the callees may acquire.
        site = site_of_call(call)
        labels: set[str] = set()
        if site is not None:
            for target in self.callgraph.resolve_site(
                site, self.fn.class_name
            ):
                if target.node is self.fn.node:
                    continue
                labels.update(self.acquired_all.get(id(target), ()))
        for label in sorted(labels):
            rank = _mode_rank(label)
            if rank is not None:
                self.acquire_mode(
                    rank, held, mode_ranks, call.lineno, direct=False
                )
            else:
                self.acquire_lock(label, held, mode_ranks, call.lineno)
        return mode_ranks

    def acquire_lock(
        self,
        label: str,
        held: tuple[str, ...],
        mode_ranks: frozenset[int],
        line: int,
    ) -> None:
        witness = self.witness(line)
        for holder in held:
            self.graph.add_edge(holder, label, witness)
        if label in held:
            self.graph.orders.append(
                Order(
                    "self-loop",
                    f"{self.fn.qualname}() acquires non-reentrant "
                    f"{label.removeprefix('lock:')} while already holding it",
                    witness,
                )
            )
        for rank in mode_ranks:
            self.graph.add_edge(f"mode:{RANK_LABEL[rank]}", label, witness)

    def acquire_mode(
        self,
        rank: int,
        held: tuple[str, ...],
        mode_ranks: frozenset[int],
        line: int,
        direct: bool,
    ) -> None:
        witness = self.witness(line)
        node = f"mode:{RANK_LABEL[rank]}"
        for holder in held:
            self.graph.add_edge(holder, node, witness)
        worst = max(mode_ranks, default=None)
        if worst is not None and rank < worst:
            via = "" if direct else " via a callee"
            self.graph.orders.append(
                Order(
                    "down-rank",
                    f"{self.fn.qualname}() acquires LockMode rank "
                    f"{RANK_LABEL[rank]}{via} after rank {RANK_LABEL[worst]}; "
                    "canonical order is O < X < S/I/SI < T/U",
                    witness,
                )
            )
        for prior in mode_ranks:
            if prior != rank:
                self.graph.add_edge(f"mode:{RANK_LABEL[prior]}", node, witness)


def build_lock_graph(project: Project) -> LockGraph:
    """Run the whole-program analysis; returns graph + raw findings."""
    functions = collect_functions(project)
    inventory = LockInventory(project, functions)
    callgraph = CallGraph(functions)
    direct = {id(fn): _direct_labels(fn, inventory) for fn in functions}
    acquired_all = callgraph.transitive_closure(direct)
    graph = LockGraph()
    for fn in functions:
        _FunctionWalker(fn, graph, inventory, callgraph, acquired_all).run()
    _find_cycles(graph)
    return graph


def _find_cycles(graph: LockGraph) -> None:
    """Append cycle findings for every non-trivial SCC of the graph.

    Down-rank mode edges are excluded first — they are already reported
    as order violations, and keeping them would turn every ordering bug
    into a spurious "cycle" against the canonical up-rank edges.
    """
    adjacency: dict[str, set[str]] = {}
    for (holder, acquired), _ in sorted(graph.edges.items()):
        if holder == acquired:
            continue  # self-loops are reported at the acquisition site
        holder_rank, acquired_rank = _mode_rank(holder), _mode_rank(acquired)
        if (
            holder_rank is not None
            and acquired_rank is not None
            and acquired_rank < holder_rank
        ):
            continue
        adjacency.setdefault(holder, set()).add(acquired)
        adjacency.setdefault(acquired, set())

    # iterative Tarjan SCC over the (small) node set.
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adjacency.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(adjacency.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)

    seen: set[tuple[str, ...]] = set()
    for component in sccs:
        key = tuple(component)
        if key in seen:
            continue
        seen.add(key)
        members = set(component)
        witness = None
        spots = []
        for (holder, acquired), witnesses in sorted(graph.edges.items()):
            if holder in members and acquired in members and witnesses:
                if witness is None:
                    witness = witnesses[0]
                spots.append(
                    f"{holder.removeprefix('lock:')}->"
                    f"{acquired.removeprefix('lock:')} at "
                    f"{witnesses[0].path}:{witnesses[0].line}"
                )
        assert witness is not None
        names = ", ".join(label.removeprefix("lock:") for label in component)
        graph.orders.append(
            Order(
                "cycle",
                f"lock-order cycle among {{{names}}}: " + "; ".join(spots),
                witness,
            )
        )
