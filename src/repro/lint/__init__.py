"""replint: project-specific static analysis + runtime invariant sanitizer.

Static side (``python -m repro.lint src/repro tests``): AST-based
checkers enforcing the contracts the paper states in prose — operator
protocol completeness (R1), encoding registry round-trip surface (R2),
deadlock-free lock acquisition order (R3), no storage/catalog mutation
from the query path (R4), general hygiene (R5), and public-API
docstring/annotation coverage (R6).  See :mod:`repro.lint.rules`.

Runtime side (:mod:`repro.lint.sanitizer`): cheap invariant assertions
over ROS container construction, WOS→ROS moveout, delete vectors and
epoch advancement, enabled with ``REPRO_SANITIZE=1`` (the test suite's
``conftest.py`` turns it on for the whole run).

This ``__init__`` deliberately avoids importing the rule modules so
that production code can import the sanitizer without paying for (or
depending on) the analysis machinery.
"""

from .core import (
    CHECKERS,
    Checker,
    Finding,
    Module,
    Project,
    register_checker,
    run_lint,
)

__all__ = [
    "CHECKERS",
    "Checker",
    "Finding",
    "Module",
    "Project",
    "register_checker",
    "run_lint",
]
