"""replint core: project model, checker registry, runner.

``replint`` is the repo's own static-analysis pass.  It parses every
Python file under the given paths into ASTs once, wraps them in a
:class:`Project`, and hands the project to each registered
:class:`Checker`.  Checkers yield :class:`Finding` s; the CLI renders
them as ``path:line: RULE message`` and exits non-zero when any
survive suppression.

Suppression works per line with a trailing comment::

    risky_call()  # replint: disable=R4

or ``# replint: disable`` to silence every rule on that line.  Use it
sparingly — each suppression is an assertion that a human reviewed the
site.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """``path:line: RULE message`` — the CLI output format."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


_SUPPRESS_RE = re.compile(r"#\s*replint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


@dataclass
class Module:
    """A parsed source file plus the lookup helpers checkers need."""

    path: str
    source: str
    tree: ast.Module
    #: line number -> set of suppressed rule ids ("*" = all rules).
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str) -> "Module":
        """Parse ``path``; raises SyntaxError for unparseable files."""
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
        suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = match.group(1)
                if rules:
                    ids = {rule.strip().upper() for rule in rules.split(",")}
                else:
                    ids = {"*"}
                suppressions[lineno] = ids
        return cls(path=path, source=source, tree=tree, suppressions=suppressions)

    @property
    def norm_path(self) -> str:
        """Path with forward slashes, for fragment matching."""
        return self.path.replace(os.sep, "/")

    def is_test_code(self) -> bool:
        """Whether the module is part of the test suite."""
        norm = self.norm_path
        return "/tests/" in norm or norm.startswith("tests/")

    def suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is disabled on ``line`` of this module."""
        ids = self.suppressions.get(line)
        return bool(ids) and ("*" in ids or rule.upper() in ids)

    def top_level_classes(self) -> list[ast.ClassDef]:
        """Module-level class definitions (nested classes excluded)."""
        return [node for node in self.tree.body if isinstance(node, ast.ClassDef)]

    def dunder_all(self) -> list[str] | None:
        """Names listed in the module's ``__all__``, or None if absent."""
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    return [
                        element.value
                        for element in node.value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
        return None


class Project:
    """Every parsed module of one lint run, with cross-module indexes."""

    def __init__(self, modules: list[Module]):
        self.modules = modules
        self._by_path = {module.norm_path: module for module in modules}

    @classmethod
    def load(cls, paths: Iterable[str]) -> "Project":
        """Collect and parse ``*.py`` under each path (file or tree)."""
        files: list[str] = []
        for path in paths:
            if os.path.isfile(path):
                files.append(path)
                continue
            if not os.path.isdir(path):
                raise FileNotFoundError(f"no such file or directory: {path!r}")
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".pytest_cache")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        return cls([Module.parse(path) for path in files])

    def modules_under(self, fragment: str) -> list[Module]:
        """Modules whose normalized path contains ``fragment``."""
        return [m for m in self.modules if fragment in m.norm_path]

    def module_named(self, suffix: str) -> Module | None:
        """The module whose normalized path ends with ``suffix``."""
        for module in self.modules:
            if module.norm_path.endswith(suffix):
                return module
        return None


class Checker:
    """Base class for lint rules.

    Subclasses set :attr:`rule` / :attr:`title` and implement
    :meth:`check`, yielding findings over the whole project (most rules
    need cross-module context: ``__all__`` exports, registries, call
    graphs).  Register with :func:`register_checker` so the runner and
    ``--list`` see them.
    """

    #: Short rule id ("R1" ... "R6").
    rule: str = "R0"
    #: One-line description shown by ``python -m repro.lint --list``.
    title: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield every violation of this rule in ``project``."""
        raise NotImplementedError

    def finding(self, module: Module, line: int, message: str) -> Finding:
        """Build a :class:`Finding` against ``module``."""
        return Finding(rule=self.rule, path=module.path, line=line, message=message)


#: All registered checkers, in registration (= rule id) order.
CHECKERS: list[Checker] = []  # concurrency: immutable


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding an instance of ``cls`` to :data:`CHECKERS`."""
    CHECKERS.append(cls())
    return cls


def run_lint(
    paths: Iterable[str], rules: Iterable[str] | None = None
) -> list[Finding]:
    """Lint ``paths`` and return surviving findings, sorted by location.

    ``rules`` restricts the run to specific rule ids (case-insensitive).
    Importing :mod:`repro.lint.rules` here keeps the package import
    light for the sanitizer's sake.
    """
    from . import rules as _rules  # noqa: F401  (registers checkers)

    wanted = {rule.strip().upper() for rule in rules} if rules else None
    if wanted is not None:
        known = {checker.rule.upper() for checker in CHECKERS}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
    project = Project.load(paths)
    findings: list[Finding] = []
    for checker in CHECKERS:
        if wanted is not None and checker.rule.upper() not in wanted:
            continue
        for finding in checker.check(project):
            module = project._by_path.get(finding.path.replace(os.sep, "/"))
            if module is not None and module.suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


# -- shared AST helpers used by several rules ---------------------------


def call_name(node: ast.Call) -> str | None:
    """Bare name of a call's function (``foo(...)`` -> "foo")."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def attribute_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty list for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def walk_in_order(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first, source-order traversal (ast.walk is breadth-first)."""
    yield node
    for child in ast.iter_child_nodes(node):
        yield from walk_in_order(child)
