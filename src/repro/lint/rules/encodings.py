"""R2: every concrete Encoding is complete and registered.

A concrete ``Encoding`` subclass under ``storage/encodings/`` must:

* define (or inherit) a non-empty ``name`` class attribute — its
  registry / SQL identity;
* implement (or inherit from a concrete ancestor) both ``encode`` and
  ``decode`` — the byte-exact round-trip surface of section 3.4;
* be registered into ``ENCODINGS`` via a module-level
  ``register(TheEncoding(...))`` call, so AUTO selection and block
  decoding can find it by name.

Classes carrying ``@abstractmethod`` members are treated as abstract
and exempt (only the registry-visible leaves must be complete).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Module, Project, register_checker
from .operators import defines_method, inherits_feature, subclass_closure

ENCODINGS_FRAGMENT = "storage/encodings"


def is_abstract(node: ast.ClassDef) -> bool:
    """Whether any method is decorated with ``abstractmethod``."""
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                name = (
                    decorator.id
                    if isinstance(decorator, ast.Name)
                    else decorator.attr
                    if isinstance(decorator, ast.Attribute)
                    else None
                )
                if name == "abstractmethod":
                    return True
    return False


def registered_class_names(modules: list[Module]) -> set[str]:
    """Class names instantiated inside a ``register(...)`` call."""
    names: set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if func_name != "register" or not node.args:
                continue
            argument = node.args[0]
            if isinstance(argument, ast.Call) and isinstance(
                argument.func, ast.Name
            ):
                names.add(argument.func.id)
    return names


def defines_nonempty_name(node: ast.ClassDef) -> bool:
    """Whether the class assigns ``name`` to a non-empty string."""
    for item in node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "name":
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and value.value
                ):
                    return True
    return False


@register_checker
class EncodingContractChecker(Checker):
    """R2: encodings define name, encode/decode, and are registered."""

    rule = "R2"
    title = (
        "Encoding subclasses define name, implement encode/decode, and "
        "are registered in ENCODINGS"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        modules = [
            m
            for m in project.modules_under(ENCODINGS_FRAGMENT)
            if not m.is_test_code()
        ]
        if not modules:
            return
        classes: dict[str, tuple[Module, ast.ClassDef]] = {}
        for module in modules:
            for node in module.top_level_classes():
                classes[node.name] = (module, node)
        encodings = subclass_closure(classes, "Encoding")
        registered = registered_class_names(modules)
        for name in sorted(encodings):
            module, node = classes[name]
            if name.startswith("_") or is_abstract(node):
                continue
            if not inherits_feature(
                name, classes, "Encoding", defines_nonempty_name
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"encoding {name!r} does not define a non-empty `name` "
                    "class attribute",
                )
            for method in ("encode", "decode"):
                if not inherits_feature(
                    name,
                    classes,
                    "Encoding",
                    lambda cls, m=method: defines_method(cls, m),
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"encoding {name!r} does not implement {method}() — "
                        "the byte round-trip contract is incomplete",
                    )
            if name not in registered:
                yield self.finding(
                    module,
                    node.lineno,
                    f"encoding {name!r} is never registered via "
                    "register(...) — ENCODINGS lookup by name will fail",
                )
