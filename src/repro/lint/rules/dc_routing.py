"""R13: operational events route through the Data Collector.

Vertica's rule for its Data Collector was that *every* operationally
interesting event lands in a DC table — not in a scattered zoo of
printfs, ad-hoc log files and per-subsystem counters that each need
their own reader.  The reproduction adopts the same discipline for the
packages on the query/cluster path (``service/``, ``cluster/``,
``tuple_mover/``): an event worth telling an operator about goes
through :meth:`repro.dc.DataCollector.record` (history; queryable as
``v_monitor.dc_*``) or :data:`repro.monitor.METRICS` (aggregates;
queryable as ``v_monitor.metrics``).

Concretely this rule forbids, in those packages:

* ``print(...)`` — invisible to SQL, lost on process exit;
* any ``logging`` usage (``logging.getLogger``, ``logging.info``,
  ``logger.warning`` chains rooted at a ``getLogger`` import);
* writing to ``sys.stdout`` / ``sys.stderr`` directly.

Test code is exempt, as is the console front end (whose whole job is
writing to stdout).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Project, attribute_chain, register_checker

#: Package path fragments where ad-hoc output is forbidden.
_PROTECTED = ("repro/service/", "repro/cluster/", "repro/tuple_mover/")

_ADVICE = (
    "; record operational events through DataCollector.record() "
    "(v_monitor.dc_* tables) or METRICS (v_monitor.metrics) instead"
)


def _violation(node: ast.Call) -> str | None:
    """The reason string if this call is ad-hoc operational output."""
    chain = attribute_chain(node.func)
    if not chain:
        return None
    if chain == ["print"]:
        return "print() on the query/cluster path"
    if chain[0] == "logging":
        return f"logging via {'.'.join(chain)}()"
    if chain[-1] == "getLogger":
        return f"logger creation via {'.'.join(chain)}()"
    if (
        len(chain) >= 3
        and chain[0] == "sys"
        and chain[1] in ("stdout", "stderr")
        and chain[2] == "write"
    ):
        return f"direct sys.{chain[1]}.write()"
    return None


@register_checker
class DcRoutingChecker(Checker):
    """R13: no ad-hoc print/logging in service/, cluster/, tuple_mover/."""

    rule = "R13"
    title = (
        "operational events in service/, cluster/ and tuple_mover/ must "
        "flow through the Data Collector or the metrics registry — no "
        "ad-hoc print()/logging on the query path"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_test_code():
                continue
            if not any(part in module.norm_path for part in _PROTECTED):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                reason = _violation(node)
                if reason is None:
                    continue
                yield self.finding(module, node.lineno, reason + _ADVICE)
