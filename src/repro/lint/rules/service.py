"""R11: service-layer statements must go through the governor.

The workload-management invariant of the service layer
(``repro/service/``) is that *every* statement a session runs is
admitted by the :class:`repro.service.ResourceGovernor` first: the
grant carries the statement's memory budget, the admission queue is
where overload sheds load, and the release in ``finally`` is what the
no-leak acceptance test audits.  A service-layer call that reaches the
SQL front end directly — ``Database.sql(...)``, ``db.sql(...)`` or a
bare ``execute_sql(...)`` — bypasses all of that: it runs ungoverned,
unbudgeted and uncancellable, and ``v_monitor.resource_pools`` never
sees it.

This rule flags any such call inside ``repro/service/`` modules except
the one sanctioned site: ``ServiceSession._run_governed`` in
``service/session.py``, which is reached only after an admission
ticket is granted and is where the cancel token and workload policy
are installed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Project, attribute_chain, register_checker

#: The one function allowed to enter the SQL front end from the
#: service layer (it holds a granted admission ticket when it does).
_SANCTIONED_MODULE = "repro/service/session.py"
_SANCTIONED_FUNC = "_run_governed"


def _ungoverned_entry(node: ast.Call) -> str | None:
    """The reason string if this call enters the SQL front end."""
    chain = attribute_chain(node.func)
    if not chain:
        return None
    if chain[-1] == "execute_sql":
        return "execute_sql() enters the SQL front end"
    if chain[-1] == "sql" and len(chain) >= 2:
        return f"{'.'.join(chain)}() runs a statement on the Database"
    return None


@register_checker
class GovernedServiceChecker(Checker):
    """R11: repro/service/ statements route through the governor."""

    rule = "R11"
    title = (
        "service-layer code must reach the SQL front end only through "
        "ServiceSession._run_governed (admission ticket granted, cancel "
        "token installed) — never Database.sql()/execute_sql() directly"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_test_code():
                continue
            if "repro/service/" not in module.norm_path:
                continue
            sanctioned_spans: list[tuple[int, int]] = []
            if module.norm_path.endswith(_SANCTIONED_MODULE):
                for node in ast.walk(module.tree):
                    if (
                        isinstance(node, ast.FunctionDef)
                        and node.name == _SANCTIONED_FUNC
                    ):
                        sanctioned_spans.append(
                            (node.lineno, node.end_lineno or node.lineno)
                        )
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                reason = _ungoverned_entry(node)
                if reason is None:
                    continue
                if any(
                    lo <= node.lineno <= hi for lo, hi in sanctioned_spans
                ):
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"{reason} without admission control; route it "
                    "through ServiceSession._run_governed so the "
                    "governor grants, budgets and can cancel it",
                )
