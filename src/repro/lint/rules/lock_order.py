"""R3: deadlock-free lock acquisition order.

The paper's seven-mode lock model (Tables 1 and 2) is deadlock-prone if
different code paths acquire modes in different orders.  replint
enforces one canonical acquisition order over the whole codebase::

    O  <  X  <  S / I / SI  <  T / U

i.e. DDL (Owner) locks are taken before write (eXclusive) locks, which
are taken before reader/loader locks, which are taken before tuple
mover locks.  Any single static path that acquires a lower-ranked mode
*after* a higher-ranked one is flagged.

Detection: every call whose ``mode`` argument is a ``LockMode.<M>``
attribute is treated as a lock acquisition (that is how every
``LockManager.acquire`` call site in the tree spells the mode).  Paths
are function bodies plus one level of same-module call inlining, so a
helper that acquires ``X`` poisons its callers' sequences at the call
site — a static walk of acquisition call sites, not a runtime check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..concur.modes import LOCK_RANK, mode_of_call as _mode_of_call
from ..core import Checker, Finding, Module, Project, register_checker


def _called_local_names(node: ast.Call) -> list[str]:
    """Names a call might resolve to in the same module (``f`` or
    ``self.f`` / ``obj.f`` -> "f")."""
    if isinstance(node.func, ast.Name):
        return [node.func.id]
    if isinstance(node.func, ast.Attribute):
        return [node.func.attr]
    return []


class _FunctionAcquisitions:
    """Ordered (line, mode) acquisitions of one function body."""

    def __init__(self, module: Module, node: ast.AST, name: str):
        self.module = module
        self.name = name
        #: [(line, mode)] in source order; direct acquisitions only.
        self.direct: list[tuple[int, str]] = []
        #: [(line, callee_name)] in source order.
        self.calls: list[tuple[int, str]] = []
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            mode = _mode_of_call(child)
            if mode is not None:
                self.direct.append((child.lineno, mode))
                continue
            for callee in _called_local_names(child):
                self.calls.append((child.lineno, callee))
        self.direct.sort()
        self.calls.sort()


@register_checker
class LockOrderChecker(Checker):
    """R3: lock modes are acquired in canonical O < X < S/I/SI < T/U order."""

    rule = "R3"
    title = "LockManager acquisitions follow the canonical O < X < S/I/SI < T/U order"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_test_code():
                continue
            functions: list[_FunctionAcquisitions] = []
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(
                        _FunctionAcquisitions(module, node, node.name)
                    )
            by_name = {fn.name: fn for fn in functions}
            for fn in functions:
                sequence = self._expanded_sequence(fn, by_name)
                yield from self._check_sequence(module, fn.name, sequence)

    @staticmethod
    def _expanded_sequence(
        fn: _FunctionAcquisitions,
        by_name: dict[str, _FunctionAcquisitions],
    ) -> list[tuple[int, str]]:
        """Direct acquisitions merged with callees' (one level deep)."""
        events = list(fn.direct)
        for line, callee in fn.calls:
            target = by_name.get(callee)
            if target is None or target is fn:
                continue
            # Inherit the callee's direct acquisitions at the call line.
            events.extend((line, mode) for _, mode in target.direct)
        events.sort()
        return events

    def _check_sequence(
        self, module: Module, function: str, sequence: list[tuple[int, str]]
    ) -> Iterator[Finding]:
        best_line, best_mode = 0, None
        for line, mode in sequence:
            if best_mode is not None and LOCK_RANK[mode] < LOCK_RANK[best_mode]:
                yield self.finding(
                    module,
                    line,
                    f"{function}() acquires LockMode.{mode} after "
                    f"LockMode.{best_mode} (line {best_line}); canonical "
                    "order is O < X < S/I/SI < T/U",
                )
            if best_mode is None or LOCK_RANK[mode] > LOCK_RANK[best_mode]:
                best_line, best_mode = line, mode
