"""R7: all storage writes go through the atomic-commit helper.

Crash consistency in the storage layer hinges on every on-disk
artifact being produced by the stage-checksum-rename protocol in
:mod:`repro.storage.fsio`.  A raw ``open(path, "w")`` anywhere under
``storage/`` or ``tuple_mover/`` bypasses the staging directory, the
CRC32 manifest and the atomic publish rename — a crash mid-write then
leaves a half-written file that *looks* committed.  This rule forbids
write-mode ``open()`` calls in those packages; the single sanctioned
raw-write site lives in ``fsio.py`` behind a reviewed suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Project, call_name, register_checker

#: Package path fragments where raw write-mode ``open()`` is forbidden.
_PROTECTED = ("repro/storage/", "repro/tuple_mover/")

#: Mode characters that make an ``open()`` a write.
_WRITE_CHARS = frozenset("wax+")


def _write_mode(node: ast.Call) -> str | None:
    """The mode string if this ``open()`` call writes, else None."""
    mode_arg: ast.expr | None = None
    if len(node.args) >= 2:
        mode_arg = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_arg = keyword.value
    if mode_arg is None:
        return None  # default "r" is read-only
    if not (
        isinstance(mode_arg, ast.Constant) and isinstance(mode_arg.value, str)
    ):
        # dynamic mode expression: treat as a write, the reviewer must
        # suppress explicitly if it really is read-only.
        return "<dynamic>"
    mode = mode_arg.value
    if _WRITE_CHARS & set(mode):
        return mode
    return None


@register_checker
class AtomicIOChecker(Checker):
    """R7: no raw write-mode open() in storage/ or tuple_mover/."""

    rule = "R7"
    title = (
        "storage and tuple-mover code must write files through "
        "repro.storage.fsio (stage + checksum + atomic rename), never "
        "raw open(..., 'w')"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_test_code():
                continue
            if not any(part in module.norm_path for part in _PROTECTED):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node) != "open":
                    continue
                mode = _write_mode(node)
                if mode is None:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"raw open(..., {mode!r}) bypasses the atomic commit "
                    "protocol; write through repro.storage.fsio",
                )
