"""R6: public-API docstring and type-annotation coverage.

``repro/sdk.py`` (the user-defined extension SDK, section 6) and
``repro/sql/interface.py`` (the SQL entry point) are the two surfaces
external code programs against.  Every public module-level function,
public class, and public method of a public class in those modules
must carry a docstring, annotate every named parameter (``self`` /
``cls`` exempt), and declare a return type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Module, Project, register_checker

#: Path suffixes of the modules whose public API is enforced.
PUBLIC_API_MODULES = ("repro/sdk.py", "repro/sql/interface.py")


def _public_functions(
    module: Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(qualified name, node) for each enforced function/method."""
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("_"):
                        yield f"{node.name}.{item.name}", item


def _unannotated_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> list[str]:
    """Names of named parameters lacking annotations."""
    args = node.args
    named = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if is_method and named and named[0].arg in ("self", "cls"):
        named = named[1:]
    missing = [a.arg for a in named if a.annotation is None]
    for variadic in (args.vararg, args.kwarg):
        if variadic is not None and variadic.annotation is None:
            missing.append(variadic.arg)
    return missing


@register_checker
class PublicApiDocsChecker(Checker):
    """R6: sdk.py / sql/interface.py public API is documented and typed."""

    rule = "R6"
    title = (
        "public functions in sdk.py and sql/interface.py have docstrings "
        "and full type annotations"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            norm = module.norm_path
            if not any(norm.endswith(suffix) for suffix in PUBLIC_API_MODULES):
                continue
            for qualname, node in _public_functions(module):
                is_method = "." in qualname
                if ast.get_docstring(node) is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"public API {qualname}() has no docstring",
                    )
                missing = _unannotated_params(node, is_method)
                if missing:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"public API {qualname}() is missing type "
                        f"annotations for: {', '.join(missing)}",
                    )
                if node.returns is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"public API {qualname}() has no return annotation",
                    )
