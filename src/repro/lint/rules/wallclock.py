"""R8: no wall-clock time in the self-healing runtime.

Chaos reproducibility (and the supervisor acceptance tests) depend on
the failure detector, the recovery state machine and the fault layer
being driven *only* by :class:`repro.cluster.clock.SimulatedClock` —
an integer tick counter a seed replays exactly.  One ``time.time()``
in an ejection path, one ``time.sleep()`` in a backoff loop, or one
``datetime.now()`` stamped into an event makes a chaos failure
unreplayable: the same seed takes a different branch on a slower
machine.  This rule forbids wall-clock reads and sleeps in the
packages that make up that runtime (``cluster/``, ``faults/``,
``tuple_mover/``).

Only the argless ``datetime.now()`` / ``datetime.today()`` spellings
are flagged (an explicit ``tz=`` argument marks a deliberate,
reviewed clock read), and ``time.perf_counter()`` remains allowed:
duration *measurement* (tuple-mover event timings, profiles) does not
influence control flow — only clock reads that *branch* break replay.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Project, attribute_chain, register_checker

#: Package path fragments where wall-clock calls are forbidden.
_PROTECTED = ("repro/cluster/", "repro/faults/", "repro/tuple_mover/")

#: Forbidden calls, as dotted-name suffixes (matched against the full
#: attribute chain so both ``time.time()`` and ``from time import
#: time`` spellings are caught).
_FORBIDDEN = {
    ("time", "time"): "time.time() reads the wall clock",
    ("time", "sleep"): "time.sleep() stalls on the wall clock",
    ("datetime", "now"): "datetime.now() reads the wall clock",
    ("datetime", "utcnow"): "datetime.utcnow() reads the wall clock",
    ("datetime", "today"): "datetime.today() reads the wall clock",
}

#: Bare names that are forbidden when imported from their module
#: (``from time import sleep`` -> ``sleep(...)``).
_FORBIDDEN_BARE = {
    "sleep": ("time", "sleep"),
    "utcnow": ("datetime", "utcnow"),
}


#: Suffixes flagged only when called with no arguments at all — an
#: explicit ``tz=`` argument marks a deliberate, reviewed clock read.
_ARGLESS_ONLY = {("datetime", "now"), ("datetime", "today")}


def _violation(node: ast.Call) -> str | None:
    """The reason string if this call reads/stalls on the wall clock."""
    chain = attribute_chain(node.func)
    suffix: tuple[str, ...] | None = None
    if len(chain) >= 2:
        suffix = tuple(chain[-2:])
    elif len(chain) == 1:
        # bare-name call: only the unambiguous ``from time import
        # sleep`` / ``utcnow`` spellings are attributable to a module.
        suffix = _FORBIDDEN_BARE.get(chain[0])
    if suffix not in _FORBIDDEN:
        return None
    if suffix in _ARGLESS_ONLY and (node.args or node.keywords):
        return None
    return _FORBIDDEN[suffix]


@register_checker
class WallClockChecker(Checker):
    """R8: cluster/, faults/ and tuple_mover/ run on simulated time."""

    rule = "R8"
    title = (
        "the self-healing runtime (cluster/, faults/, tuple_mover/) must "
        "use the simulated clock, never time.time()/time.sleep()/"
        "datetime.now() — wall-clock reads break chaos-seed replay"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_test_code():
                continue
            if not any(part in module.norm_path for part in _PROTECTED):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                reason = _violation(node)
                if reason is None:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"{reason}; drive this code from "
                    "repro.cluster.clock.SimulatedClock ticks instead",
                )
