"""R9 + R10: whole-program concurrency safety.

R9 promotes the intra-file R3 lock-order scan to an interprocedural
analysis over the project call graph: every ``LockMode`` acquisition
and every known mutex (``threading.Lock`` / ``RLock`` / ``Condition``
/ ``TrackedLock`` globals and instance slots) becomes a node in one
global acquired-while-holding graph; findings are canonical-order
violations, non-reentrant re-acquisition, and cycles — the static
deadlock signal.  R10 audits shared mutable state (module globals and
singleton attributes) for Eraser-style guarded-by discipline against
``# concurrency:`` annotations.  Both build on :mod:`repro.lint.concur`;
this module only adapts their reports into :class:`Finding` s.
"""

from __future__ import annotations

import os
from typing import Iterator

from ..concur.lockgraph import build_lock_graph
from ..concur.shared_state import SharedStateAudit
from ..core import Checker, Finding, Project, register_checker

#: Rule ids selected by ``python -m repro.lint --concurrency``.
CONCURRENCY_RULES = ("R9", "R10")


@register_checker
class WholeProgramLockOrderChecker(Checker):
    """R9: the global lock-order graph is acyclic and respects ranks."""

    rule = "R9"
    title = (
        "whole-program lock-order graph: canonical mode order, no "
        "re-acquisition, no cycles"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph = build_lock_graph(project)
        by_path = {module.norm_path: module for module in project.modules}
        for order in graph.orders:
            witness = order.witness
            module = by_path.get(witness.path.replace(os.sep, "/"))
            if module is None:
                continue
            yield self.finding(module, witness.line, order.message)


@register_checker
class SharedStateChecker(Checker):
    """R10: shared mutable state follows its guarded-by annotations."""

    rule = "R10"
    title = (
        "module globals and singleton attributes honor their "
        "'# concurrency:' guarded-by/immutable annotations"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for report in SharedStateAudit(project).run():
            yield self.finding(report.module, report.line, report.message)
