"""R1: execution operators implement the full pull-model protocol.

Every module-level public class under ``execution/operators/`` that
(transitively) subclasses ``Operator`` must:

* implement or inherit ``_produce`` (or override ``blocks``) — the
  vectorized pull protocol of section 6.1;
* define or inherit an ``op_name`` class attribute (EXPLAIN identity);
* be exported from ``execution/operators/__init__.py`` via ``__all__``
  so the executor and tests see one canonical operator surface.

The base ``Operator`` itself and underscore-private helpers are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Module, Project, register_checker

OPERATORS_FRAGMENT = "execution/operators"


def base_names(node: ast.ClassDef) -> list[str]:
    """Bare names of a class's bases (``base.Operator`` -> "Operator")."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def subclass_closure(
    classes: dict[str, tuple[Module, ast.ClassDef]], root: str
) -> set[str]:
    """Names of classes that (transitively) subclass ``root``."""
    members: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, (_, node) in classes.items():
            if name in members or name == root:
                continue
            if any(base == root or base in members for base in base_names(node)):
                members.add(name)
                changed = True
    return members


def defines_method(node: ast.ClassDef, method: str) -> bool:
    """Whether the class body defines ``method`` directly."""
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name == method
        for item in node.body
    )


def defines_class_attr(node: ast.ClassDef, attr: str) -> bool:
    """Whether the class body assigns class attribute ``attr``."""
    for item in node.body:
        if isinstance(item, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == attr
                for target in item.targets
            ):
                return True
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == attr:
                return True
    return False


def inherits_feature(
    name: str,
    classes: dict[str, tuple[Module, ast.ClassDef]],
    root: str,
    has_feature,
) -> bool:
    """Whether ``name`` or any ancestor below ``root`` has the feature."""
    seen: set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in seen or current == root or current not in classes:
            continue
        seen.add(current)
        _, node = classes[current]
        if has_feature(node):
            return True
        stack.extend(base_names(node))
    return False


@register_checker
class OperatorProtocolChecker(Checker):
    """R1: operator subclasses complete the protocol and are exported."""

    rule = "R1"
    title = (
        "Operator subclasses implement _produce/op_name and are exported "
        "in execution.operators.__all__"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        modules = [
            m
            for m in project.modules_under(OPERATORS_FRAGMENT)
            if not m.is_test_code()
        ]
        if not modules:
            return
        classes: dict[str, tuple[Module, ast.ClassDef]] = {}
        for module in modules:
            for node in module.top_level_classes():
                classes[node.name] = (module, node)
        operators = subclass_closure(classes, "Operator")
        init = project.module_named(OPERATORS_FRAGMENT + "/__init__.py")
        exported = set(init.dunder_all() or []) if init else set()
        for name in sorted(operators):
            module, node = classes[name]
            if name.startswith("_"):
                continue
            if not inherits_feature(
                name,
                classes,
                "Operator",
                lambda cls: defines_method(cls, "_produce")
                or defines_method(cls, "blocks"),
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"operator {name!r} implements neither _produce() nor "
                    "blocks() — the pull protocol is incomplete",
                )
            if not inherits_feature(
                name,
                classes,
                "Operator",
                lambda cls: defines_class_attr(cls, "op_name"),
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"operator {name!r} does not define op_name (EXPLAIN "
                    "output would show the base class label)",
                )
            if init is not None and name not in exported:
                yield self.finding(
                    init,
                    1,
                    f"operator {name!r} is not exported in "
                    "execution.operators.__all__",
                )
