"""replint rule modules.

Importing this package registers every checker with
:data:`repro.lint.core.CHECKERS`.  To add a new rule: create a module
here, subclass :class:`repro.lint.core.Checker`, decorate it with
``@register_checker``, and import the module below (registration order
determines display order).
"""

from . import operators  # noqa: F401  R1
from . import encodings  # noqa: F401  R2
from . import lock_order  # noqa: F401  R3
from . import mutation  # noqa: F401  R4
from . import hygiene  # noqa: F401  R5
from . import api_docs  # noqa: F401  R6
from . import atomic_io  # noqa: F401  R7
from . import wallclock  # noqa: F401  R8
from . import concurrency  # noqa: F401  R9, R10
from . import service  # noqa: F401  R11
from . import journal_io  # noqa: F401  R12
from . import dc_routing  # noqa: F401  R13

__all__ = [
    "operators",
    "encodings",
    "lock_order",
    "mutation",
    "hygiene",
    "api_docs",
    "atomic_io",
    "wallclock",
    "concurrency",
    "service",
    "journal_io",
    "dc_routing",
]
