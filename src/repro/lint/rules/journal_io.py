"""R12: all durability writes go through the fsio stage/publish pair.

The write-ahead journal's crash-consistency story is the same one the
storage layer tells: every on-disk artifact is staged to a ``.tmp``
path, CRC-framed, and published with a single atomic ``os.replace``.
A raw ``open(path, "w")`` anywhere under ``durability/`` would let a
crash leave a half-written segment or checkpoint that *looks* valid —
exactly the torn state cold start must never trust.  This rule forbids
write-mode ``open()`` calls in the durability package; all bytes must
flow through :func:`repro.storage.fsio.write_bytes` into a path from
:func:`repro.storage.fsio.stage_file`, then
:func:`repro.storage.fsio.publish_file`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Project, call_name, register_checker
from .atomic_io import _write_mode

#: Package path fragments where raw write-mode ``open()`` is forbidden.
_PROTECTED = ("repro/durability/",)


@register_checker
class JournalIOChecker(Checker):
    """R12: no raw write-mode open() in durability/."""

    rule = "R12"
    title = (
        "durability code must write files through repro.storage.fsio "
        "(stage + checksum + atomic publish), never raw open(..., 'w')"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_test_code():
                continue
            if not any(part in module.norm_path for part in _PROTECTED):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if call_name(node) != "open":
                    continue
                mode = _write_mode(node)
                if mode is None:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"raw open(..., {mode!r}) bypasses the journal's "
                    "stage/publish protocol; write through "
                    "repro.storage.fsio",
                )
