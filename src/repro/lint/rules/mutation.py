"""R4: no storage/catalog mutation from the query path.

Sections 4 and 5 of the paper make storage mutation the exclusive
business of transactions (commit applies buffered DML) and the tuple
mover (moveout/mergeout).  The query path — the execution engine, the
optimizer, and SQL analysis — must only ever *read*.

This rule flags calls to known mutating ``StorageManager`` / ``Catalog``
methods from modules under ``execution/``, ``optimizer/`` or ``sql/``
when the receiver looks like a storage manager or catalog (its name is
``manager``, ``storage``, ``storage_manager`` or ``catalog``, possibly
behind attribute access like ``self.node.storage``).  Mutations belong
in ``core/``, ``cluster/``, ``storage/`` or ``tuple_mover/``, behind a
transaction commit or a tuple-mover operation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Project, attribute_chain, register_checker

#: Module path fragments that constitute the read-only query path.
QUERY_PATH_FRAGMENTS = ("repro/execution/", "repro/optimizer/", "repro/sql/")

#: Mutating methods of StorageManager / Catalog / Cluster storage.
MUTATOR_METHODS = frozenset(
    {
        "insert",
        "delete_where",
        "persist_delete_vectors",
        "remove_containers",
        "add_container_from_rows",
        "attach_delete_vector",
        "truncate_after_epoch",
        "load_history",
        "drop_partition",
        "register_projection",
        "drop_projection",
        "create_table",
        "drop_table",
        "add_projection",
        "add_projection_family",
        "commit_dml",
    }
)

#: Receiver identifiers that denote storage/catalog objects.
RECEIVER_HINTS = frozenset({"manager", "storage", "storage_manager", "catalog"})


def _receiver_hint(node: ast.Call) -> str | None:
    """The storage-ish identifier a mutating call is made on, if any.

    ``self.manager.insert(...)`` -> "manager";
    ``node.storage.remove_containers(...)`` -> "storage";
    ``rows.insert(0, x)`` -> None (receiver "rows" is not storage-ish).
    """
    if not isinstance(node.func, ast.Attribute):
        return None
    chain = attribute_chain(node.func)
    if len(chain) < 2:
        return None
    receiver_parts = chain[:-1]
    terminal = receiver_parts[-1]
    if terminal in RECEIVER_HINTS:
        return terminal
    return None


@register_checker
class QueryPathMutationChecker(Checker):
    """R4: query-path modules never mutate storage or catalog state."""

    rule = "R4"
    title = (
        "no StorageManager/Catalog mutation from execution/, optimizer/ "
        "or sql/ modules"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.is_test_code():
                continue
            norm = module.norm_path
            if not any(fragment in norm for fragment in QUERY_PATH_FRAGMENTS):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr not in MUTATOR_METHODS:
                    continue
                hint = _receiver_hint(node)
                if hint is None:
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    f"query-path module calls mutating {hint}."
                    f"{node.func.attr}(); storage/catalog mutation must go "
                    "through a transaction commit or the tuple mover",
                )
