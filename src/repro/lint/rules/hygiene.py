"""R5: generic hygiene — the bug patterns that bite this codebase.

Three checks, all repo-wide unless noted:

* **mutable default arguments** (``def f(x=[])`` / ``={}`` / ``=set()``)
  — shared across calls, a classic source of cross-query state leaks in
  long-lived server processes;
* **bare except** (``except:``) — swallows ``KeyboardInterrupt`` and
  sanitizer :class:`InvariantViolation` s alike, hiding exactly the
  failures this PR exists to surface;
* **float equality on the cost model** (``x == 1.5`` under
  ``optimizer/``) — plan choices must not hinge on exact float
  comparison; use tolerances or integer row counts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, Project, register_checker

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable_default(node: ast.expr) -> bool:
    """Whether a default-value expression is a shared mutable object."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@register_checker
class HygieneChecker(Checker):
    """R5: mutable defaults, bare except, float == in the cost model."""

    rule = "R5"
    title = (
        "no mutable default args, no bare except, no float equality in "
        "optimizer cost comparisons"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            in_optimizer = "repro/optimizer/" in module.norm_path
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_defaults(module, node)
                elif isinstance(node, ast.ExceptHandler) and node.type is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        "bare `except:` swallows KeyboardInterrupt and "
                        "sanitizer violations; catch a concrete exception",
                    )
                elif in_optimizer and isinstance(node, ast.Compare):
                    yield from self._check_float_compare(module, node)

    def _check_defaults(self, module, node) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield self.finding(
                    module,
                    default.lineno,
                    f"{node.name}() has a mutable default argument; use "
                    "None and create the object inside the function",
                )

    def _check_float_compare(self, module, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        has_float = any(
            isinstance(operand, ast.Constant)
            and isinstance(operand.value, float)
            for operand in operands
        )
        if not has_float:
            return
        for op in node.ops:
            if isinstance(op, (ast.Eq, ast.NotEq)):
                yield self.finding(
                    module,
                    node.lineno,
                    "float equality in cost-model code; compare with a "
                    "tolerance (math.isclose) or restructure",
                )
                return
