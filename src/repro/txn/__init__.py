"""Transactions, epochs and locking (section 5)."""

from .epochs import INITIAL_EPOCH, AhmPolicy, EpochManager
from .locks import LockManager, LockMode, compatible, convert
from .transaction import (
    IsolationLevel,
    PendingDelete,
    Transaction,
    TxnStatus,
)

__all__ = [
    "INITIAL_EPOCH",
    "AhmPolicy",
    "EpochManager",
    "LockManager",
    "LockMode",
    "compatible",
    "convert",
    "IsolationLevel",
    "PendingDelete",
    "Transaction",
    "TxnStatus",
]
