"""Transaction state objects.

A transaction buffers its own writes privately (they reach the WOS/ROS
only at commit, which is what lets rollback "simply entail discarding
any ROS container or WOS data created by the transaction").  Reads run
against the snapshot at the transaction's epoch; READ COMMITTED
refreshes the snapshot each statement, SERIALIZABLE pins it and takes
table S locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import TransactionError


class IsolationLevel(str, Enum):
    """Supported isolation levels (section 5)."""

    READ_COMMITTED = "READ COMMITTED"
    SERIALIZABLE = "SERIALIZABLE"


class TxnStatus(str, Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class PendingDelete:
    """A buffered DELETE: predicate over rows of one table."""

    table: str
    predicate: object  # Callable[[dict], bool]


@dataclass
class Transaction:
    """One client transaction."""

    txn_id: int
    isolation: IsolationLevel = IsolationLevel.READ_COMMITTED
    #: Snapshot epoch for reads; refreshed per statement under READ
    #: COMMITTED, pinned at start under SERIALIZABLE.
    snapshot_epoch: int = 0
    status: TxnStatus = TxnStatus.ACTIVE
    #: table -> list of row dicts buffered for insert.
    pending_inserts: dict[str, list[dict]] = field(default_factory=dict)
    pending_deletes: list[PendingDelete] = field(default_factory=list)
    #: Whether the transaction performed any DML (drives epoch advance).
    has_dml: bool = False
    #: Load operations flagged direct-to-ROS (section 7).
    direct_to_ros: bool = False

    def check_active(self) -> None:
        """Raise unless the transaction can still execute statements."""
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    def buffer_insert(self, table: str, rows: list[dict]) -> None:
        """Queue rows for insertion at commit."""
        self.check_active()
        self.pending_inserts.setdefault(table, []).extend(rows)
        self.has_dml = True

    def buffer_delete(self, table: str, predicate) -> None:
        """Queue a delete-by-predicate for commit."""
        self.check_active()
        self.pending_deletes.append(PendingDelete(table, predicate))
        self.has_dml = True

    def local_inserts_for(self, table: str) -> list[dict]:
        """This transaction's own uncommitted inserts into ``table``
        (visible to its own reads)."""
        return self.pending_inserts.get(table, [])
