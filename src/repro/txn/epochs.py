"""Epoch management (section 5 / 5.1).

Every tuple is stamped with the epoch of the transaction that committed
it; an epoch boundary is a globally consistent snapshot.  This module
tracks the three epoch values the paper names:

* the **current epoch**, advanced automatically as part of any commit
  that includes DML (post-C-Store behaviour that removed the "where is
  my commit?" confusion of timed epoch windows);
* the **Last Good Epoch** (LGE) per projection — the epoch through
  which all data has reached disk (ROS); data beyond it lives only in
  the WOS and is lost if the node fails;
* the **Ancient History Mark** (AHM) — history before it may be purged
  by the tuple mover; it advances by policy and *holds* while nodes are
  down so recovery can replay missed DML.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TransactionError
from ..lint import sanitizer

#: Epoch given to data committed before the database ever advanced.
INITIAL_EPOCH = 1


@dataclass
class AhmPolicy:
    """User-specified policy for advancing the Ancient History Mark.

    ``lag_epochs`` is how many epochs of history to retain behind the
    current epoch (0 = keep only the latest committed state queryable
    historically).
    """

    lag_epochs: int = 10


@dataclass
class EpochManager:
    """Cluster-wide epoch clock and AHM bookkeeping."""

    current_epoch: int = INITIAL_EPOCH
    ahm: int = 0
    policy: AhmPolicy = field(default_factory=AhmPolicy)
    #: Last Good Epoch per (node, projection) pair.
    _lge: dict[tuple[int, str], int] = field(default_factory=dict)
    #: Nodes currently down; the AHM holds while this is non-empty.
    _down_nodes: set[int] = field(default_factory=set)

    # -- the epoch clock ---------------------------------------------------

    @property
    def latest_queryable_epoch(self) -> int:
        """The epoch READ COMMITTED queries target: current - 1."""
        return self.current_epoch - 1

    def advance_for_commit(self) -> int:
        """Advance the epoch as part of a DML commit; returns the epoch
        the commit's changes are stamped with (section 5.1: the epoch
        advances *with* the commit, so it is immediately visible)."""
        commit_epoch = self.current_epoch
        self.current_epoch += 1
        sanitizer.check_epoch_advance(commit_epoch, self.current_epoch)
        return commit_epoch

    # -- Last Good Epoch ---------------------------------------------------

    def set_lge(self, node: int, projection: str, epoch: int) -> None:
        """Record that ``projection`` on ``node`` has all data <= epoch
        safely in the ROS."""
        key = (node, projection)
        if epoch < self._lge.get(key, 0):
            raise TransactionError("LGE cannot move backwards")
        self._lge[key] = epoch

    def invalidate_lge(self, node: int, projection: str) -> None:
        """Reset a projection's LGE to 0 ("nothing durable") — the one
        sanctioned backwards move.  Recovery's truncate rebuilds the
        node's containers wholesale, so from the moment it starts until
        the replay completes the recorded LGE certifies state that is
        being destroyed; a recovery attempt that crashes in between
        must not leave the old LGE claiming data the disk no longer
        holds (the retry would then skip replaying it)."""
        self._lge[(node, projection)] = 0

    def lge(self, node: int, projection: str) -> int:
        """Last Good Epoch of a projection on a node (0 = nothing durable)."""
        return self._lge.get((node, projection), 0)

    def cluster_lge(self) -> int:
        """Minimum LGE across all tracked projections (0 if none)."""
        return min(self._lge.values(), default=0)

    # -- Ancient History Mark ----------------------------------------------

    def node_down(self, node: int) -> None:
        """Mark a node down: the AHM stops advancing (section 5.1)."""
        self._down_nodes.add(node)

    def node_up(self, node: int) -> None:
        """Mark a node recovered; AHM advancement resumes."""
        self._down_nodes.discard(node)

    @property
    def nodes_down(self) -> bool:
        """Whether any node is currently down."""
        return bool(self._down_nodes)

    def advance_ahm(self) -> int:
        """Advance the AHM per policy; returns the (possibly unchanged)
        AHM.  Never advances past any LGE and never while nodes are
        down (the history is needed for incremental recovery replay)."""
        if self._down_nodes:
            return self.ahm
        old_ahm = self.ahm
        target = max(self.latest_queryable_epoch - self.policy.lag_epochs, 0)
        if self._lge:
            target = min(target, self.cluster_lge())
        if target > self.ahm:
            self.ahm = target
        sanitizer.check_ahm_advance(
            old_ahm,
            self.ahm,
            self.cluster_lge() if self._lge else None,
            self.latest_queryable_epoch,
        )
        return self.ahm
