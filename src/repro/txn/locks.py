"""Table locking: the paper's seven-mode analytic lock model.

Tables 1 and 2 of the paper (adapted from Gray & Reuter) define the
compatibility and conversion matrices for Vertica's lock modes:

* ``S``  (Shared)       — prevents concurrent modification; SERIALIZABLE reads
* ``I``  (Insert)       — data insertion; compatible with itself so bulk
  loads run concurrently (critical for ingest rates)
* ``SI`` (SharedInsert) — read and insert, but not update/delete
* ``X``  (eXclusive)    — deletes and updates
* ``T``  (Tuple mover)  — short tuple mover operations on delete vectors
* ``U``  (Usage)        — parts of moveout/mergeout; compatible with all but O
* ``O``  (Owner)        — significant DDL; compatible with nothing

Most queries take **no locks at all** (snapshot reads below the current
epoch, section 5); the lock manager exists for writers, the tuple mover
and DDL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import LockTimeoutError, TransactionError
from ..monitor import METRICS


class LockMode(str, Enum):
    """The seven lock modes of Table 1/2."""

    S = "S"
    I = "I"  # noqa: E741 - the paper's name
    SI = "SI"
    X = "X"
    T = "T"
    U = "U"
    O = "O"  # noqa: E741 - the paper's name


_MODES = [LockMode.S, LockMode.I, LockMode.SI, LockMode.X, LockMode.T, LockMode.U, LockMode.O]

# Table 1: rows = requested mode, columns = granted (held) mode.
_COMPATIBILITY_ROWS = {
    LockMode.S: (True, False, False, False, True, True, False),
    LockMode.I: (False, True, False, False, True, True, False),
    LockMode.SI: (False, False, False, False, True, True, False),
    LockMode.X: (False, False, False, False, False, True, False),
    LockMode.T: (True, True, True, False, True, True, False),
    LockMode.U: (True, True, True, True, True, True, False),
    LockMode.O: (False, False, False, False, False, False, False),
}

# Table 2: rows = requested mode, columns = granted (held) mode; the
# cell is the mode the lock converts to when one transaction already
# holding `granted` requests `requested`.
_CONVERSION_ROWS = {
    LockMode.S: (LockMode.S, LockMode.SI, LockMode.SI, LockMode.X, LockMode.S, LockMode.S, LockMode.O),
    LockMode.I: (LockMode.SI, LockMode.I, LockMode.SI, LockMode.X, LockMode.I, LockMode.I, LockMode.O),
    LockMode.SI: (LockMode.SI, LockMode.SI, LockMode.SI, LockMode.X, LockMode.SI, LockMode.SI, LockMode.O),
    LockMode.X: (LockMode.X, LockMode.X, LockMode.X, LockMode.X, LockMode.X, LockMode.X, LockMode.O),
    LockMode.T: (LockMode.S, LockMode.I, LockMode.SI, LockMode.X, LockMode.T, LockMode.T, LockMode.O),
    LockMode.U: (LockMode.S, LockMode.I, LockMode.SI, LockMode.X, LockMode.T, LockMode.U, LockMode.O),
    LockMode.O: (LockMode.O, LockMode.O, LockMode.O, LockMode.O, LockMode.O, LockMode.O, LockMode.O),
}


def compatible(requested: LockMode, granted: LockMode) -> bool:
    """Table 1 lookup: may ``requested`` be granted alongside ``granted``?"""
    return _COMPATIBILITY_ROWS[requested][_MODES.index(granted)]


def convert(requested: LockMode, granted: LockMode) -> LockMode:
    """Table 2 lookup: mode resulting from requesting ``requested``
    while already holding ``granted``."""
    return _CONVERSION_ROWS[requested][_MODES.index(granted)]


@dataclass
class _ObjectLocks:
    """Lock state for one lockable object (a table)."""

    holders: dict[int, LockMode] = field(default_factory=dict)


class LockManager:
    """Grants, converts and releases table locks for transactions.

    The simulation is single-threaded, so lock acquisition either
    succeeds immediately or raises :class:`LockTimeoutError` — the
    effect a blocked-then-timed-out request would have.  That keeps the
    protocol (and its tests) exact without modelling thread scheduling.
    """

    def __init__(self):
        self._objects: dict[str, _ObjectLocks] = {}

    def acquire(self, txn_id: int, obj: str, mode: LockMode) -> LockMode:
        """Acquire (or convert to) ``mode`` on ``obj`` for ``txn_id``.

        Returns the mode actually held after the call (conversion can
        strengthen it, e.g. holding I and requesting S yields SI).
        """
        from ..trace import TRACER

        with TRACER.span(
            "lock.acquire",
            category="lock",
            txn=txn_id,
            object=obj,
            mode=mode.value,
        ) as span:
            granted = self._acquire(txn_id, obj, mode)
            if span is not None:
                span.attrs["granted"] = granted.value
            return granted

    def _acquire(self, txn_id: int, obj: str, mode: LockMode) -> LockMode:
        state = self._objects.setdefault(obj, _ObjectLocks())
        current = state.holders.get(txn_id)
        target = mode if current is None else convert(mode, current)
        METRICS.inc("locks.requests")
        if current is not None and target is not current:
            METRICS.inc("locks.conversions")
        for other_txn, other_mode in state.holders.items():
            if other_txn == txn_id:
                continue
            if not compatible(target, other_mode):
                # single-threaded simulation: an incompatible request is
                # a wait that has already timed out.
                METRICS.inc("locks.waits")
                if current is not None:
                    METRICS.inc("locks.upgrade_conflicts")
                raise LockTimeoutError(
                    f"txn {txn_id} cannot take {target.value} on {obj!r}: "
                    f"txn {other_txn} holds {other_mode.value}"
                )
        state.holders[txn_id] = target
        METRICS.inc(f"locks.granted.{target.value}")
        return target

    def release(self, txn_id: int, obj: str) -> None:
        """Release the lock ``txn_id`` holds on ``obj``."""
        state = self._objects.get(obj)
        if state is None or txn_id not in state.holders:
            raise TransactionError(f"txn {txn_id} holds no lock on {obj!r}")
        del state.holders[txn_id]

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/rollback)."""
        for state in self._objects.values():
            state.holders.pop(txn_id, None)

    def held(self, txn_id: int, obj: str) -> LockMode | None:
        """Mode ``txn_id`` currently holds on ``obj``, if any."""
        state = self._objects.get(obj)
        return state.holders.get(txn_id) if state else None

    def holders_of(self, obj: str) -> dict[int, LockMode]:
        """All current holders of ``obj`` (for monitoring)."""
        state = self._objects.get(obj)
        return dict(state.holders) if state else {}

    # -- matrix rendering (Table 1 / Table 2 benches) -------------------

    @staticmethod
    def compatibility_matrix() -> dict[tuple[str, str], bool]:
        """All 49 cells of Table 1, keyed (requested, granted)."""
        return {
            (requested.value, granted.value): compatible(requested, granted)
            for requested in _MODES
            for granted in _MODES
        }

    @staticmethod
    def conversion_matrix() -> dict[tuple[str, str], str]:
        """All 49 cells of Table 2, keyed (requested, granted)."""
        return {
            (requested.value, granted.value): convert(requested, granted).value
            for requested in _MODES
            for granted in _MODES
        }

    @staticmethod
    def modes() -> list[str]:
        """Mode names in the paper's row/column order."""
        return [mode.value for mode in _MODES]
