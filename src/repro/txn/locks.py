"""Table locking: the paper's seven-mode analytic lock model.

Tables 1 and 2 of the paper (adapted from Gray & Reuter) define the
compatibility and conversion matrices for Vertica's lock modes:

* ``S``  (Shared)       — prevents concurrent modification; SERIALIZABLE reads
* ``I``  (Insert)       — data insertion; compatible with itself so bulk
  loads run concurrently (critical for ingest rates)
* ``SI`` (SharedInsert) — read and insert, but not update/delete
* ``X``  (eXclusive)    — deletes and updates
* ``T``  (Tuple mover)  — short tuple mover operations on delete vectors
* ``U``  (Usage)        — parts of moveout/mergeout; compatible with all but O
* ``O``  (Owner)        — significant DDL; compatible with nothing

Most queries take **no locks at all** (snapshot reads below the current
epoch, section 5); the lock manager exists for writers, the tuple mover
and DDL.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum

from ..errors import DeadlockError, LockTimeoutError, TransactionError
from ..monitor import METRICS


class LockMode(str, Enum):
    """The seven lock modes of Table 1/2."""

    S = "S"
    I = "I"  # noqa: E741 - the paper's name
    SI = "SI"
    X = "X"
    T = "T"
    U = "U"
    O = "O"  # noqa: E741 - the paper's name


_MODES = [LockMode.S, LockMode.I, LockMode.SI, LockMode.X, LockMode.T, LockMode.U, LockMode.O]

# Table 1: rows = requested mode, columns = granted (held) mode.
_COMPATIBILITY_ROWS = {
    LockMode.S: (True, False, False, False, True, True, False),
    LockMode.I: (False, True, False, False, True, True, False),
    LockMode.SI: (False, False, False, False, True, True, False),
    LockMode.X: (False, False, False, False, False, True, False),
    LockMode.T: (True, True, True, False, True, True, False),
    LockMode.U: (True, True, True, True, True, True, False),
    LockMode.O: (False, False, False, False, False, False, False),
}

# Table 2: rows = requested mode, columns = granted (held) mode; the
# cell is the mode the lock converts to when one transaction already
# holding `granted` requests `requested`.
_CONVERSION_ROWS = {
    LockMode.S: (LockMode.S, LockMode.SI, LockMode.SI, LockMode.X, LockMode.S, LockMode.S, LockMode.O),
    LockMode.I: (LockMode.SI, LockMode.I, LockMode.SI, LockMode.X, LockMode.I, LockMode.I, LockMode.O),
    LockMode.SI: (LockMode.SI, LockMode.SI, LockMode.SI, LockMode.X, LockMode.SI, LockMode.SI, LockMode.O),
    LockMode.X: (LockMode.X, LockMode.X, LockMode.X, LockMode.X, LockMode.X, LockMode.X, LockMode.O),
    LockMode.T: (LockMode.S, LockMode.I, LockMode.SI, LockMode.X, LockMode.T, LockMode.T, LockMode.O),
    LockMode.U: (LockMode.S, LockMode.I, LockMode.SI, LockMode.X, LockMode.T, LockMode.U, LockMode.O),
    LockMode.O: (LockMode.O, LockMode.O, LockMode.O, LockMode.O, LockMode.O, LockMode.O, LockMode.O),
}


def compatible(requested: LockMode, granted: LockMode) -> bool:
    """Table 1 lookup: may ``requested`` be granted alongside ``granted``?"""
    return _COMPATIBILITY_ROWS[requested][_MODES.index(granted)]


def convert(requested: LockMode, granted: LockMode) -> LockMode:
    """Table 2 lookup: mode resulting from requesting ``requested``
    while already holding ``granted``."""
    return _CONVERSION_ROWS[requested][_MODES.index(granted)]


@dataclass
class _ObjectLocks:
    """Lock state for one lockable object (a table)."""

    holders: dict[int, LockMode] = field(default_factory=dict)


class LockManager:
    """Grants, converts and releases table locks for transactions.

    Incompatible requests either fail fast (the default,
    ``block=False`` — a wait that has already timed out, which keeps
    single-threaded protocol tests exact) or block on an internal
    condition variable until the conflicting holders release or
    ``timeout`` elapses.

    Either way, every incompatible request first runs **waits-for-graph
    deadlock detection**: if granting would make the requester wait on
    a transaction that is (transitively) already waiting on the
    requester, the request raises :class:`DeadlockError` instead of
    waiting.  Victim selection is deterministic — the transaction whose
    request *closes* the cycle is the victim; the transactions already
    parked keep waiting and are woken when the victim's locks are
    released by its rollback.

    Blocking waits are additionally **cancellable**: ``acquire`` takes
    an optional ``cancel`` callable that is invoked before parking and
    after every wakeup; when a statement has been cancelled or timed
    out the callable raises (:class:`QueryCancelledError` or a
    subclass), the wait unwinds, and — the critical cleanup contract —
    the waiter's condition-variable registration and waits-for edges
    are removed *before* the exception escapes.  A waiter that has
    timed out or been cancelled therefore can never be observed by a
    later deadlock search, and can never be chosen as a victim for a
    cycle it is no longer part of.  External cancellers call
    :meth:`wake_waiters` after flipping their flag so parked threads
    re-check promptly.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._objects: dict[str, _ObjectLocks] = {}  # concurrency: guarded-by(self._cond)
        #: txn id -> (object, target mode) it is currently parked on.
        self._waiting: dict[int, tuple[str, LockMode]] = {}  # concurrency: guarded-by(self._cond)
        #: Optional Data Collector (duck-typed; set by the cluster).
        #: Waits, deadlock victims and timeouts land in
        #: ``dc_lock_waits``.  The collector's internal mutex nests
        #: strictly inside ``self._cond`` and takes no further locks;
        #: recording defers segment flushes so no disk I/O (or injected
        #: ``dc.flush.*`` fault) ever runs inside this critical section.
        self.collector = None

    def _dc_record(self, outcome: str, txn_id: int, obj: str,
                   mode: LockMode, blocker, detail: str = "") -> None:
        """Mirror one lock-contention incident into the collector."""
        if self.collector is None:
            return
        self.collector.record(
            "lock_waits",
            outcome,
            defer_flush=True,
            txn_id=txn_id,
            object_name=obj,
            mode=mode.value,
            blocker_txn=blocker[0] if blocker else None,
            detail=detail,
        )

    def acquire(
        self,
        txn_id: int,
        obj: str,
        mode: LockMode,
        *,
        block: bool = False,
        timeout: float = 1.0,
        cancel=None,
    ) -> LockMode:
        """Acquire (or convert to) ``mode`` on ``obj`` for ``txn_id``.

        Returns the mode actually held after the call (conversion can
        strengthen it, e.g. holding I and requesting S yields SI).
        Raises :class:`DeadlockError` if waiting would close a cycle in
        the waits-for graph, :class:`LockTimeoutError` if the request
        stays blocked (immediately when ``block=False``, after
        ``timeout`` seconds otherwise).  ``cancel``, when given, is a
        zero-argument callable invoked before parking and after every
        wakeup; it raises to abandon the wait (statement cancellation
        / timeout), and the waiter is deregistered before the
        exception propagates.
        """
        from ..trace import TRACER

        with TRACER.span(
            "lock.acquire",
            category="lock",
            txn=txn_id,
            object=obj,
            mode=mode.value,
        ) as span:
            granted = self._acquire(txn_id, obj, mode, block, timeout, cancel)
            if span is not None:
                span.attrs["granted"] = granted.value
            return granted

    def _acquire(
        self,
        txn_id: int,
        obj: str,
        mode: LockMode,
        block: bool,
        timeout: float,
        cancel=None,
    ) -> LockMode:
        with self._cond:
            state = self._objects.setdefault(obj, _ObjectLocks())
            current = state.holders.get(txn_id)
            target = mode if current is None else convert(mode, current)
            METRICS.inc("locks.requests")
            if current is not None and target is not current:
                METRICS.inc("locks.conversions")
            blocker = self._blocking_holder(state, txn_id, target)
            if blocker is not None:
                METRICS.inc("locks.waits")
                if current is not None:
                    METRICS.inc("locks.upgrade_conflicts")
                self._dc_record(
                    "wait", txn_id, obj, target, blocker,
                    f"blocked by txn {blocker[0]} holding "
                    f"{blocker[1].value}",
                )
                self._check_deadlock(txn_id, obj, target)
                if block:
                    blocker = self._wait_for_grant(
                        txn_id, obj, target, timeout, cancel
                    )
                if blocker is not None:
                    other_txn, other_mode = blocker
                    self._dc_record(
                        "timeout", txn_id, obj, target, blocker,
                        f"gave up; txn {other_txn} still holds "
                        f"{other_mode.value}",
                    )
                    raise LockTimeoutError(
                        f"txn {txn_id} cannot take {target.value} on "
                        f"{obj!r}: txn {other_txn} holds {other_mode.value}"
                    )
                # woken and grantable: recompute the conversion target
                # against whatever the txn still holds.
                current = state.holders.get(txn_id)
                target = mode if current is None else convert(mode, current)
            state.holders[txn_id] = target
            METRICS.inc(f"locks.granted.{target.value}")
            return target

    @staticmethod
    def _blocking_holder(
        state: _ObjectLocks, txn_id: int, target: LockMode
    ) -> tuple[int, LockMode] | None:
        """First (txn, mode) holder incompatible with ``target``, if any."""
        for other_txn in sorted(state.holders):
            if other_txn == txn_id:
                continue
            other_mode = state.holders[other_txn]
            if not compatible(target, other_mode):
                return other_txn, other_mode
        return None

    def _wait_for_grant(
        self,
        txn_id: int,
        obj: str,
        target: LockMode,
        timeout: float,
        cancel=None,
    ) -> tuple[int, LockMode] | None:
        """Park on the condition until grantable, ``timeout`` elapses,
        or ``cancel`` raises.

        Returns None once grantable, else the still-blocking holder.
        Caller holds ``self._cond``.  The ``finally`` below is the
        cleanup contract every exit path (grant, timeout, cancellation,
        even an unexpected error) shares: the waiter's registration —
        and with it every waits-for edge other transactions' deadlock
        searches could traverse — is gone before control leaves this
        frame, so a dead waiter can never be picked as a deadlock
        victim later.
        """
        state = self._objects[obj]
        self._waiting[txn_id] = (obj, target)
        # Local alias keeps the R9 name-based call resolution from
        # conflating this callback (a CancelToken.check — raises, takes
        # no locks) with methods named ``cancel`` elsewhere.
        check_cancel = cancel
        try:
            deadline = time.monotonic() + timeout
            while True:
                if check_cancel is not None:
                    check_cancel()
                blocker = self._blocking_holder(state, txn_id, target)
                if blocker is None:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return blocker
                # wake at least every WAKE_SLICE seconds so an external
                # cancel (which may race the notify) is never missed.
                self._cond.wait(min(remaining, self.WAKE_SLICE))
        finally:
            del self._waiting[txn_id]

    #: Upper bound between cancel-flag re-checks while parked, seconds.
    WAKE_SLICE = 0.05

    def wake_waiters(self) -> None:
        """Wake every parked waiter so it re-checks grantability and
        its cancel flag.  Called by cancellers after flipping a
        statement's cancel flag (the flag lives outside the lock
        manager, so the notify here is what makes cancellation of a
        lock wait prompt rather than WAKE_SLICE-bounded)."""
        with self._cond:
            self._cond.notify_all()

    # -- deadlock detection ---------------------------------------------

    def _waits_for(self, txn_id: int, obj: str, target: LockMode) -> list[int]:
        """Transactions ``txn_id`` would wait on for ``target`` on ``obj``."""
        state = self._objects.get(obj)
        if state is None:
            return []
        return sorted(
            other_txn
            for other_txn, other_mode in state.holders.items()
            if other_txn != txn_id and not compatible(target, other_mode)
        )

    def _check_deadlock(
        self, txn_id: int, obj: str, target: LockMode
    ) -> None:
        """Raise :class:`DeadlockError` if waiting would close a cycle.

        DFS over the waits-for graph starting from the transactions the
        new request would wait on; neighbours are visited in sorted
        order, so the reported cycle is deterministic.  Caller holds
        ``self._cond``.
        """
        path: list[int] = []
        seen: set[int] = set()

        def edges(waiter: int) -> list[int]:
            if waiter == txn_id:
                return self._waits_for(txn_id, obj, target)
            parked = self._waiting.get(waiter)
            if parked is None:
                return []
            return self._waits_for(waiter, parked[0], parked[1])

        def visit(waiter: int) -> list[int] | None:
            if waiter == txn_id:
                return [txn_id] + path
            if waiter in seen:
                return None
            seen.add(waiter)
            path.append(waiter)
            for nxt in edges(waiter):
                cycle = visit(nxt)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        for first in edges(txn_id):
            cycle = visit(first)
            if cycle is not None:
                METRICS.inc("locks.deadlocks")
                chain = " -> ".join(f"txn {t}" for t in cycle + [cycle[0]])
                self._dc_record(
                    "deadlock_victim", txn_id, obj, target,
                    (cycle[0], target), f"cycle {chain}",
                )
                raise DeadlockError(
                    f"deadlock detected: txn {txn_id} waiting for "
                    f"{target.value} on {obj!r} would close the cycle "
                    f"{chain}; txn {txn_id} chosen as victim",
                    cycle=cycle,
                )

    # -- release / introspection ----------------------------------------

    def release(self, txn_id: int, obj: str) -> None:
        """Release the lock ``txn_id`` holds on ``obj``."""
        with self._cond:
            state = self._objects.get(obj)
            if state is None or txn_id not in state.holders:
                raise TransactionError(
                    f"txn {txn_id} holds no lock on {obj!r}"
                )
            del state.holders[txn_id]
            self._cond.notify_all()

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/rollback)."""
        with self._cond:
            for state in self._objects.values():
                state.holders.pop(txn_id, None)
            self._cond.notify_all()

    def held(self, txn_id: int, obj: str) -> LockMode | None:
        """Mode ``txn_id`` currently holds on ``obj``, if any."""
        with self._cond:
            state = self._objects.get(obj)
            return state.holders.get(txn_id) if state else None

    def holders_of(self, obj: str) -> dict[int, LockMode]:
        """All current holders of ``obj`` (for monitoring)."""
        with self._cond:
            state = self._objects.get(obj)
            return dict(state.holders) if state else {}

    def waiting(self) -> dict[int, tuple[str, str]]:
        """Parked waiters: txn id -> (object, requested mode)."""
        with self._cond:
            return {
                txn: (obj, target.value)
                for txn, (obj, target) in self._waiting.items()
            }

    # -- matrix rendering (Table 1 / Table 2 benches) -------------------

    @staticmethod
    def compatibility_matrix() -> dict[tuple[str, str], bool]:
        """All 49 cells of Table 1, keyed (requested, granted)."""
        return {
            (requested.value, granted.value): compatible(requested, granted)
            for requested in _MODES
            for granted in _MODES
        }

    @staticmethod
    def conversion_matrix() -> dict[tuple[str, str], str]:
        """All 49 cells of Table 2, keyed (requested, granted)."""
        return {
            (requested.value, granted.value): convert(requested, granted).value
            for requested in _MODES
            for granted in _MODES
        }

    @staticmethod
    def modes() -> list[str]:
        """Mode names in the paper's row/column order."""
        return [mode.value for mode in _MODES]
