"""SQL type system.

Vertica (like C-Store before it) is a typed relational engine; the paper
calls out multi-type support (FLOAT, VARCHAR, NULLs, 64-bit integers) as
one of the features added on the road from prototype to product
(section 8.1).  This module defines the supported SQL types, their value
domains, text parsing for the bulk loader, and NULL semantics.

Values are represented with plain Python objects:

* ``INTEGER``   -> ``int`` (64-bit range enforced)
* ``FLOAT``     -> ``float``
* ``VARCHAR``   -> ``str``
* ``BOOLEAN``   -> ``bool``
* ``DATE``      -> ``int`` days since 2000-01-01 (cheap, orderable)
* ``TIMESTAMP`` -> ``int`` seconds since 2000-01-01

SQL NULL is represented as Python ``None`` everywhere.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from .errors import LoadError, SqlAnalysisError

#: Minimum / maximum of Vertica's 64-bit integer domain.
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

_DATE_ORIGIN = _dt.date(2000, 1, 1)
_TS_ORIGIN = _dt.datetime(2000, 1, 1)


def date_to_days(value: _dt.date) -> int:
    """Convert a :class:`datetime.date` to the internal day number."""
    return (value - _DATE_ORIGIN).days


def days_to_date(days: int) -> _dt.date:
    """Convert an internal day number back to a :class:`datetime.date`."""
    return _DATE_ORIGIN + _dt.timedelta(days=days)


def timestamp_to_seconds(value: _dt.datetime) -> int:
    """Convert a :class:`datetime.datetime` to internal epoch seconds."""
    return int((value - _TS_ORIGIN).total_seconds())


def seconds_to_timestamp(seconds: int) -> _dt.datetime:
    """Convert internal epoch seconds back to a datetime."""
    return _TS_ORIGIN + _dt.timedelta(seconds=seconds)


@dataclass(frozen=True)
class DataType:
    """A SQL data type.

    Instances are interned module-level singletons (``INTEGER``,
    ``FLOAT``, ...); compare them with ``is`` or ``==``.
    """

    name: str
    #: Python classes a non-NULL value of this type may have.
    python_types: tuple[type, ...]
    #: True for types stored as integers on disk (delta encodings apply).
    integral: bool

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def validate(self, value: object) -> object:
        """Check ``value`` is in this type's domain; return it unchanged.

        ``None`` (SQL NULL) is always accepted.  Raises
        :class:`SqlAnalysisError` otherwise.
        """
        if value is None:
            return None
        if self is BOOLEAN:
            if isinstance(value, bool):
                return value
            raise SqlAnalysisError(f"expected BOOLEAN, got {value!r}")
        if self is FLOAT:
            if isinstance(value, bool):
                raise SqlAnalysisError(f"expected FLOAT, got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            raise SqlAnalysisError(f"expected FLOAT, got {value!r}")
        if not isinstance(value, self.python_types) or isinstance(value, bool):
            raise SqlAnalysisError(f"expected {self.name}, got {value!r}")
        if self.integral and not INT64_MIN <= value <= INT64_MAX:
            raise SqlAnalysisError(f"{value} out of 64-bit range for {self.name}")
        return value

    def parse_text(self, text: str) -> object:
        """Parse a CSV field into a value of this type (bulk loader path).

        An empty string parses to NULL, matching common CSV conventions.
        Raises :class:`LoadError` for unparseable fields so the loader
        can reject the record (section 7, "Bulk Loading and Rejected
        Records").
        """
        if text == "" or text.upper() == "NULL":
            return None
        try:
            if self is INTEGER:
                return int(text)
            if self is FLOAT:
                return float(text)
            if self is BOOLEAN:
                lowered = text.strip().lower()
                if lowered in ("t", "true", "1", "yes"):
                    return True
                if lowered in ("f", "false", "0", "no"):
                    return False
                raise ValueError(text)
            if self is DATE:
                return date_to_days(_dt.date.fromisoformat(text.strip()))
            if self is TIMESTAMP:
                return timestamp_to_seconds(_dt.datetime.fromisoformat(text.strip()))
            return text
        except ValueError as exc:
            raise LoadError(f"cannot parse {text!r} as {self.name}") from exc


INTEGER = DataType("INTEGER", (int,), integral=True)
FLOAT = DataType("FLOAT", (float,), integral=False)
VARCHAR = DataType("VARCHAR", (str,), integral=False)
BOOLEAN = DataType("BOOLEAN", (bool,), integral=False)
DATE = DataType("DATE", (int,), integral=True)
TIMESTAMP = DataType("TIMESTAMP", (int,), integral=True)

#: All supported types, keyed by their SQL names (plus common aliases).
TYPES_BY_NAME = {
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "BIGINT": INTEGER,
    "FLOAT": FLOAT,
    "DOUBLE": FLOAT,
    "REAL": FLOAT,
    "VARCHAR": VARCHAR,
    "TEXT": VARCHAR,
    "CHAR": VARCHAR,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "DATE": DATE,
    "TIMESTAMP": TIMESTAMP,
}


def type_from_name(name: str) -> DataType:
    """Look up a :class:`DataType` by SQL name (case-insensitive)."""
    try:
        return TYPES_BY_NAME[name.upper()]
    except KeyError:
        raise SqlAnalysisError(f"unknown type {name!r}") from None


class _NullOrdering:
    """Sentinel that sorts before every non-NULL value.

    Vertica sorts NULLs first in ascending order; using a dedicated
    minimal sentinel lets heterogeneous columns with NULLs be sorted
    with plain tuple comparison.
    """

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return not isinstance(other, _NullOrdering)

    def __gt__(self, other: object) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullOrdering)

    def __hash__(self) -> int:
        return hash("__repro_null__")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL_FIRST"


#: Singleton used as the sort key for SQL NULL.
NULL_FIRST = _NullOrdering()


def sort_key(value: object) -> object:
    """Return a sort key where NULL orders before any other value."""
    return NULL_FIRST if value is None else value
