"""Deterministic distributed tracing for the simulated cluster.

The paper's query lifecycle crosses every layer of the system — parse,
plan, per-node execution fragments stitched by Send/Recv exchanges,
the tuple mover running behind queries, lock waits, recovery and
mid-query failover.  ``v_monitor`` counters say *how much* of each
happened; a trace says *which statement caused which work on which
node, in what order*.  This package is that causal layer:

* :class:`TraceContext` / :class:`Span` — the data model
  (``span.py``): per-statement trace with seeded ids, spans carrying
  both SimulatedClock ticks and wall durations;
* :class:`Tracer` / ``TRACER`` — the process-wide recorder
  (``tracer.py``): kill switch (``REPRO_TRACE`` or ``configure()``),
  head-based sampling, near-zero-cost disabled path;
* :class:`TraceHandle` — the (trace id, span id) pair carried across
  simulated node boundaries by the exchange operators;
* :class:`TraceSink` — the read side (``export.py``): Chrome
  trace-event JSON (one pid per node) for Perfetto, and the rows
  behind ``v_monitor.query_traces`` / ``v_monitor.trace_spans``;
* :func:`record_plan_spans` — post-hoc per-operator spans synthesized
  from a finished plan tree (``plan_spans.py``).
"""

from .export import COORDINATOR_PID, TraceSink
from .plan_spans import record_plan_spans
from .span import Span, TraceContext, TraceHandle
from .tracer import TRACE_ENV, TRACER, Tracer

__all__ = [
    "COORDINATOR_PID",
    "Span",
    "TRACE_ENV",
    "TRACER",
    "TraceContext",
    "TraceHandle",
    "TraceSink",
    "Tracer",
    "record_plan_spans",
]
