"""The trace data model: spans, trace contexts, cross-node handles.

A **trace** is the causal record of one unit of work — a SQL
statement, a tuple-mover cycle, a node recovery — as a tree of
**spans**.  Each span carries two clocks, deliberately:

* the **simulated tick** (:class:`repro.cluster.clock.SimulatedClock`)
  at open and close, which is deterministic and is what chaos tests
  assert against; and
* a **wall-time offset/duration** measured with ``perf_counter``,
  which is what makes the Perfetto rendering legible but never
  influences control flow (the same discipline replint R8 enforces
  for the self-healing runtime).

Span ids are small per-trace integers allocated in execution order —
deterministic for a deterministic workload — and trace ids come from
the tracer's seeded RNG, so two runs of the same scripted scenario
produce byte-identical id sequences.

A :class:`TraceHandle` is the serializable ``(trace id, span id)``
pair that crosses simulated node boundaries: the distributed executor
stamps one onto each Send/Recv exchange operator at plan-build time,
and the operator re-attaches to the trace under that exact parent when
it later drains on another "node" — the reproduction's equivalent of
propagating trace headers over the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any

from ..errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.clock import SimulatedClock


@dataclass
class Span:
    """One timed operation inside a trace.

    ``node_index`` is the simulated node the work ran on; ``None``
    means the coordinator/initiator.  ``duration_seconds`` is ``None``
    while the span is open — the sanitizer's closed-span check keys on
    exactly that.
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    node_index: int | None
    start_tick: int
    #: Wall seconds since the trace started (monotonic, perf_counter).
    start_offset: float
    duration_seconds: float | None = None
    end_tick: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        """Whether the span has been closed."""
        return self.duration_seconds is not None

    @property
    def end_offset(self) -> float:
        """Wall seconds since trace start at which the span ended."""
        return self.start_offset + (self.duration_seconds or 0.0)


@dataclass(frozen=True)
class TraceHandle:
    """The (trace id, parent span id) pair that crosses node
    boundaries — what a Send operator carries into the exchange."""

    trace_id: str
    span_id: int


class TraceContext:
    """One trace being recorded: id, span store, open-span stack.

    The context is created by :meth:`repro.trace.Tracer.start_trace`
    (which also opens the root span) and finished by
    :meth:`repro.trace.Tracer.end_trace`.  Spans open and close in
    stack order except where an explicit parent (a
    :class:`TraceHandle`) re-attaches work that executes on another
    node's behalf.
    """

    def __init__(
        self,
        trace_id: str,
        name: str,
        clock: "SimulatedClock | None" = None,
        attrs: dict[str, Any] | None = None,
    ):
        self.trace_id = trace_id
        self.name = name
        self.clock = clock
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._stack: list[Span] = []
        self._next_span_id = 1
        self._started = perf_counter()
        self.start_tick = self.tick()
        self.root = self.open_span(name, category="trace", attrs=attrs)

    # -- clocks ----------------------------------------------------------

    def tick(self) -> int:
        """The simulated-clock tick now (0 when no clock is bound)."""
        return self.clock.now if self.clock is not None else 0

    def offset(self) -> float:
        """Wall seconds elapsed since the trace started."""
        return perf_counter() - self._started

    # -- span lifecycle --------------------------------------------------

    def open_span(
        self,
        name: str,
        category: str = "span",
        node_index: int | None = None,
        attrs: dict[str, Any] | None = None,
        parent_id: int | None = None,
    ) -> Span:
        """Open a span; the parent defaults to the innermost open span."""
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            node_index=node_index,
            start_tick=self.tick(),
            start_offset=self.offset(),
            attrs=dict(attrs or {}),
        )
        self._next_span_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self._stack.append(span)
        return span

    def close_span(self, span: Span) -> None:
        """Close ``span``, recording its duration and end tick."""
        if span.closed:
            raise TraceError(
                f"span {span.span_id} ({span.name!r}) closed twice"
            )
        span.duration_seconds = max(self.offset() - span.start_offset, 0.0)
        span.end_tick = self.tick()
        if span in self._stack:
            self._stack.remove(span)

    def add_closed_span(
        self,
        name: str,
        category: str,
        node_index: int | None,
        parent_id: int,
        start_offset: float,
        duration_seconds: float,
        attrs: dict[str, Any] | None = None,
        start_tick: int | None = None,
        end_tick: int | None = None,
    ) -> Span:
        """Record an already-finished span with explicit interval.

        Used for the post-hoc operator spans synthesized from a
        finished plan tree: their wall costs were measured by the
        operators themselves, so the span is created closed, clipped
        by the caller to nest inside its parent (the optional tick
        overrides let the caller pin it to the parent's tick window
        when the parent closed before this span was recorded).
        """
        span = Span(
            span_id=self._next_span_id,
            parent_id=parent_id,
            name=name,
            category=category,
            node_index=node_index,
            start_tick=self.tick() if start_tick is None else start_tick,
            start_offset=start_offset,
            duration_seconds=max(duration_seconds, 0.0),
            end_tick=self.tick() if end_tick is None else end_tick,
            attrs=dict(attrs or {}),
        )
        self._next_span_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    # -- introspection ---------------------------------------------------

    def span_by_id(self, span_id: int) -> Span | None:
        """The span with ``span_id``, if it exists in this trace."""
        return self._by_id.get(span_id)

    def current_span(self) -> Span:
        """The innermost open span (at minimum the root)."""
        if not self._stack:
            raise TraceError(f"trace {self.trace_id} has no open span")
        return self._stack[-1]

    def open_spans(self) -> list[Span]:
        """Spans opened but not yet closed, outermost first."""
        return list(self._stack)

    def handle(self) -> TraceHandle:
        """A cross-node handle naming the innermost open span."""
        return TraceHandle(self.trace_id, self.current_span().span_id)

    def finish(self) -> None:
        """Close the root (and any still-open spans, innermost first).

        Stragglers are annotated ``abandoned`` so the sanitizer's
        closed-span check still sees a fully closed trace while the
        leak remains visible in the exported data.
        """
        for span in reversed(self._stack[1:]):
            span.attrs.setdefault("abandoned", True)
            self.close_span(span)
        if not self.root.closed:
            self.close_span(self.root)

    @property
    def duration_seconds(self) -> float:
        """Total wall duration (root span's, once finished)."""
        return self.root.duration_seconds or 0.0

    def nodes(self) -> list[int]:
        """Distinct simulated nodes that contributed spans, sorted."""
        return sorted(
            {s.node_index for s in self.spans if s.node_index is not None}
        )
