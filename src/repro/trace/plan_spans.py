"""Post-hoc operator spans: a finished plan tree → per-operator spans.

Operators cannot carry live spans safely: the pull model means a
``LimitOperator`` abandons its upstream generators mid-stream, which
would leak open spans, and a lazy generator's exit runs at GC time,
not at a deterministic point.  Instead the executor calls
:func:`record_plan_spans` after an attempt finishes, synthesizing one
*closed* span per operator from the accounting the base class already
keeps (``wall_seconds``, rows/blocks/pulls).

Two rules keep the synthesized tree honest:

* **DAG dedup** — shared Send subtrees under several Recvs are emitted
  once, by ``id()``, exactly like ``Operator.walk()``/``explain()``;
* **live spans win** — Send/Recv operators that recorded a real span
  during execution (see ``operators/exchange.py``) are not re-emitted;
  their live span becomes the parent of their subtree's synthesized
  spans, which is how operator spans inherit cross-node attribution.

Synthesized intervals start at the parent's start and are clipped to
the parent's duration, so the sanitizer's nesting invariant holds by
construction; the operator's true inclusive cost is preserved in the
span's ``dur`` up to that clip and exactly in its attrs.
"""

from __future__ import annotations

from typing import Any

from .span import Span, TraceContext


def record_plan_spans(
    trace: TraceContext | None, root: Any, parent: Span
) -> int:
    """Synthesize operator spans for ``root``'s subtree under ``parent``.

    ``root`` is an ``execution.operators.Operator`` (duck-typed: only
    ``children``, ``op_name``, ``label()``, ``wall_seconds`` and the
    row/block/pull counters are touched — no import of the execution
    package, which keeps the dependency arrow pointing the right way).
    Returns the number of spans emitted.
    """
    if trace is None:
        return 0
    return _emit(trace, root, parent, None, set())


def _budget(trace: TraceContext, parent: Span) -> float:
    if parent.closed:
        return parent.duration_seconds or 0.0
    return max(trace.offset() - parent.start_offset, 0.0)


def _emit(
    trace: TraceContext,
    op: Any,
    parent: Span,
    inherited_node: int | None,
    seen: set[int],
) -> int:
    if id(op) in seen:
        return 0
    seen.add(id(op))
    node = getattr(op, "node_index", None)
    if node is None:
        node = getattr(op, "trace_node", None)
    if node is None:
        node = inherited_node
    count = 0
    live_id = getattr(op, "trace_span_id", None)
    live = trace.span_by_id(live_id) if live_id is not None else None
    if live is not None:
        # the operator already recorded a real span during execution;
        # its subtree nests under that span (and its node) instead.
        for child in op.children:
            count += _emit(trace, child, live, node, seen)
        return count
    span = trace.add_closed_span(
        name=f"op.{op.op_name}",
        category="operator",
        node_index=node,
        parent_id=parent.span_id,
        start_offset=parent.start_offset,
        duration_seconds=min(
            max(op.wall_seconds, 0.0), _budget(trace, parent)
        ),
        start_tick=parent.start_tick,
        end_tick=(
            parent.end_tick if parent.end_tick is not None else None
        ),
        attrs={
            "label": op.label(),
            "rows": op.rows_produced,
            "blocks": op.blocks_produced,
            "pulls": op.pulls,
            "wall_seconds": round(op.wall_seconds, 9),
        },
    )
    count += 1
    for child in op.children:
        count += _emit(trace, child, span, node, seen)
    return count
