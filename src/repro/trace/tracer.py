"""The process-wide tracer: kill switch, sampling, span context managers.

The tracer mirrors the layering of the metrics registry (one
process-wide instance, ``TRACER``, reset between tests by
``repro.monitor.reset_all``) but unlike metrics it is **off by
default**: tracing records per-operation objects, not counter bumps,
so the disabled path must stay near-zero-cost.  The fast path when
disabled is one attribute read (``self._active is None``) followed by
returning a preallocated no-op context manager — no allocation, no
string formatting, no clock reads.

Enablement follows the override-else-environment pattern of
``repro.lint.sanitizer``:

* ``TRACER.configure(enabled=True)`` (or ``enabled_scope()``) wins;
* else the ``REPRO_TRACE`` environment variable (``1`` to enable);
* else disabled.

**Head-based sampling**: the keep/drop decision is made once, when the
trace would start, by the tracer's seeded RNG (``sample_rate=1.0``
keeps everything).  A dropped trace costs one RNG draw and nothing
else — every subsequent ``span()`` call sees ``_active is None`` and
takes the disabled fast path, exactly as the real system drops trace
headers at the edge.
"""

from __future__ import annotations

import os
from random import Random
from typing import TYPE_CHECKING, Any, Iterator

from ..errors import TraceError
from ..lint.concur.runtime import TrackedLock
from .span import Span, TraceContext, TraceHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.clock import SimulatedClock

#: Environment variable enabling tracing outside explicit configure().
TRACE_ENV = "REPRO_TRACE"

#: Traces kept in the ring buffer before the oldest is dropped.
RETAIN_TRACES = 64


class _NullSpanCM:
    """The disabled path's context manager: a shared, stateless no-op."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None

    def annotate(self, **attrs: object) -> None:
        """No-op counterpart of :meth:`_SpanCM.annotate`."""


_NULL_SPAN = _NullSpanCM()


class _SpanCM:
    """Context manager that closes its span on exit, recording errors."""

    __slots__ = ("_trace", "span")

    def __init__(self, trace: TraceContext, span: Span):
        self._trace = trace
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        self._trace.close_span(self.span)

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the live span."""
        self.span.attrs.update(attrs)


class _EnabledScope:
    """Context manager flipping the tracer on (or off) for a region."""

    def __init__(self, tracer: "Tracer", enabled: bool):
        self._tracer = tracer
        self._enabled = enabled
        self._previous: bool | None = None

    def __enter__(self) -> "Tracer":
        with self._tracer._lock:
            self._previous = self._tracer._override
            self._tracer._override = self._enabled
        return self._tracer

    def __exit__(self, *exc: object) -> None:
        with self._tracer._lock:
            self._tracer._override = self._previous


class Tracer:
    """Records traces when enabled; a cheap no-op otherwise.

    One trace is active at a time (statements execute one at a time;
    concurrency across "nodes" is simulated by the pull model), but
    nested units of work — a statement triggering a tuple-mover cycle,
    recovery running inside a supervisor tick — keep their own traces
    via :meth:`start_trace`'s stack discipline.  All lifecycle and
    configuration mutation runs under an internal mutex; the disabled
    fast path (``self._active is None`` in :meth:`span`) stays a single
    unlocked read, which is a benign race — the worst outcome is one
    span missing from a trace that started on another thread.
    """

    def __init__(self, seed: int = 0):
        self._lock = TrackedLock("Tracer._lock")
        self._seed = seed  # concurrency: guarded-by(self._lock)
        self._rng = Random(seed)  # concurrency: guarded-by(self._lock)
        self._override: bool | None = None  # concurrency: guarded-by(self._lock)
        self._sample_rate = 1.0  # concurrency: guarded-by(self._lock)
        self._active: TraceContext | None = None  # concurrency: guarded-by(self._lock)
        self._trace_stack: list[TraceContext] = []  # concurrency: guarded-by(self._lock)
        self.finished: list[TraceContext] = []  # concurrency: guarded-by(self._lock)
        self.clock: "SimulatedClock | None" = None  # concurrency: guarded-by(self._lock)

    # -- configuration ---------------------------------------------------

    def enabled(self) -> bool:
        """Whether new traces would be recorded right now."""
        if self._override is not None:
            return self._override
        return os.environ.get(TRACE_ENV, "0") not in ("", "0")

    def configure(
        self,
        enabled: bool | None = None,
        sample_rate: float | None = None,
        seed: int | None = None,
    ) -> None:
        """Set the kill switch, sampling rate and/or id seed."""
        with self._lock:
            if enabled is not None:
                self._override = enabled
            if sample_rate is not None:
                self._sample_rate = max(0.0, min(1.0, sample_rate))
            if seed is not None:
                self._seed = seed
                self._rng = Random(seed)

    def enabled_scope(self, enabled: bool = True) -> _EnabledScope:
        """Force tracing on (or off) within a ``with`` block."""
        return _EnabledScope(self, enabled)

    def bind_clock(self, clock: "SimulatedClock") -> None:
        """Use ``clock`` for span ticks in traces started afterwards."""
        with self._lock:
            self.clock = clock

    def reset(self) -> None:
        """Drop all recorded and in-flight traces; reseed the id RNG."""
        with self._lock:
            self._active = None
            self._trace_stack = []
            self.finished = []
            self._rng = Random(self._seed)

    # -- trace lifecycle -------------------------------------------------

    def start_trace(
        self, name: str, attrs: dict[str, Any] | None = None
    ) -> TraceContext | None:
        """Begin a trace (or return ``None`` if disabled/sampled out).

        A trace started while another is active is stacked: spans go to
        the innermost trace until it ends, then the outer one resumes.
        """
        if not self.enabled():
            return None
        with self._lock:
            if (
                self._sample_rate < 1.0
                and self._rng.random() >= self._sample_rate
            ):
                return None
            trace_id = f"{self._rng.getrandbits(64):016x}"
            trace = TraceContext(trace_id, name, clock=self.clock, attrs=attrs)
            if self._active is not None:
                self._trace_stack.append(self._active)
            self._active = trace
            return trace

    def end_trace(self, trace: TraceContext | None) -> None:
        """Finish ``trace``: close stragglers, sanitize, retain."""
        if trace is None:
            return
        with self._lock:
            if trace is not self._active:
                raise TraceError(
                    f"end_trace for {trace.trace_id} but active trace is "
                    f"{self._active.trace_id if self._active else None}"
                )
            trace.finish()
            self._active = (
                self._trace_stack.pop() if self._trace_stack else None
            )
            from ..lint import sanitizer

            if sanitizer.enabled():
                sanitizer.check_trace_spans_closed(trace)
                sanitizer.check_trace_nesting(trace)
            self.finished.append(trace)
            if len(self.finished) > RETAIN_TRACES:
                del self.finished[: len(self.finished) - RETAIN_TRACES]

    @property
    def active(self) -> TraceContext | None:
        """The trace currently recording, if any."""
        return self._active

    # -- span recording --------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "span",
        node_index: int | None = None,
        **attrs: object,
    ) -> _SpanCM | _NullSpanCM:
        """Open a child of the innermost open span (``with`` block)."""
        trace = self._active
        if trace is None:
            return _NULL_SPAN
        span = trace.open_span(
            name, category=category, node_index=node_index, attrs=attrs
        )
        return _SpanCM(trace, span)

    def span_from(
        self,
        handle: TraceHandle | None,
        name: str,
        category: str = "span",
        node_index: int | None = None,
        **attrs: object,
    ) -> _SpanCM | _NullSpanCM:
        """Open a span under the explicit parent named by ``handle``.

        This is the cross-node re-attachment point: exchange operators
        carry a :class:`TraceHandle` instead of relying on the open-span
        stack, because by the time a Recv drains on another "node" the
        stack no longer reflects who requested the work.  A handle for
        a different (or finished) trace is ignored — the remote side
        just runs untraced, as with a dropped trace header.
        """
        trace = self._active
        if trace is None or handle is None:
            return _NULL_SPAN
        if handle.trace_id != trace.trace_id:
            return _NULL_SPAN
        parent = trace.span_by_id(handle.span_id)
        if parent is None:
            return _NULL_SPAN
        span = trace.open_span(
            name,
            category=category,
            node_index=node_index,
            attrs=attrs,
            parent_id=parent.span_id,
        )
        return _SpanCM(trace, span)

    def handle(self) -> TraceHandle | None:
        """A cross-node handle for the innermost open span, if tracing."""
        trace = self._active
        if trace is None:
            return None
        return trace.handle()


#: The process-wide tracer every subsystem records through.
TRACER = Tracer()
