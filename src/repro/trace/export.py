"""Chrome trace-event export: finished traces → Perfetto-viewable JSON.

The Chrome trace-event format is the lingua franca of timeline
viewers: a JSON object with a ``traceEvents`` array, each element a
complete (``"ph": "X"``) slice with microsecond ``ts``/``dur``, plus
``"ph": "M"`` metadata events naming processes and threads.  Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` both open it
directly.

The mapping chosen here makes the simulated cluster legible at a
glance:

* **pid** = simulated node + 1 (the coordinator/initiator is pid 0),
  with a ``process_name`` metadata event per pid, so Perfetto renders
  one swimlane group per node;
* **tid** = the trace's index within the export, so concurrent
  statements stack instead of interleaving;
* span ids and parent ids ride in each event's ``args`` alongside the
  simulated ticks, keeping the deterministic story inspectable next to
  the wall-clock one.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ..errors import TraceError
from .span import TraceContext
from .tracer import TRACER, Tracer

#: pid assigned to spans with no node attribution (coordinator work).
COORDINATOR_PID = 0


def _pid(node_index: int | None) -> int:
    return COORDINATOR_PID if node_index is None else node_index + 1


class TraceSink:
    """A read-side view over finished traces, with exporters.

    By default the sink reads the process tracer's retained ring
    buffer; tests may hand it an explicit list of traces instead.
    """

    def __init__(
        self,
        traces: Iterable[TraceContext] | None = None,
        tracer: Tracer | None = None,
    ):
        self._traces = list(traces) if traces is not None else None
        self._tracer = tracer if tracer is not None else TRACER

    def traces(self) -> list[TraceContext]:
        """Finished traces this sink exports, oldest first."""
        if self._traces is not None:
            return self._traces
        return list(self._tracer.finished)

    def trace(self, trace_id: str) -> TraceContext:
        """The finished trace with ``trace_id``."""
        for candidate in self.traces():
            if candidate.trace_id == trace_id:
                return candidate
        raise TraceError(f"no finished trace with id {trace_id!r}")

    def latest(self) -> TraceContext:
        """The most recently finished trace."""
        traces = self.traces()
        if not traces:
            raise TraceError("no finished traces to export")
        return traces[-1]

    def to_chrome_trace(
        self, trace_ids: Iterable[str] | None = None
    ) -> dict[str, Any]:
        """Render traces as a Chrome trace-event JSON object.

        ``trace_ids`` restricts the export; default is every retained
        trace.  The result is ``json.dump``-able as is and loads in
        Perfetto unmodified.
        """
        selected = self.traces()
        if trace_ids is not None:
            wanted = set(trace_ids)
            selected = [t for t in selected if t.trace_id in wanted]
        events: list[dict[str, Any]] = []
        pids: set[int] = set()
        for tid, trace in enumerate(selected):
            for span in trace.spans:
                pid = _pid(span.node_index)
                pids.add(pid)
                args: dict[str, Any] = {
                    "trace_id": trace.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start_tick": span.start_tick,
                    "end_tick": span.end_tick,
                }
                args.update(span.attrs)
                events.append(
                    {
                        "name": span.name,
                        "cat": span.category,
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "ts": round(span.start_offset * 1e6, 3),
                        "dur": round((span.duration_seconds or 0.0) * 1e6, 3),
                        "args": args,
                    }
                )
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": (
                        "coordinator"
                        if pid == COORDINATOR_PID
                        else f"node{pid - 1}"
                    )
                },
            }
            for pid in sorted(pids)
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"exporter": "repro.trace", "traces": len(selected)},
        }

    def write_chrome_trace(
        self, path: str, trace_ids: Iterable[str] | None = None
    ) -> None:
        """Write :meth:`to_chrome_trace` output to ``path`` as JSON."""
        payload = self.to_chrome_trace(trace_ids)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
