"""Process-wide metrics registry: counters, gauges, histograms, events.

Vertica exposes its internal accounting through ``v_monitor`` system
tables; everything those tables report starts life as a plain counter
bump somewhere in the engine.  This module is that substrate for the
reproduction: a single :class:`MetricsRegistry` instance (``METRICS``)
that every layer — operators, storage, tuple mover, lock manager,
cluster — increments as it works.

Design constraints, in order:

* **Near-zero cost.**  ``inc`` is one dict lookup and an integer add
  under an uncontended mutex; hot paths bump once per *block*, never
  per row.  Instrumentation is on unconditionally — there is no
  "enabled" flag to check.
* **Thread safe.**  One registry serves every session thread, so all
  mutation and every read-modify-write snapshot runs under a single
  internal lock (a :class:`~repro.lint.concur.runtime.TrackedLock`, so
  the ``REPRO_SANITIZE=1`` lockset race detector can verify the
  guarded-by discipline at runtime).  Single-threaded behaviour is
  unchanged.
* **Deterministic snapshots.**  Histograms keep exact count/sum/min/max
  plus a bounded reservoir sample.  Reservoir replacement uses a
  ``random.Random`` seeded from the registry seed and the metric name
  (via ``zlib.crc32``, not ``hash()``, which is salted per process), so
  the same sequence of ``observe`` calls yields byte-identical
  snapshots on every run.
* **Resettable.**  Tests and benchmarks call :meth:`reset` (or diff two
  :meth:`snapshot` results) to get isolated measurements without
  touching the instrumented code.
"""

from __future__ import annotations

import zlib
from random import Random
from typing import Any, Iterable

from ..lint.concur.runtime import RACES, TrackedLock

#: Bounded sample kept per histogram for percentile estimates.
RESERVOIR_SIZE = 256


class Histogram:
    """Exact count/sum/min/max plus a seeded reservoir sample.

    Mutation happens only through :meth:`MetricsRegistry.observe`,
    which holds the registry lock — the histogram itself carries no
    synchronization.
    """

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_rng")

    def __init__(self, seed: int):
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._reservoir: list[float] = []
        self._rng = Random(seed)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._reservoir[slot] = value

    def percentile(self, fraction: float) -> float | None:
        """Estimated percentile (0.0-1.0) from the reservoir sample."""
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def to_dict(self) -> dict[str, Any]:
        """Snapshot of the histogram's state (deterministic)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for the whole process."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._lock = TrackedLock("MetricsRegistry._lock")
        self._counters: dict[str, int] = {}  # concurrency: guarded-by(self._lock)
        self._gauges: dict[str, float] = {}  # concurrency: guarded-by(self._lock)
        self._histograms: dict[str, Histogram] = {}  # concurrency: guarded-by(self._lock)

    # -- write side ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount
            RACES.note_write("METRICS._counters", "MetricsRegistry.inc")

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                seed = self._seed ^ zlib.crc32(name.encode("utf-8"))
                histogram = self._histograms[name] = Histogram(seed)
            histogram.observe(value)

    # -- read side -------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Current value of gauge ``name``, if set."""
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        """The histogram object for ``name``, if any observation exists."""
        with self._lock:
            return self._histograms.get(name)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def counters_snapshot(self) -> dict[str, int]:
        """Consistent copy of every counter, for delta capture."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict[str, Any]:
        """Deterministic point-in-time dump of every metric."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: histogram.to_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Zero everything; the next measurement starts clean."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def capture(self, names: Iterable[str] | None = None) -> "CounterCapture":
        """Scoped counter-delta measurement::

            with METRICS.capture(("queries.executed",)) as captured:
                run_workload()
            captured.deltas  # {"queries.executed": 3}

        ``names`` restricts (and orders) the reported counters; by
        default every counter that existed at entry or moved during the
        scope is reported.  Unlike hand-diffing :meth:`snapshot`, the
        capture never resets the registry, so scopes nest safely.
        """
        return CounterCapture(self, tuple(names) if names is not None else None)


class CounterCapture:
    """Context manager recording counter deltas across a scope."""

    def __init__(self, registry: MetricsRegistry, names: tuple | None):
        self._registry = registry
        self._names = names
        self._before: dict[str, int] = {}
        #: Per-counter movement, populated at scope exit.
        self.deltas: dict[str, int] = {}

    def __enter__(self) -> "CounterCapture":
        self._before = self._registry.counters_snapshot()
        return self

    def __exit__(self, *exc: object) -> None:
        after = self._registry.counters_snapshot()
        names = (
            self._names
            if self._names is not None
            else sorted(set(self._before) | set(after))
        )
        self.deltas = {
            name: after.get(name, 0) - self._before.get(name, 0)
            for name in names
        }


def counter_delta(
    before: dict[str, Any], after: dict[str, Any], names: Iterable[str]
) -> dict[str, int]:
    """Per-counter difference between two :meth:`MetricsRegistry.snapshot`
    results, for the given counter names."""
    old = before.get("counters", {})
    new = after.get("counters", {})
    return {name: new.get(name, 0) - old.get(name, 0) for name in names}


#: The process-wide registry every subsystem bumps.
METRICS = MetricsRegistry()
