"""Bounded event logs for background cluster activity.

Moveout and mergeout are background jobs, so their costs never show up
in a query profile; Vertica surfaces them through
``v_monitor.tuple_mover_operations`` instead.  The reproduction's
equivalent is this log: the tuple mover appends one
:class:`TupleMoverEvent` per completed moveout/mergeout and
``v_monitor.tuple_mover_events`` reads them back through SQL.

The availability machinery is background work too: ejections by the
failure detector, mid-query buddy-failover retries and the recovery
supervisor's phase transitions all land in a per-cluster
:class:`FailoverLog`, served through ``v_monitor.failover_events``.
Unlike :data:`EVENTS` it is *not* process-wide — chaos tests run an
oracle cluster and a system-under-test side by side, and their
availability histories must not interleave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..lint.concur.runtime import TrackedLock
from .retention import RetentionPolicy

#: Events retained before the oldest are evicted.
EVENT_CAPACITY = 1024


@dataclass
class TupleMoverEvent:
    """One completed moveout or mergeout."""

    event_id: int
    kind: str  # "moveout" | "mergeout"
    node_index: int
    projection: str
    containers_in: int
    containers_out: int
    rows_in: int
    rows_out: int
    rows_purged: int
    #: Merge stratum of the largest input (mergeout); -1 for moveout.
    stratum: int
    duration_seconds: float


class EventLog:
    """Bounded FIFO of :class:`TupleMoverEvent` records.

    The process-wide instance (:data:`EVENTS`) may be appended to from
    any session thread, so the id/append/evict sequence runs under an
    internal mutex.  (:class:`FailoverLog` below is per-cluster state
    owned by the cluster's own machinery and needs none.)
    """

    def __init__(
        self,
        capacity: int = EVENT_CAPACITY,
        retention: RetentionPolicy | None = None,
    ):
        # ``retention`` is the shared knob shape; ``capacity`` kept for
        # compatibility.  Tuple-mover events carry no clock tick, so
        # only the record-count bound applies.
        self._capacity = retention.max_records if retention else capacity
        self._lock = TrackedLock("EventLog._lock")
        self._events: list[TupleMoverEvent] = []  # concurrency: guarded-by(self._lock)
        self._next_id = 1  # concurrency: guarded-by(self._lock)

    def record(
        self,
        kind: str,
        node_index: int,
        projection: str,
        containers_in: int,
        containers_out: int,
        rows_in: int,
        rows_out: int,
        rows_purged: int,
        stratum: int,
        duration_seconds: float,
    ) -> TupleMoverEvent:
        """Append one event, evicting the oldest past capacity."""
        with self._lock:
            event = TupleMoverEvent(
                event_id=self._next_id,
                kind=kind,
                node_index=node_index,
                projection=projection,
                containers_in=containers_in,
                containers_out=containers_out,
                rows_in=rows_in,
                rows_out=rows_out,
                rows_purged=rows_purged,
                stratum=stratum,
                duration_seconds=duration_seconds,
            )
            self._next_id += 1
            self._events.append(event)
            if len(self._events) > self._capacity:
                del self._events[0]
            return event

    def events(self) -> list[TupleMoverEvent]:
        """All retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def reset(self) -> None:
        """Drop all events and restart ids from 1."""
        with self._lock:
            self._events.clear()
            self._next_id = 1


#: The process-wide tuple-mover event log.
EVENTS = EventLog()


@dataclass
class FailoverEvent:
    """One availability-relevant incident on a cluster."""

    event_id: int
    #: Simulated-clock tick the event was recorded at.
    tick: int
    #: "ejection" | "query_retry" | "recovery_transition" |
    #: "quarantine" | "degraded_mode".
    kind: str
    #: Node the event concerns (-1 for cluster-wide events).
    node_index: int
    #: Free-form context: ejection reason, retry attempt, the
    #: ``OLD->NEW`` supervisor transition, the degraded mode entered.
    detail: str
    #: Recovery attempt count at the time (0 where not applicable).
    attempt: int = 0


class FailoverLog:
    """Bounded FIFO of :class:`FailoverEvent` records, per cluster.

    ``sink``, when given, is called with every recorded event — the
    cluster uses it to mirror availability incidents into the Data
    Collector's ``node_events`` component without touching any of the
    record sites.
    """

    def __init__(
        self,
        capacity: int = EVENT_CAPACITY,
        retention: RetentionPolicy | None = None,
        sink: "Callable[[FailoverEvent], None] | None" = None,
    ):
        self._capacity = retention.max_records if retention else capacity
        self._sink = sink
        self._events: list[FailoverEvent] = []
        self._next_id = 1

    def record(
        self,
        kind: str,
        node_index: int,
        detail: str,
        tick: int,
        attempt: int = 0,
    ) -> FailoverEvent:
        """Append one event, evicting the oldest past capacity."""
        event = FailoverEvent(
            event_id=self._next_id,
            tick=tick,
            kind=kind,
            node_index=node_index,
            detail=detail,
            attempt=attempt,
        )
        self._next_id += 1
        self._events.append(event)
        if len(self._events) > self._capacity:
            del self._events[0]
        if self._sink is not None:
            self._sink(event)
        return event

    def events(self, kind: str | None = None) -> list[FailoverEvent]:
        """Retained events, oldest first, optionally of one kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def reset(self) -> None:
        """Drop all events and restart ids from 1."""
        self._events.clear()
        self._next_id = 1
