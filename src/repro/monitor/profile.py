"""Per-query operator profiles: the data behind ``EXPLAIN ANALYZE`` and
``v_monitor.query_profiles``.

After a query runs, :func:`profile_plan` walks the finished operator
tree and freezes each operator's accounting (rows, blocks, pulls, wall
time) into plain dataclasses.  The walk deduplicates by object
identity: distributed plans share operators across branches (one
``Send`` feeds every ``Recv`` endpoint), and counting a shared operator
once per parent would double its contribution — exactly the class of
bug this profiler exists to expose, so it must not commit it itself.

Completed profiles land in :data:`PROFILES`, a bounded process-wide
log that ``v_monitor.query_profiles`` reads back out through the SQL
front end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..lint.concur.runtime import RACES, TrackedLock
from .retention import RetentionPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..execution.operators.base import Operator

#: Completed query profiles kept for ``v_monitor.query_profiles``.
PROFILE_CAPACITY = 256


@dataclass
class OperatorProfile:
    """Frozen accounting for one operator instance in one query."""

    operator_id: int
    parent_id: int | None
    depth: int
    op_name: str
    label: str
    rows_produced: int
    blocks_produced: int
    pulls: int
    wall_seconds: float
    #: Wall time minus children's wall time (clamped at zero): the
    #: operator's own work, not the subtree's.
    self_seconds: float = 0.0
    #: How blocks were processed: "kernel", "row", "mixed", or "-" for
    #: operators without a kernel/row distinction.
    execution: str = "-"


@dataclass
class QueryProfile:
    """One executed query: its text, shape and per-operator costs."""

    query_id: int
    sql: str
    epoch: int
    rows_returned: int
    wall_seconds: float
    operators: list[OperatorProfile] = field(default_factory=list)

    def render(self) -> str:
        """The ``EXPLAIN ANALYZE`` text: plan tree annotated with
        per-operator rows, blocks, pulls and wall time."""
        header = (
            f"Query {self.query_id} ({self.rows_returned} rows, "
            f"{self.wall_seconds * 1000:.2f} ms)"
        )
        lines = [header]
        for op in self.operators:
            execution = (
                f" exec={op.execution}" if op.execution != "-" else ""
            )
            lines.append(
                "  " * op.depth
                + f"{op.label}  "
                + f"[rows={op.rows_produced} blocks={op.blocks_produced} "
                + f"pulls={op.pulls} time={op.wall_seconds * 1000:.2f}ms "
                + f"self={op.self_seconds * 1000:.2f}ms{execution}]"
            )
        return "\n".join(lines)


class ProfileLog:
    """Bounded FIFO of completed :class:`QueryProfile` objects.

    One instance (:data:`PROFILES`) serves every session thread, so id
    allocation and the append/evict pair run under an internal mutex.
    """

    def __init__(
        self,
        capacity: int = PROFILE_CAPACITY,
        retention: RetentionPolicy | None = None,
    ):
        # ``retention`` carries the shared bounded-history knob shape;
        # profiles have no clock tick, so only the count bound applies.
        self._capacity = retention.max_records if retention else capacity
        self._lock = TrackedLock("ProfileLog._lock")
        self._profiles: list[QueryProfile] = []  # concurrency: guarded-by(self._lock)
        self._next_id = 1  # concurrency: guarded-by(self._lock)

    def next_query_id(self) -> int:
        """Allocate the next monotonically increasing query id."""
        with self._lock:
            query_id = self._next_id
            self._next_id += 1
            RACES.note_write("PROFILES._next_id", "ProfileLog.next_query_id")
            return query_id

    def record(self, profile: QueryProfile) -> None:
        """Append ``profile``, evicting the oldest past capacity."""
        with self._lock:
            self._profiles.append(profile)
            if len(self._profiles) > self._capacity:
                del self._profiles[0]

    def profiles(self) -> list[QueryProfile]:
        """All retained profiles, oldest first."""
        with self._lock:
            return list(self._profiles)

    def last(self) -> QueryProfile | None:
        """The most recently recorded profile, if any."""
        with self._lock:
            return self._profiles[-1] if self._profiles else None

    def reset(self) -> None:
        """Drop all profiles and restart query ids from 1."""
        with self._lock:
            self._profiles.clear()
            self._next_id = 1


def profile_plan(root: "Operator") -> list[OperatorProfile]:
    """Freeze the operator tree under ``root`` into profiles, preorder.

    Shared operators (a ``Send`` appears in every ``Recv``'s child
    list) are visited once, under their first parent; revisits are
    skipped so totals are never double-counted.
    """
    profiles: list[OperatorProfile] = []
    seen: set[int] = set()

    def visit(op: "Operator", parent_id: int | None, depth: int) -> None:
        if id(op) in seen:
            return
        seen.add(id(op))
        profile = OperatorProfile(
            operator_id=len(profiles) + 1,
            parent_id=parent_id,
            depth=depth,
            op_name=op.op_name,
            label=op.label(),
            rows_produced=op.rows_produced,
            blocks_produced=op.blocks_produced,
            pulls=op.pulls,
            wall_seconds=op.wall_seconds,
            execution=op.execution_mode(),
        )
        profiles.append(profile)
        for child in op.children:
            visit(child, profile.operator_id, depth + 1)

    visit(root, None, 0)
    child_time: dict[int, float] = {}
    for profile in profiles:
        if profile.parent_id is not None:
            child_time[profile.parent_id] = (
                child_time.get(profile.parent_id, 0.0) + profile.wall_seconds
            )
    for profile in profiles:
        profile.self_seconds = max(
            0.0, profile.wall_seconds - child_time.get(profile.operator_id, 0.0)
        )
    return profiles


def build_query_profile(
    root: "Operator",
    sql: str,
    epoch: int,
    rows_returned: int,
    wall_seconds: float,
) -> QueryProfile:
    """Assemble and register a :class:`QueryProfile` for a finished query."""
    profile = QueryProfile(
        query_id=PROFILES.next_query_id(),
        sql=sql,
        epoch=epoch,
        rows_returned=rows_returned,
        wall_seconds=wall_seconds,
        operators=profile_plan(root),
    )
    PROFILES.record(profile)
    return profile


def summarize(profile: QueryProfile) -> dict[str, Any]:
    """Flat dict view of a profile (bench reports, debugging)."""
    return {
        "query_id": profile.query_id,
        "sql": profile.sql,
        "rows_returned": profile.rows_returned,
        "wall_seconds": profile.wall_seconds,
        "operators": len(profile.operators),
    }


#: The process-wide query profile log.
PROFILES = ProfileLog()
