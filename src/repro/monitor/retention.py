"""The shared retention policy for bounded operational history.

Every in-memory operational store — the Data Collector's per-component
rings (:mod:`repro.dc.collector`), the query :class:`ProfileLog` and
the tuple-mover :class:`EventLog` — bounds itself with the same two
knobs so "how much history do we keep?" has exactly one answer shape:

* ``max_records`` — hard cap on retained records; the oldest are
  evicted first (FIFO), exactly like Vertica's Data Collector ring
  buffers;
* ``max_age_ticks`` — optional age bound in *simulated-clock* ticks
  (:class:`repro.cluster.clock.SimulatedClock`); records stamped more
  than this many ticks in the past are evicted whenever the store is
  touched or the clock advances.  ``None`` disables age-based
  eviction.  Stores whose records carry no tick (profiles, tuple-mover
  events) enforce only the count bound.

This module is deliberately dependency-free: it sits below everything
else in the monitor/dc stack so any layer can import it without
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetentionPolicy:
    """How much operational history a bounded store retains."""

    #: Hard cap on retained records (oldest evicted first).
    max_records: int = 1024
    #: Optional age bound in simulated-clock ticks; ``None`` = no
    #: age-based eviction.
    max_age_ticks: int | None = None

    def expired(self, record_tick: int, now: int) -> bool:
        """Whether a record stamped at ``record_tick`` has aged out at
        simulated time ``now``."""
        if self.max_age_ticks is None:
            return False
        return now - record_tick > self.max_age_ticks


#: Default policy shared by the Data Collector rings, the profile log
#: and the tuple-mover event log.
DEFAULT_RETENTION = RetentionPolicy(max_records=1024, max_age_ticks=None)
