"""Monitoring: metrics registry, query profiles, tuple-mover events.

The package mirrors Vertica's monitoring surface (``v_monitor``
system tables, ``PROFILE``/``EXPLAIN ANALYZE``) for the reproduction.
Three process-wide stores, all resettable:

* :data:`METRICS` — counters/gauges/histograms bumped by every layer;
* :data:`PROFILES` — per-query operator profiles;
* :data:`EVENTS` — tuple-mover moveout/mergeout events.

The ``v_monitor`` table definitions live in
:mod:`repro.monitor.tables` and are imported lazily by the SQL front
end (they depend on analyzer/execution modules, which in turn import
this package's registry — keeping them out of ``__init__`` avoids the
cycle).
"""

from .events import EVENTS, EventLog, FailoverEvent, FailoverLog, TupleMoverEvent
from .profile import (
    PROFILES,
    OperatorProfile,
    ProfileLog,
    QueryProfile,
    build_query_profile,
    profile_plan,
)
from .registry import (
    METRICS,
    CounterCapture,
    Histogram,
    MetricsRegistry,
    counter_delta,
)
from .retention import DEFAULT_RETENTION, RetentionPolicy

__all__ = [
    "DEFAULT_RETENTION",
    "RetentionPolicy",
    "CounterCapture",
    "EVENTS",
    "EventLog",
    "FailoverEvent",
    "FailoverLog",
    "TupleMoverEvent",
    "PROFILES",
    "OperatorProfile",
    "ProfileLog",
    "QueryProfile",
    "build_query_profile",
    "profile_plan",
    "METRICS",
    "Histogram",
    "MetricsRegistry",
    "counter_delta",
    "reset_all",
]


def reset_all() -> None:
    """Zero every monitoring store (tests, benchmark isolation)."""
    METRICS.reset()
    PROFILES.reset()
    EVENTS.reset()
    # lazy: the tracer lives in its own package and monitoring must
    # stay importable from the storage layers below it.
    from ..trace import TRACER

    TRACER.reset()
    from ..lint.concur.runtime import RACES

    RACES.reset()
