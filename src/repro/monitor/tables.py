"""``v_monitor`` virtual system tables, queryable through SQL.

Vertica ships its monitoring as ordinary tables in the ``v_monitor``
schema so operators can use plain SQL against them.  This module does
the same for the reproduction's tables:

* ``v_monitor.query_profiles`` — one row per operator per profiled
  query (the tabular twin of ``EXPLAIN ANALYZE``);
* ``v_monitor.projection_storage`` — per-(node, projection) storage
  accounting;
* ``v_monitor.tuple_mover_events`` — completed moveout/mergeout
  operations with durations and strata;
* ``v_monitor.locks`` — currently granted table locks;
* ``v_monitor.node_states`` — per-node view of the self-healing
  runtime: membership, supervisor state machine, heartbeat age and
  recovery backoff/attempt bookkeeping;
* ``v_monitor.failover_events`` — the cluster's failover log
  (ejections, mid-query retries, recovery transitions, quarantines,
  degraded-mode changes), stamped with the simulated-clock tick;
* ``v_monitor.sessions`` — live service sessions (state, pool,
  transaction, current statement) when a
  :class:`repro.service.SqlService` wraps the database;
* ``v_monitor.resource_pools`` — per-pool admission accounting from
  the resource governor (budget, running, queued, reject/timeout
  totals);
* ``v_monitor.metrics`` — the raw MetricsRegistry, one row per
  counter/gauge/histogram, so new instrumentation is queryable the
  moment it exists without a curated table;
* ``v_monitor.query_traces`` / ``v_monitor.trace_spans`` — the
  distributed tracer's retained traces (``REPRO_TRACE=1``): one row
  per trace, and one row per span with parent ids, node attribution
  and both clocks (simulated ticks + wall durations);
* ``v_monitor.journal`` — one row per on-disk write-ahead journal
  segment (record/byte counts, LSN range, active flag) plus the
  durable floor and newest checkpoint LSN; empty when the database
  was opened with ``durable=False``;
* the Data Collector tables — ``dc_requests_completed``,
  ``dc_resource_acquisitions``, ``dc_lock_waits``, ``dc_node_events``,
  ``dc_tuple_mover``, ``dc_errors`` — serving
  :class:`repro.dc.DataCollector`'s retention-bounded (and, for
  durable databases, crash-recoverable) operational history;
* ``v_monitor.slow_queries`` — the requests history filtered to
  statements at or above ``db.health.config.slow_query_ms``;
* ``v_monitor.alerts`` — the health engine's rules
  (:class:`repro.dc.HealthMonitor`), re-evaluated on every read, one
  row per rule with its firing state and raise/clear history.

Virtual tables never reach the optimizer or the distributed executor:
their rows are tiny, in-memory and node-local, so
:func:`execute_monitor_select` evaluates the statement directly —
reusing the analyzer's scope resolution and runtime ``Expr`` objects
so WHERE/ORDER BY/LIMIT behave exactly as they do over real tables.
Joins, grouping and aggregates over virtual tables are rejected.

This module is imported lazily by the SQL front end: it depends on the
analyzer, which lives above the storage layers that import the
metrics registry at module load.
"""

from __future__ import annotations

from ..errors import SqlAnalysisError, UnknownObjectError
from .events import EVENTS
from .profile import PROFILES

#: Schema name all virtual tables live under.
SCHEMA = "v_monitor"

_COLUMNS = {
    "query_profiles": [
        "query_id",
        "sql",
        "epoch",
        "rows_returned",
        "query_ms",
        "operator_id",
        "parent_id",
        "depth",
        "operator_name",
        "label",
        "rows_produced",
        "blocks_produced",
        "pulls",
        "wall_ms",
        "self_ms",
        "execution",
    ],
    "projection_storage": [
        "node_name",
        "projection_name",
        "anchor_table",
        "wos_rows",
        "ros_rows",
        "ros_containers",
        "ros_bytes",
        "delete_markers",
    ],
    "tuple_mover_events": [
        "event_id",
        "kind",
        "node_name",
        "projection_name",
        "containers_in",
        "containers_out",
        "rows_in",
        "rows_out",
        "rows_purged",
        "stratum",
        "duration_ms",
    ],
    "locks": [
        "object_name",
        "txn_id",
        "mode",
    ],
    "node_states": [
        "node_name",
        "node_index",
        "is_up",
        "supervisor_state",
        "recovery_attempts",
        "next_attempt_tick",
        "last_transition_tick",
        "heartbeat_age",
        "missed_heartbeats",
        "last_error",
    ],
    "failover_events": [
        "event_id",
        "tick",
        "kind",
        "node_index",
        "node_name",
        "attempt",
        "detail",
    ],
    "sessions": [
        "session_id",
        "state",
        "pool_name",
        "isolation",
        "txn_id",
        "current_statement",
        "statements_run",
        "statements_failed",
        "last_error",
    ],
    "resource_pools": [
        "pool_name",
        "memory_budget_rows",
        "memory_in_use_rows",
        "max_concurrency",
        "running",
        "queue_depth",
        "queued",
        "queue_timeout_ticks",
        "admitted_total",
        "queued_total",
        "rejected_total",
        "timed_out_total",
        "cancelled_total",
        "peak_running",
    ],
    # min/max/count/sum are SQL-adjacent words; the column names here
    # deliberately avoid anything the parser treats as a keyword.
    "metrics": [
        "name",
        "kind",
        "value",
        "observations",
        "total",
        "min_value",
        "max_value",
        "mean",
        "p50",
        "p95",
    ],
    "query_traces": [
        "trace_id",
        "name",
        "statement",
        "sql",
        "start_tick",
        "end_tick",
        "duration_ms",
        "span_count",
        "node_count",
        # not "nodes": NODES is a SQL keyword (ALL NODES) in this
        # dialect and could never be named in a select list.
        "node_list",
    ],
    "trace_spans": [
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "category",
        "node_index",
        "node_name",
        "start_tick",
        "end_tick",
        "start_ms",
        "duration_ms",
        "error",
        "attrs",
    ],
    "journal": [
        "segment",
        "records",
        "bytes",
        "first_lsn",
        "last_lsn",
        "is_active",
        "checkpoint_lsn",
        "floor_epoch",
    ],
    "dc_requests_completed": [
        "record_id",
        "tick",
        "statement",
        "session_id",
        "pool_name",
        "sql",
        "success",
        "error",
        "engine",
        "rows_returned",
        "duration_ms",
        "epoch",
    ],
    "dc_resource_acquisitions": [
        "record_id",
        "tick",
        "outcome",
        "pool_name",
        "session_id",
        "ticket_id",
        "memory_rows",
        "queued_ticks",
        "detail",
    ],
    "dc_lock_waits": [
        "record_id",
        "tick",
        "outcome",
        "txn_id",
        "object_name",
        "mode",
        "blocker_txn",
        "detail",
    ],
    "dc_node_events": [
        "record_id",
        "tick",
        "kind",
        "node_index",
        "node_name",
        "attempt",
        "detail",
    ],
    "dc_tuple_mover": [
        "record_id",
        "tick",
        "kind",
        "node_index",
        "projection_name",
        "containers_in",
        "containers_out",
        "rows_in",
        "rows_out",
        "rows_purged",
        "stratum",
        "duration_ms",
    ],
    "dc_errors": [
        "record_id",
        "tick",
        "kind",
        "source",
        "node_index",
        "detail",
    ],
    "slow_queries": [
        "record_id",
        "tick",
        "statement",
        "session_id",
        "pool_name",
        "sql",
        "engine",
        "rows_returned",
        "duration_ms",
        "threshold_ms",
    ],
    "alerts": [
        "alert",
        "severity",
        "state",
        "value",
        "raise_above",
        "clear_below",
        "raised_tick",
        "cleared_tick",
        "times_raised",
        "detail",
    ],
}


def is_monitor_table(name: str) -> bool:
    """Whether a FROM-clause table name addresses the v_monitor schema."""
    return name.lower().startswith(SCHEMA + ".")


def table_names() -> list[str]:
    """The available virtual tables, qualified."""
    return [f"{SCHEMA}.{name}" for name in sorted(_COLUMNS)]


def columns_of(qualified: str) -> list[str]:
    """Column names of one virtual table (schema-qualified name)."""
    return list(_COLUMNS[_short_name(qualified)])


def _short_name(qualified: str) -> str:
    schema, _, short = qualified.partition(".")
    if schema.lower() != SCHEMA or short.lower() not in _COLUMNS:
        raise UnknownObjectError(
            f"unknown system table {qualified!r}; have {table_names()}"
        )
    return short.lower()


def _query_profiles_rows(db) -> list[dict]:
    rows = []
    for profile in PROFILES.profiles():
        for op in profile.operators:
            rows.append(
                {
                    "query_id": profile.query_id,
                    "sql": profile.sql,
                    "epoch": profile.epoch,
                    "rows_returned": profile.rows_returned,
                    "query_ms": profile.wall_seconds * 1000.0,
                    "operator_id": op.operator_id,
                    "parent_id": op.parent_id,
                    "depth": op.depth,
                    "operator_name": op.op_name,
                    "label": op.label,
                    "rows_produced": op.rows_produced,
                    "blocks_produced": op.blocks_produced,
                    "pulls": op.pulls,
                    "wall_ms": op.wall_seconds * 1000.0,
                    "self_ms": op.self_seconds * 1000.0,
                    "execution": op.execution,
                }
            )
    return rows


def _projection_storage_rows(db) -> list[dict]:
    rows = []
    for node in db.cluster.nodes:
        for name in node.manager.projection_names():
            state = node.manager.storage(name)
            rows.append(
                {
                    "node_name": node.name,
                    "projection_name": name,
                    "anchor_table": state.projection.anchor_table,
                    "wos_rows": state.wos.row_count,
                    "ros_rows": sum(
                        c.row_count for c in state.containers.values()
                    ),
                    "ros_containers": len(state.containers),
                    "ros_bytes": node.manager.total_data_bytes(name),
                    "delete_markers": state.delete_count(),
                }
            )
    return rows


def _tuple_mover_events_rows(db) -> list[dict]:
    return [
        {
            "event_id": event.event_id,
            "kind": event.kind,
            "node_name": f"node{event.node_index:02d}",
            "projection_name": event.projection,
            "containers_in": event.containers_in,
            "containers_out": event.containers_out,
            "rows_in": event.rows_in,
            "rows_out": event.rows_out,
            "rows_purged": event.rows_purged,
            "stratum": event.stratum,
            "duration_ms": event.duration_seconds * 1000.0,
        }
        for event in EVENTS.events()
    ]


def _locks_rows(db) -> list[dict]:
    rows = []
    for obj, state in sorted(db.cluster.locks._objects.items()):
        for txn_id, mode in sorted(state.holders.items()):
            rows.append(
                {"object_name": obj, "txn_id": txn_id, "mode": mode.value}
            )
    return rows


def _node_states_rows(db) -> list[dict]:
    cluster = db.cluster
    now = cluster.clock.now
    rows = []
    for index, record in sorted(cluster.supervisor.states().items()):
        rows.append(
            {
                "node_name": cluster.nodes[index].name,
                "node_index": index,
                "is_up": cluster.membership.is_up(index),
                "supervisor_state": record.state,
                "recovery_attempts": record.recovery_attempts,
                "next_attempt_tick": record.next_attempt_tick,
                "last_transition_tick": record.last_transition_tick,
                "heartbeat_age": cluster.membership.heartbeat_age(index, now),
                "missed_heartbeats": cluster.membership.missed_heartbeats.get(
                    index, 0
                ),
                "last_error": record.last_error,
            }
        )
    return rows


def _failover_events_rows(db) -> list[dict]:
    cluster = db.cluster
    rows = []
    for event in cluster.failover_log.events():
        if 0 <= event.node_index < cluster.node_count:
            node_name = cluster.nodes[event.node_index].name
        else:
            node_name = "*"  # cluster-wide events (degraded modes)
        rows.append(
            {
                "event_id": event.event_id,
                "tick": event.tick,
                "kind": event.kind,
                "node_index": event.node_index,
                "node_name": node_name,
                "attempt": event.attempt,
                "detail": event.detail,
            }
        )
    return rows


def _sessions_rows(db) -> list[dict]:
    """Live service sessions; empty when no SqlService wraps ``db``."""
    service = getattr(db, "service", None)
    if service is None:
        return []
    return service.session_rows()


def _resource_pools_rows(db) -> list[dict]:
    """Governor pool accounting; empty when no SqlService wraps ``db``."""
    service = getattr(db, "service", None)
    if service is None:
        return []
    return service.governor.pool_rows()


def _metrics_rows(db) -> list[dict]:
    from .registry import METRICS

    snapshot = METRICS.snapshot()
    template = {name: None for name in _COLUMNS["metrics"]}
    rows = []
    for name, value in snapshot["counters"].items():
        rows.append({**template, "name": name, "kind": "counter", "value": value})
    for name, value in snapshot["gauges"].items():
        rows.append({**template, "name": name, "kind": "gauge", "value": value})
    for name, stats in snapshot["histograms"].items():
        rows.append(
            {
                **template,
                "name": name,
                "kind": "histogram",
                "observations": stats["count"],
                "total": stats["sum"],
                "min_value": stats["min"],
                "max_value": stats["max"],
                "mean": stats["mean"],
                "p50": stats["p50"],
                "p95": stats["p95"],
            }
        )
    rows.sort(key=lambda row: (row["kind"], row["name"]))
    return rows


def _trace_node_name(node_index) -> str:
    return "coordinator" if node_index is None else f"node{node_index:02d}"


def _query_traces_rows(db) -> list[dict]:
    from ..trace import TRACER

    rows = []
    for trace in TRACER.finished:
        nodes = trace.nodes()
        rows.append(
            {
                "trace_id": trace.trace_id,
                "name": trace.name,
                "statement": trace.root.attrs.get("statement"),
                "sql": trace.root.attrs.get("sql"),
                "start_tick": trace.root.start_tick,
                "end_tick": trace.root.end_tick,
                "duration_ms": trace.duration_seconds * 1000.0,
                "span_count": len(trace.spans),
                "node_count": len(nodes),
                "node_list": ",".join(str(node) for node in nodes),
            }
        )
    return rows


def _trace_spans_rows(db) -> list[dict]:
    import json

    from ..trace import TRACER

    rows = []
    for trace in TRACER.finished:
        for span in trace.spans:
            attrs = {
                key: value
                for key, value in sorted(span.attrs.items())
                if key != "error"
            }
            rows.append(
                {
                    "trace_id": trace.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "category": span.category,
                    "node_index": span.node_index,
                    "node_name": _trace_node_name(span.node_index),
                    "start_tick": span.start_tick,
                    "end_tick": span.end_tick,
                    "start_ms": span.start_offset * 1000.0,
                    "duration_ms": (span.duration_seconds or 0.0) * 1000.0,
                    "error": span.attrs.get("error"),
                    "attrs": json.dumps(attrs, sort_keys=True, default=repr),
                }
            )
    return rows


def _journal_rows(db) -> list[dict]:
    """Write-ahead journal segments; empty for non-durable databases."""
    journal = getattr(db.cluster, "journal", None)
    if journal is None:
        return []
    return journal.monitor_rows()


# column name -> dc record key, where they differ: the collector
# stores each record's event kind under "kind"; the tables surface it
# under a table-specific name ("statement", "outcome").
_DC_RENAMES = {"statement": "kind", "outcome": "kind"}


def _dc_component_rows(db, component: str, table: str) -> list[dict]:
    """Project one collector component onto its dc_* table columns."""
    collector = getattr(db.cluster, "dc", None)
    if collector is None:
        return []
    columns = _COLUMNS[table]
    rows = []
    for record in collector.rows(component):
        rows.append(
            {
                column: record.get(_DC_RENAMES.get(column, column))
                for column in columns
            }
        )
    return rows


def _dc_requests_rows(db) -> list[dict]:
    return _dc_component_rows(db, "requests", "dc_requests_completed")


def _dc_resource_acquisitions_rows(db) -> list[dict]:
    return _dc_component_rows(
        db, "resource_acquisitions", "dc_resource_acquisitions"
    )


def _dc_lock_waits_rows(db) -> list[dict]:
    return _dc_component_rows(db, "lock_waits", "dc_lock_waits")


def _dc_node_events_rows(db) -> list[dict]:
    return _dc_component_rows(db, "node_events", "dc_node_events")


def _dc_tuple_mover_rows(db) -> list[dict]:
    return _dc_component_rows(db, "tuple_mover", "dc_tuple_mover")


def _dc_errors_rows(db) -> list[dict]:
    return _dc_component_rows(db, "errors", "dc_errors")


def _slow_queries_rows(db) -> list[dict]:
    """Completed requests at or above the configured threshold."""
    health = getattr(db, "health", None)
    if health is None:
        return []
    threshold = health.config.slow_query_ms
    rows = []
    for record in _dc_requests_rows(db):
        duration = record.get("duration_ms") or 0.0
        if duration < threshold:
            continue
        row = {
            column: record.get(column)
            for column in _COLUMNS["slow_queries"]
        }
        row["threshold_ms"] = threshold
        rows.append(row)
    return rows


def _alerts_rows(db) -> list[dict]:
    """Health rules, re-evaluated so a read is always current."""
    health = getattr(db, "health", None)
    if health is None:
        return []
    health.evaluate()
    return health.rows()


_PRODUCERS = {
    "query_profiles": _query_profiles_rows,
    "projection_storage": _projection_storage_rows,
    "tuple_mover_events": _tuple_mover_events_rows,
    "locks": _locks_rows,
    "node_states": _node_states_rows,
    "failover_events": _failover_events_rows,
    "sessions": _sessions_rows,
    "resource_pools": _resource_pools_rows,
    "metrics": _metrics_rows,
    "query_traces": _query_traces_rows,
    "trace_spans": _trace_spans_rows,
    "journal": _journal_rows,
    "dc_requests_completed": _dc_requests_rows,
    "dc_resource_acquisitions": _dc_resource_acquisitions_rows,
    "dc_lock_waits": _dc_lock_waits_rows,
    "dc_node_events": _dc_node_events_rows,
    "dc_tuple_mover": _dc_tuple_mover_rows,
    "dc_errors": _dc_errors_rows,
    "slow_queries": _slow_queries_rows,
    "alerts": _alerts_rows,
}


def table_rows(db, qualified: str) -> tuple[list[str], list[dict]]:
    """Materialize one virtual table: ``(column_names, row_dicts)``."""
    short = _short_name(qualified)
    return list(_COLUMNS[short]), _PRODUCERS[short](db)


def _sort_key(value):
    # None sorts first; the 1-tuple loses to every (0, value) on the
    # first element, so mixed None/value columns stay comparable.
    return (1,) if value is None else (0, value)


def execute_monitor_select(session, statement) -> list[dict]:
    """Evaluate a SELECT whose FROM list is entirely ``v_monitor``.

    Supports select lists of columns/scalar expressions (plus ``*``),
    WHERE, DISTINCT, ORDER BY and LIMIT/OFFSET.  Raises
    :class:`SqlAnalysisError` for joins, grouping, aggregates or
    multi-table FROM lists — virtual tables are for inspection, not
    analytics.
    """
    from ..sql import ast
    from ..sql.analyzer import Analyzer, monitor_scope

    if len(statement.from_tables) != 1 or statement.joins:
        raise SqlAnalysisError("v_monitor tables cannot be joined")
    if statement.group_by or statement.having:
        raise SqlAnalysisError("v_monitor tables do not support GROUP BY")
    ref = statement.from_tables[0]
    columns, rows = table_rows(session.db, ref.table)
    scope = monitor_scope(ref, columns)
    analyzer = Analyzer(session.db.cluster.catalog)

    if statement.where is not None:
        predicate = analyzer.convert(statement.where, scope)
        rows = [row for row in rows if predicate.evaluate_row(row) is True]

    for expr, ascending in reversed(statement.order_by):
        key = analyzer.convert(expr, scope)
        rows = sorted(
            rows,
            key=lambda row: _sort_key(key.evaluate_row(row)),
            reverse=not ascending,
        )

    out_names: list[str] = []
    out_exprs: list = []
    for index, item in enumerate(statement.items):
        if isinstance(item.expr, ast.Star):
            for column in columns:
                out_names.append(column)
                out_exprs.append(None)
            continue
        if item.alias:
            name = item.alias
        elif isinstance(item.expr, ast.Identifier):
            name = item.expr.name
        else:
            name = f"col{index + 1}"
        out_names.append(name)
        out_exprs.append(analyzer.convert(item.expr, scope))

    projected = []
    for row in rows:
        out: dict = {}
        for name, compiled in zip(out_names, out_exprs):
            out[name] = row[name] if compiled is None else compiled.evaluate_row(row)
        projected.append(out)

    if statement.distinct:
        seen = set()
        unique = []
        for row in projected:
            fingerprint = tuple(repr(row[name]) for name in out_names)
            if fingerprint not in seen:
                seen.add(fingerprint)
                unique.append(row)
        projected = unique

    if statement.offset:
        projected = projected[statement.offset :]
    if statement.limit is not None:
        projected = projected[: statement.limit]
    return projected
