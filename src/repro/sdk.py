"""User-defined extension SDK (section 6).

    Rather than continuing to add more proprietary extensions, Vertica
    has chosen to add an SDK with hooks for users to extend various
    parts of the execution engine.

Two hook points are exposed:

* **scalar functions** — ``register_scalar_function(name, fn)`` makes
  ``fn`` usable from expression trees (:class:`FunctionCall`) and from
  SQL (``SELECT myfunc(x) ...``).  NULL handling is automatic (NULL in
  -> NULL out), matching built-in scalar functions.
* **aggregate functions** — ``register_aggregate(name, factory)``
  plugs a user accumulator class into GROUP BY.  The factory returns
  objects with ``add(value)`` / ``final()``; ``merge`` support is
  optional (without it the aggregate is excluded from prepass/two-phase
  plans, like AVG).

Registrations are process-global, mirroring how a loaded UDx library
becomes visible to every session.
"""

from __future__ import annotations

from typing import Callable

from .errors import SqlAnalysisError
from .execution import aggregates as _aggregates
from .execution import expressions as _expressions


def register_scalar_function(name: str, fn: Callable) -> None:
    """Register a one-argument scalar function under ``name``.

    The function receives non-NULL values only; NULL rows pass through
    as NULL.  Overwrites any same-named registration.
    """
    key = name.upper()
    if not key.isidentifier():
        raise SqlAnalysisError(f"invalid function name {name!r}")
    _expressions._SCALAR_FUNCTIONS[key] = fn


def unregister_scalar_function(name: str) -> None:
    """Remove a user scalar function (built-ins cannot be removed)."""
    key = name.upper()
    if key in _BUILTIN_SCALARS:
        raise SqlAnalysisError(f"cannot unregister built-in {name!r}")
    _expressions._SCALAR_FUNCTIONS.pop(key, None)


_BUILTIN_SCALARS = frozenset(_expressions._SCALAR_FUNCTIONS)


class UserAggregate:
    """Base class (optional) for user-defined aggregates."""

    def add(self, value: object) -> None:  # pragma: no cover - interface
        """Fold one non-NULL input value into the accumulator."""
        raise NotImplementedError

    def final(self) -> object:  # pragma: no cover - interface
        """Return the aggregate result for the accumulated values."""
        raise NotImplementedError


#: name -> accumulator factory for user aggregates.
_USER_AGGREGATES: dict[str, Callable[[], object]] = {}  # concurrency: immutable


def register_aggregate(name: str, factory: Callable[[], object]) -> None:
    """Register a user aggregate; usable via AggregateSpec(name, ...)."""
    key = name.upper()
    if key in _aggregates.SUPPORTED:
        raise SqlAnalysisError(f"{name!r} is a built-in aggregate")
    _USER_AGGREGATES[key] = factory


def unregister_aggregate(name: str) -> None:
    """Remove a user aggregate registration."""
    _USER_AGGREGATES.pop(name.upper(), None)


def user_aggregate_factory(name: str) -> Callable[[], object] | None:
    """Factory for a registered user aggregate, or None."""
    return _USER_AGGREGATES.get(name.upper())
