"""Deterministic, seedable fault injection (the adversary the paper's
availability machinery is tested against).

Storage, tuple mover and membership code declare named fault points
and call :func:`inject` at them; tests arm a :class:`FaultPlan` with
torn writes, bit flips, crashes and dropped/delayed commit deliveries.
See :mod:`repro.faults.plan` for the action catalog and semantics.
"""

from .plan import (
    REGISTRY,
    FaultPlan,
    FaultPoint,
    FiredFault,
    active,
    inject,
    install,
    register_point,
    uninstall,
)

__all__ = [
    "REGISTRY",
    "FaultPlan",
    "FaultPoint",
    "FiredFault",
    "active",
    "inject",
    "install",
    "register_point",
    "uninstall",
]
