"""Deterministic fault-injection plans.

The availability story of sections 4.3 and 5 — immutable ROS
containers, commit-or-eject agreement, buddy failover, recovery from
the Last Good Epoch — is only credible if the system survives faults
*injected at the worst possible instant*.  This module provides the
instants: production code declares named :class:`FaultPoint` s and
calls :func:`inject` at them; tests arm a seedable :class:`FaultPlan`
that decides, deterministically, what goes wrong there.

Supported actions:

* ``"crash"`` — raise :class:`InjectedFaultError`, simulating process
  death at the point;
* ``"torn"`` — truncate one of the point's files at a (seeded) random
  byte, then crash: the classic torn write a power cut leaves behind;
* ``"bitflip"`` — flip one (seeded) random bit in one of the point's
  files and *continue silently*: latent media corruption that only a
  checksum can catch;
* ``"drop"`` / ``"delay"`` — returned as a verdict string from
  delivery points; the membership layer turns either into an ejection
  (section 5: commit-or-eject, never a 2PC retry).

Every firing is recorded on ``plan.fired`` so tests can assert exactly
which fault they exercised.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field

from ..errors import FaultPlanError, InjectedFaultError


@dataclass(frozen=True)
class FaultPoint:
    """One named place in the code where faults can be injected."""

    name: str
    #: "storage-tmp" (pre-publish files), "storage-published"
    #: (post-publish files), "control" (crash only) or "delivery".
    kind: str
    description: str

    def allowed_actions(self) -> frozenset[str]:
        """Actions a plan may arm at this point."""
        return _ACTIONS_BY_KIND[self.kind]


_ACTIONS_BY_KIND = {
    "storage-tmp": frozenset({"crash", "torn"}),
    "storage-published": frozenset({"crash", "torn", "bitflip"}),
    "control": frozenset({"crash"}),
    "delivery": frozenset({"drop", "delay"}),
}

#: Global catalog of registered fault points, by name.
REGISTRY: dict[str, FaultPoint] = {}  # concurrency: immutable


def register_point(name: str, kind: str, description: str) -> FaultPoint:
    """Add a fault point to the catalog (idempotent per name)."""
    if kind not in _ACTIONS_BY_KIND:
        raise FaultPlanError(f"unknown fault point kind {kind!r}")
    point = FaultPoint(name, kind, description)
    REGISTRY[name] = point
    return point


# -- the fault-point catalog -------------------------------------------
#
# Declared here rather than at each call site so tests (and the chaos
# suite) can enumerate every registered point from one place.

register_point(
    "ros.write.column", "storage-tmp",
    "after one column's .dat/.pidx files are written into the "
    "container's .tmp staging directory",
)
register_point(
    "ros.write.meta", "storage-tmp",
    "after all column files, before meta.json is written (a container "
    "staged without its commit record)",
)
register_point(
    "ros.publish", "storage-tmp",
    "after meta.json, before the atomic rename that publishes the "
    "container",
)
register_point(
    "ros.published", "storage-published",
    "after the publishing rename, before the writer returns (crash "
    "here leaves a committed-on-disk container unknown to the caller; "
    "bitflip here models latent media corruption)",
)
register_point(
    "dv.publish", "storage-tmp",
    "after a delete vector's files are staged, before its publishing "
    "rename",
)
register_point(
    "mover.moveout.container", "control",
    "after the tuple mover publishes one moveout container, before it "
    "proceeds to the next (WOS already drained in memory)",
)
register_point(
    "mover.mergeout.retire", "control",
    "between publishing a merged container and retiring its inputs "
    "(crash here leaves duplicate row coverage on disk)",
)
register_point(
    "membership.delivery", "delivery",
    "per-node commit-message delivery; drop or delay verdicts both "
    "eject the node (section 5: no 2PC retry)",
)
register_point(
    "membership.heartbeat", "delivery",
    "per-node heartbeat delivery at each failure-detector tick; drop "
    "and delay verdicts both count as a missed tick, and a node "
    "missing heartbeat_timeout consecutive ticks is ejected "
    "(section 5.3's deterministic failure detector)",
)
register_point(
    "executor.scan", "control",
    "per-batch during a distributed scan, scoped to the hosting node; "
    "a crash here simulates the node dying mid-query and drives the "
    "executor's buddy-failover retry (section 5.2)",
)
register_point(
    "executor.exchange", "control",
    "while a Send operator drains its fragment into the interconnect, "
    "scoped to the node hosting the fragment's scan; a crash here "
    "simulates a node dying mid-exchange",
)
register_point(
    "journal.append.stage", "storage-tmp",
    "after a journal segment's new contents are staged to its .tmp "
    "sibling, before the publishing rename (the appended record is "
    "lost; the published segment is untouched)",
)
register_point(
    "journal.append.publish", "storage-published",
    "after the rename that publishes a journal segment append (the "
    "record is durable but unacknowledged; torn here models a torn "
    "tail, bitflip models latent media corruption of the segment)",
)
register_point(
    "journal.checkpoint.stage", "storage-tmp",
    "after a checkpoint's contents are staged, before its publishing "
    "rename (cold start falls back to the previous checkpoint)",
)
register_point(
    "journal.checkpoint.publish", "storage-published",
    "after the rename that publishes a checkpoint, before old segments "
    "are pruned (a stale-checkpoint crash: replay must be idempotent "
    "over records the checkpoint already covers)",
)
register_point(
    "journal.commit.apply", "control",
    "after a commit record is durable in the journal, before the "
    "in-memory apply begins (crash here leaves a committed-on-disk "
    "epoch the restarted process must replay)",
)
register_point(
    "mover.wos.drain", "control",
    "after moveout drains the WOS in memory, before the first ROS "
    "container is staged (crash here loses the drained rows unless "
    "the journal can replay their commits)",
)
register_point(
    "dc.flush.stage", "storage-tmp",
    "after a Data Collector segment's contents are staged to its .tmp "
    "sibling, before the publishing rename (the flushed records are "
    "reported but not yet durable; recovery keeps the prior segment)",
)
register_point(
    "dc.flush.publish", "storage-published",
    "after the rename that publishes a Data Collector segment flush "
    "(records durable; a torn write here must truncate recovery to "
    "the segment's valid prefix)",
)


@dataclass
class FiredFault:
    """Record of one fault the plan actually injected."""

    point: str
    action: str
    detail: str = ""


@dataclass
class _ArmedFault:
    """One armed (point, action) with trigger bookkeeping."""

    point: str
    action: str
    #: Matching firings to let pass before triggering.
    skip: int = 0
    #: How many times to trigger before disarming.
    count: int = 1
    #: Restrict a delivery fault to one node index.
    node: int | None = None
    #: Torn writes: explicit truncation offset (None = seeded random).
    at_byte: int | None = None


class FaultPlan:
    """A seeded schedule of faults, armed point by point.

    Use as a context manager to install it as the process-wide active
    plan::

        plan = FaultPlan(seed=7).arm("ros.publish", "crash")
        with plan:
            ...  # the next container publish dies mid-commit
        assert plan.fired
    """

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self.fired: list[FiredFault] = []
        self._armed: list[_ArmedFault] = []

    def arm(
        self,
        point: str,
        action: str,
        *,
        skip: int = 0,
        count: int = 1,
        node: int | None = None,
        at_byte: int | None = None,
    ) -> "FaultPlan":
        """Schedule ``action`` at ``point``; returns self for chaining."""
        registered = REGISTRY.get(point)
        if registered is None:
            known = ", ".join(sorted(REGISTRY))
            raise FaultPlanError(
                f"unknown fault point {point!r} (known: {known})"
            )
        if action not in registered.allowed_actions():
            raise FaultPlanError(
                f"action {action!r} not supported at {point!r} "
                f"(allowed: {', '.join(sorted(registered.allowed_actions()))})"
            )
        self._armed.append(
            _ArmedFault(point, action, skip=skip, count=count,
                        node=node, at_byte=at_byte)
        )
        return self

    # -- installation --------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        install(self)
        return self

    def __exit__(self, *exc_info) -> None:
        uninstall(self)

    # -- firing --------------------------------------------------------

    def _spec_for(self, point: str, node: int | None) -> _ArmedFault | None:
        for spec in self._armed:
            if spec.point != point or spec.count <= 0:
                continue
            if spec.node is not None and spec.node != node:
                continue
            if spec.skip > 0:
                spec.skip -= 1
                return None
            spec.count -= 1
            return spec
        return None

    def fire(
        self,
        point: str,
        files: list[str] | None = None,
        node: int | None = None,
    ) -> str | None:
        """Evaluate one :func:`inject` call against the plan."""
        spec = self._spec_for(point, node)
        if spec is None:
            return None
        if spec.action == "crash":
            self.fired.append(FiredFault(point, "crash"))
            raise InjectedFaultError(f"injected crash at {point}")
        if spec.action == "torn":
            detail = self._tear_file(files, spec.at_byte)
            self.fired.append(FiredFault(point, "torn", detail))
            raise InjectedFaultError(
                f"injected torn write + crash at {point} ({detail})"
            )
        if spec.action == "bitflip":
            detail = self._flip_bit(files)
            self.fired.append(FiredFault(point, "bitflip", detail))
            return None
        # delivery verdicts: returned to the caller, never raised.
        self.fired.append(FiredFault(point, spec.action, f"node={node}"))
        return spec.action

    def _choose_file(self, files: list[str] | None) -> str | None:
        candidates = [f for f in (files or []) if os.path.isfile(f)]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _tear_file(self, files: list[str] | None, at_byte: int | None) -> str:
        target = self._choose_file(files)
        if target is None:
            return "no file to tear"
        size = os.path.getsize(target)
        offset = at_byte if at_byte is not None else (
            self.rng.randrange(size) if size else 0
        )
        offset = max(0, min(offset, size))
        os.truncate(target, offset)
        return f"{os.path.basename(target)} truncated at byte {offset}/{size}"

    def _flip_bit(self, files: list[str] | None) -> str:
        target = self._choose_file(files)
        if target is None:
            return "no file to corrupt"
        size = os.path.getsize(target)
        if size == 0:
            return f"{os.path.basename(target)} empty; nothing flipped"
        byte_index = self.rng.randrange(size)
        bit = self.rng.randrange(8)
        with open(target, "r+b") as handle:
            handle.seek(byte_index)
            original = handle.read(1)[0]
            handle.seek(byte_index)
            handle.write(bytes([original ^ (1 << bit)]))
        return (
            f"{os.path.basename(target)} bit {bit} of byte {byte_index} flipped"
        )


#: Serializes plan installation across threads.
_PLAN_LOCK = threading.Lock()

#: The process-wide active plan (None = fault-free operation).
_ACTIVE: FaultPlan | None = None  # concurrency: guarded-by(_PLAN_LOCK)


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the active plan consulted by :func:`inject`."""
    global _ACTIVE
    with _PLAN_LOCK:
        _ACTIVE = plan


def uninstall(plan: FaultPlan | None = None) -> None:
    """Deactivate the active plan (or ``plan``, if it is the active one)."""
    global _ACTIVE
    with _PLAN_LOCK:
        if plan is None or _ACTIVE is plan:
            _ACTIVE = None


def active() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE


def inject(
    point: str,
    files: list[str] | None = None,
    node: int | None = None,
) -> str | None:
    """Production-code hook: evaluate fault point ``point``.

    A no-op (returns None) unless a plan is installed and has a
    matching armed fault.  ``files`` names the on-disk files a storage
    fault may tear or corrupt; ``node`` scopes delivery faults.
    Crash-style actions raise :class:`InjectedFaultError`; delivery
    verdicts ("drop"/"delay") are returned.
    """
    if _ACTIVE is None:
        return None
    return _ACTIVE.fire(point, files=files, node=node)
