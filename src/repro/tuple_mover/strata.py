"""Stratum quantization for mergeout planning.

    The tuple mover periodically quantizes the ROS containers into
    several exponential sized strata based on file size.  The output
    ROS container from a mergeout operation are planned such that the
    resulting ROS container is in at least one strata larger than any
    of the input ROS containers.  (section 4)

Exponential strata bound the number of times a tuple is re-merged to
O(log(total size)): a tuple's container can only move to a strictly
larger stratum, and there are only ``log_multiplier(max/base)`` strata
below the maximum container size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MergePolicy:
    """Tuning knobs for the mergeout planner.

    Defaults are scaled for test workloads; the production-equivalent
    values from the paper (2 TB cap) are absurd for a simulation but
    the *ratios* are what matter for behaviour.
    """

    #: Smallest stratum covers sizes in [0, base_size) bytes.
    base_size: int = 16 * 1024
    #: Each stratum covers ``multiplier``x the sizes of the one below.
    multiplier: int = 4
    #: Merge a stratum once it holds at least this many containers.
    #: Keeping this equal to ``multiplier`` guarantees merge output
    #: lands in a strictly higher stratum, which is what bounds
    #: per-tuple rewrites logarithmically.
    min_inputs: int = 4
    #: Never merge more than this many containers at once.
    max_inputs: int = 16
    #: Never produce a container above this size (the paper's 2 TB cap,
    #: scaled down).
    max_container_bytes: int = 1 << 40

    def stratum_of(self, size_bytes: int) -> int:
        """Stratum index for a container of ``size_bytes``."""
        if size_bytes < self.base_size:
            return 0
        return 1 + int(
            math.log(size_bytes / self.base_size, self.multiplier)
        )

    def stratum_count(self) -> int:
        """Number of strata below the maximum container size — the
        bound on how many times any tuple can be remerged."""
        return self.stratum_of(self.max_container_bytes) + 1


def plan_merges(
    containers: list[tuple[int, int]], policy: MergePolicy
) -> list[list[int]]:
    """Choose sets of containers to merge.

    ``containers`` is a list of ``(container_id, size_bytes)`` pairs,
    all belonging to the same (partition key, local segment) group —
    the tuple mover "takes care to preserve partition and local segment
    boundaries when choosing merge candidates" (section 4), so callers
    group before planning.

    Returns a list of merge input groups (lists of container ids).
    Strategy: within each stratum holding at least ``min_inputs``
    containers, merge the smallest ``max_inputs`` of them, provided the
    combined size respects ``max_container_bytes``.
    """
    by_stratum: dict[int, list[tuple[int, int]]] = {}
    for container_id, size in containers:
        by_stratum.setdefault(policy.stratum_of(size), []).append(
            (size, container_id)
        )
    merges = []
    for stratum in sorted(by_stratum):
        members = sorted(by_stratum[stratum])
        while len(members) >= policy.min_inputs:
            group: list[int] = []
            total = 0
            while (
                members
                and len(group) < policy.max_inputs
                and total + members[0][0] <= policy.max_container_bytes
            ):
                size, container_id = members.pop(0)
                group.append(container_id)
                total += size
            if len(group) >= policy.min_inputs:
                merges.append(group)
            else:
                break
    return merges
