"""The tuple mover: moveout and mergeout (section 4).

The tuple mover is the background machinery that keeps the physical
storage healthy: *moveout* drains the in-memory WOS into sorted ROS
containers, *mergeout* folds many small containers into fewer larger
ones (stratified so a tuple is merged O(log n) times) and purges rows
deleted before the Ancient History Mark.

Two properties from the paper are enforced and tested here:

* moveout and mergeout never intermix WOS and ROS data in one
  operation — "when a tuple is part of a mergeout operation, it is
  read from disk once and written to disk once";
* merges never cross partition or local-segment boundaries.

Operations are node-local by design ("not centrally coordinated across
the cluster"); each node's tuple mover runs independently, which is why
two nodes holding the same tuples routinely have different container
layouts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter

from .. import faults
from ..lint import sanitizer
from ..monitor import EVENTS, METRICS
from ..storage.delete_vector import DeleteVector
from ..storage.manager import StorageManager
from ..trace import TRACER
from .strata import MergePolicy, plan_merges


@dataclass
class TupleMoverStats:
    """Counters for observing tuple mover work (ablation benches)."""

    moveouts: int = 0
    rows_moved_out: int = 0
    mergeouts: int = 0
    rows_read: int = 0
    rows_written: int = 0
    rows_purged: int = 0
    containers_created: int = 0
    containers_retired: int = 0


@dataclass
class MergeResult:
    """Outcome of one mergeout pass over one projection."""

    merged_groups: int = 0
    new_containers: list[int] = field(default_factory=list)
    purged_rows: int = 0


class TupleMover:
    """Moveout/mergeout engine bound to one node's storage manager."""

    def __init__(self, manager: StorageManager, policy: MergePolicy | None = None):
        self.manager = manager
        self.policy = policy or MergePolicy()
        self.stats = TupleMoverStats()
        #: Optional Data Collector (duck-typed; the cluster points this
        #: at its collector).  Completed moveouts/mergeouts land in
        #: ``dc_tuple_mover`` alongside the process-wide EVENTS log.
        self.collector = None

    def _dc_record(
        self, kind: str, projection_name: str, containers_in: int,
        containers_out: int, rows_in: int, rows_out: int,
        rows_purged: int, stratum: int, duration: float,
    ) -> None:
        if self.collector is None:
            return
        self.collector.record(
            "tuple_mover",
            kind,
            node_index=self.manager.node_index,
            projection_name=projection_name,
            containers_in=containers_in,
            containers_out=containers_out,
            rows_in=rows_in,
            rows_out=rows_out,
            rows_purged=rows_purged,
            stratum=stratum,
            duration_ms=duration * 1000.0,
        )

    # -- moveout -----------------------------------------------------------

    def moveout(self, projection_name: str) -> list[int]:
        """Drain the projection's WOS into new ROS containers.

        Deleted-but-unpurged WOS rows move too; their delete markers are
        translated from WOS positions into positions in the new
        containers and persisted as DVROS.  Returns new container ids.
        """
        with TRACER.span(
            "tuple_mover.moveout",
            category="tuple_mover",
            node_index=self.manager.node_index,
            projection=projection_name,
        ) as span:
            created = self._moveout(projection_name)
            if span is not None:
                span.attrs["containers_created"] = len(created)
            return created

    def _moveout(self, projection_name: str) -> list[int]:
        started = perf_counter()
        state = self.manager.storage(projection_name)
        rows, epochs = state.wos.drain()
        wos_deletes = dict(state.wos_deletes)
        state.wos_deletes.clear()
        if not rows:
            return []
        faults.inject("mover.wos.drain", node=self.manager.node_index)
        groups: dict[tuple, list[int]] = {}
        for index, row in enumerate(rows):
            key = (
                state.table.partition_key(row),
                self.manager._local_segment_of(state, row),
            )
            groups.setdefault(key, []).append(index)
        created = []
        for (partition_key, local_segment), indexes in sorted(
            groups.items(), key=lambda item: repr(item[0])
        ):
            ordered = sorted(
                indexes, key=lambda i: state.projection.sort_key_for(rows[i])
            )
            container_id = self.manager.add_container_from_rows(
                projection_name,
                [rows[i] for i in ordered],
                [epochs[i] for i in ordered],
                partition_key=partition_key,
                local_segment=local_segment,
            )
            created.append(container_id)
            # a crash here loses the rest of the drained WOS — exactly
            # the window the LGE protects: it only advances after the
            # whole moveout, so recovery replays from the buddy.
            faults.inject("mover.moveout.container")
            vector = DeleteVector(container_id)
            for new_position, original_index in enumerate(ordered):
                delete_epoch = wos_deletes.get(original_index)
                if delete_epoch is not None:
                    vector.add(new_position, delete_epoch)
            if vector.count:
                state.pending_ros_deletes[container_id] = vector
        if any(
            state.pending_ros_deletes.get(container_id) for container_id in created
        ):
            self.manager.persist_delete_vectors(projection_name)
        sanitizer.check_moveout_conservation(
            projection_name,
            len(rows),
            sum(state.containers[cid].row_count for cid in created),
        )
        self.stats.moveouts += 1
        self.stats.rows_moved_out += len(rows)
        self.stats.containers_created += len(created)
        duration = perf_counter() - started
        rows_out = sum(state.containers[cid].row_count for cid in created)
        METRICS.inc("tuple_mover.moveouts")
        METRICS.inc("tuple_mover.rows_moved_out", len(rows))
        METRICS.observe("tuple_mover.moveout_seconds", duration)
        EVENTS.record(
            kind="moveout",
            node_index=self.manager.node_index,
            projection=projection_name,
            containers_in=0,
            containers_out=len(created),
            rows_in=len(rows),
            rows_out=rows_out,
            rows_purged=0,
            stratum=-1,
            duration_seconds=duration,
        )
        self._dc_record(
            "moveout", projection_name, 0, len(created), len(rows),
            rows_out, 0, -1, duration,
        )
        return created

    # -- mergeout ----------------------------------------------------------

    def mergeout(self, projection_name: str, ahm: int = 0) -> MergeResult:
        """One mergeout pass: merge per-stratum groups, purge pre-AHM
        deletes.  ``ahm`` is the Ancient History Mark — rows deleted at
        or before it are elided from merge output (section 5.1)."""
        state = self.manager.storage(projection_name)
        result = MergeResult()
        groups: dict[tuple, list[tuple[int, int]]] = {}
        for container_id, container in state.containers.items():
            key = (
                repr(container.meta.partition_key),
                container.meta.local_segment,
            )
            groups.setdefault(key, []).append((container_id, container.size_bytes()))
        for key in sorted(groups):
            for merge_ids in plan_merges(groups[key], self.policy):
                new_id = self._merge_containers(
                    state, projection_name, merge_ids, ahm, result
                )
                result.merged_groups += 1
                result.new_containers.append(new_id)
        return result

    def _merge_containers(
        self, state, projection_name: str, merge_ids: list[int], ahm: int, result
    ) -> int:
        """K-way merge the input containers into one new container."""
        with TRACER.span(
            "tuple_mover.mergeout",
            category="tuple_mover",
            node_index=self.manager.node_index,
            projection=projection_name,
            containers_in=len(merge_ids),
        ):
            return self._merge(state, projection_name, merge_ids, ahm, result)

    def _merge(
        self, state, projection_name: str, merge_ids: list[int], ahm: int, result
    ) -> int:
        started = perf_counter()
        # stratum of the largest input, before the inputs are retired.
        stratum = max(
            self.policy.stratum_of(state.containers[cid].size_bytes())
            for cid in merge_ids
        )
        projection = state.projection

        def stream(container_id: int):
            container = state.containers[container_id]
            names = container.meta.columns
            columns = container.read_columns(names)
            epochs = container.read_epochs()
            deletes = state.deletes_for(container_id)
            for position in range(container.row_count):
                row = {name: columns[name][position] for name in names}
                yield (
                    projection.sort_key_for(row),
                    row,
                    epochs[position],
                    deletes.get(position),
                )

        template = state.containers[merge_ids[0]]
        partition_key = template.meta.partition_key
        local_segment = template.meta.local_segment
        merged_rows: list[dict] = []
        merged_epochs: list[int] = []
        new_deletes = DeleteVector(None)
        purged = 0
        read = 0
        for _, row, epoch, delete_epoch in heapq.merge(
            *(stream(container_id) for container_id in merge_ids),
            key=lambda item: item[0],
        ):
            read += 1
            if delete_epoch is not None and delete_epoch <= ahm:
                purged += 1
                continue
            if delete_epoch is not None:
                new_deletes.add(len(merged_rows), delete_epoch)
            merged_rows.append(row)
            merged_epochs.append(epoch)
        new_id = self.manager.add_container_from_rows(
            projection_name,
            merged_rows,
            merged_epochs,
            partition_key=partition_key,
            local_segment=local_segment,
            merged_from=merge_ids,
        )
        sanitizer.check_mergeout_conservation(
            projection_name, read, len(merged_rows), purged
        )
        # crash window: the merged container is published but its
        # inputs are not yet retired.  The scavenger detects the
        # duplicate coverage via merged_from and retires them then.
        faults.inject("mover.mergeout.retire")
        self.manager.remove_containers(projection_name, merge_ids)
        if new_deletes.count:
            new_deletes.target_container = new_id
            state.pending_ros_deletes[new_id] = new_deletes
            self.manager.persist_delete_vectors(projection_name)
        self.stats.mergeouts += 1
        self.stats.rows_read += read
        self.stats.rows_written += len(merged_rows)
        self.stats.rows_purged += purged
        self.stats.containers_created += 1
        self.stats.containers_retired += len(merge_ids)
        result.purged_rows += purged
        duration = perf_counter() - started
        METRICS.inc("tuple_mover.mergeouts")
        METRICS.inc("tuple_mover.rows_purged", purged)
        METRICS.observe("tuple_mover.mergeout_seconds", duration)
        EVENTS.record(
            kind="mergeout",
            node_index=self.manager.node_index,
            projection=projection_name,
            containers_in=len(merge_ids),
            containers_out=1,
            rows_in=read,
            rows_out=len(merged_rows),
            rows_purged=purged,
            stratum=stratum,
            duration_seconds=duration,
        )
        self._dc_record(
            "mergeout", projection_name, len(merge_ids), 1, read,
            len(merged_rows), purged, stratum, duration,
        )
        return new_id

    # -- convenience --------------------------------------------------------

    def run_once(self, ahm: int = 0) -> None:
        """One full maintenance cycle over every projection on the node:
        moveout everything, then mergeout until no plan remains."""
        for name in self.manager.projection_names():
            self.moveout(name)
            while True:
                outcome = self.mergeout(name, ahm)
                if not outcome.merged_groups:
                    break
