"""Tuple mover: moveout, mergeout and strata planning (section 4)."""

from .mover import MergeResult, TupleMover, TupleMoverStats
from .strata import MergePolicy, plan_merges

__all__ = [
    "MergeResult",
    "TupleMover",
    "TupleMoverStats",
    "MergePolicy",
    "plan_merges",
]
