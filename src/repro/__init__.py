"""repro — a Python reproduction of the Vertica Analytic Database.

Implements the system described in Lamb et al., *The Vertica Analytic
Database: C-Store 7 Years Later* (PVLDB 5(12), 2012): columnar storage
with the paper's six encodings, projections with ring segmentation and
buddies, ROS/WOS with a stratified tuple mover, epoch-based MVCC with
the paper's seven-mode lock model, a simulated K-safe cluster with
incremental recovery, a vectorized pull-model execution engine, three
optimizer generations, a Database Designer, and a SQL front end —
plus a C-Store-2005-style baseline engine for the paper's Table 3
comparison.

Quickstart::

    from repro import Database, ColumnDef, TableDefinition, types

    db = Database("/tmp/mydb", node_count=3, k_safety=1)
    db.create_table(TableDefinition("t", [ColumnDef("x", types.INTEGER)]))
    db.load("t", [{"x": i} for i in range(1000)])
    print(db.sql("SELECT count(*) AS n FROM t"))
"""

from . import types
from .core import Catalog, ColumnDef, Database, Session, TableDefinition
from .errors import ReproError
from .txn import IsolationLevel

__version__ = "1.0.0"

__all__ = [
    "types",
    "Catalog",
    "ColumnDef",
    "Database",
    "Session",
    "TableDefinition",
    "ReproError",
    "IsolationLevel",
    "__version__",
]
