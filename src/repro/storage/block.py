"""Data blocks: the unit of encoding, metadata and pruning.

A column file is a sequence of blocks of up to :data:`BLOCK_ROWS`
values.  Each block carries a :class:`BlockInfo` record in the
column's *position index* (section 3.7): start position, row count,
minimum and maximum value — the metadata the execution engine uses to
skip blocks (and the planner uses to skip whole ROS containers [22]).

NULLs are handled here, not in the encodings: a block with NULLs
stores a presence bitmap before the encoded payload and the encoding
only sees the non-NULL values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import DataType
from .encodings import ENCODINGS, Encoding, choose_encoding
from .serde import (
    read_uvarint,
    read_value,
    write_uvarint,
    write_value,
)

#: Default number of rows per block.
BLOCK_ROWS = 8192


@dataclass
class BlockInfo:
    """Position-index entry for one block of one column."""

    #: Ordinal position (within the container) of the block's first row.
    start_position: int
    #: Number of rows in the block (including NULLs).
    row_count: int
    #: Number of NULL rows; a presence bitmap is stored iff > 0.
    null_count: int
    #: Name of the concrete encoding used for the payload.
    encoding: str
    #: Byte offset of the block within the column data file.
    offset: int
    #: Byte length of the block within the column data file.
    length: int
    #: Minimum non-NULL value in the block (None if all NULL).
    min_value: object
    #: Maximum non-NULL value in the block (None if all NULL).
    max_value: object

    @property
    def end_position(self) -> int:
        """One past the ordinal position of the block's last row."""
        return self.start_position + self.row_count

    def may_contain(self, low, high) -> bool:
        """Whether the block can hold values in the closed range [low, high].

        ``None`` bounds are open.  Blocks that are all-NULL never match
        a value range.  This is the pruning primitive for both block
        skipping and ROS container elimination.
        """
        if self.min_value is None and self.max_value is None:
            return False
        if low is not None and self.max_value is not None and self.max_value < low:
            return False
        if high is not None and self.min_value is not None and self.min_value > high:
            return False
        return True

    def serialize(self, out: bytearray) -> None:
        """Append this entry to a position-index byte stream."""
        write_uvarint(out, self.start_position)
        write_uvarint(out, self.row_count)
        write_uvarint(out, self.null_count)
        encoded_name = self.encoding.encode("ascii")
        write_uvarint(out, len(encoded_name))
        out += encoded_name
        write_uvarint(out, self.offset)
        write_uvarint(out, self.length)
        write_value(out, self.min_value)
        write_value(out, self.max_value)

    @classmethod
    def deserialize(cls, data: bytes, offset: int) -> tuple["BlockInfo", int]:
        """Read one entry from a position-index byte stream."""
        start, offset = read_uvarint(data, offset)
        rows, offset = read_uvarint(data, offset)
        nulls, offset = read_uvarint(data, offset)
        name_len, offset = read_uvarint(data, offset)
        name = data[offset : offset + name_len].decode("ascii")
        offset += name_len
        byte_offset, offset = read_uvarint(data, offset)
        length, offset = read_uvarint(data, offset)
        min_value, offset = read_value(data, offset)
        max_value, offset = read_value(data, offset)
        info = cls(start, rows, nulls, name, byte_offset, length, min_value, max_value)
        return info, offset


def _presence_bitmap(values: list) -> bytes:
    """Bitmap with bit i set when values[i] is non-NULL."""
    bitmap = bytearray((len(values) + 7) // 8)
    for index, value in enumerate(values):
        if value is not None:
            bitmap[index >> 3] |= 1 << (index & 7)
    return bytes(bitmap)


def _apply_bitmap(bitmap: bytes, non_nulls: list, count: int) -> list:
    """Rebuild a value list of length ``count`` from bitmap + non-NULLs."""
    values = [None] * count
    cursor = iter(non_nulls)
    for index in range(count):
        if bitmap[index >> 3] & (1 << (index & 7)):
            values[index] = next(cursor)
    return values


def encode_block(
    values: list,
    dtype: DataType,
    encoding: Encoding | None,
    start_position: int,
    file_offset: int,
) -> tuple[bytes, BlockInfo]:
    """Encode one block; return ``(payload_bytes, BlockInfo)``.

    ``encoding=None`` means AUTO: pick empirically per block.  A block
    containing NULLs prepends a presence bitmap to the payload.
    """
    non_nulls = [value for value in values if value is not None]
    null_count = len(values) - len(non_nulls)
    if encoding is None:
        encoding = choose_encoding(dtype, non_nulls)
    payload = encoding.encode(non_nulls)
    if null_count:
        payload = _presence_bitmap(values) + payload
    if non_nulls:
        min_value = min(non_nulls)
        max_value = max(non_nulls)
    else:
        min_value = max_value = None
    info = BlockInfo(
        start_position=start_position,
        row_count=len(values),
        null_count=null_count,
        encoding=encoding.name,
        offset=file_offset,
        length=len(payload),
        min_value=min_value,
        max_value=max_value,
    )
    return payload, info


def decode_block(payload: bytes, info: BlockInfo) -> list:
    """Decode a block payload back into its value list (NULLs included)."""
    encoding = ENCODINGS[info.encoding]
    if info.null_count:
        bitmap_len = (info.row_count + 7) // 8
        bitmap = payload[:bitmap_len]
        non_nulls = encoding.decode(
            payload[bitmap_len:], info.row_count - info.null_count
        )
        return _apply_bitmap(bitmap, non_nulls, info.row_count)
    return encoding.decode(payload, info.row_count)
