"""Column files: one data file + one position index per column.

    Vertica stores two files per column within a ROS container: one
    with the actual column data, and one with a position index. [...]
    Data is identified within each ROS container by a position which is
    simply its ordinal position within the file.  Positions are
    implicit and are never stored explicitly.  (section 3.7)

:class:`ColumnWriter` produces the two byte streams; :class:`ColumnReader`
serves decoded values by position, whole-column reads, and block
iteration with min/max pruning.  The reader is also where "fast tuple
reconstruction" happens: fetching the value at position *p* touches a
single block located through the index, never a full-file scan.
"""

from __future__ import annotations

from ..errors import CorruptContainerError, StorageError
from ..monitor import METRICS
from ..types import DataType
from .block import BLOCK_ROWS, BlockInfo, decode_block, encode_block
from .encodings import Encoding, encoding_by_name


class ColumnWriter:
    """Accumulates values and serializes them into (data, index) bytes."""

    def __init__(
        self,
        dtype: DataType,
        encoding: str | None = "AUTO",
        block_rows: int = BLOCK_ROWS,
    ):
        self.dtype = dtype
        self.block_rows = block_rows
        if encoding is None or encoding.upper() == "AUTO":
            self._encoding: Encoding | None = None
        else:
            self._encoding = encoding_by_name(encoding)
        self._pending: list = []
        self._data = bytearray()
        self._infos: list[BlockInfo] = []
        self._row_count = 0

    def append(self, value) -> None:
        """Add one value (may be None) to the column."""
        self._pending.append(value)
        if len(self._pending) >= self.block_rows:
            self._flush_block()

    def extend(self, values) -> None:
        """Add many values to the column."""
        for value in values:
            self.append(value)

    def _flush_block(self) -> None:
        if not self._pending:
            return
        payload, info = encode_block(
            self._pending,
            self.dtype,
            self._encoding,
            start_position=self._row_count,
            file_offset=len(self._data),
        )
        self._data += payload
        self._infos.append(info)
        self._row_count += len(self._pending)
        self._pending = []

    def finish(self) -> tuple[bytes, bytes]:
        """Flush and return ``(data_bytes, position_index_bytes)``."""
        self._flush_block()
        index = bytearray()
        from .serde import write_uvarint

        write_uvarint(index, len(self._infos))
        for info in self._infos:
            info.serialize(index)
        return bytes(self._data), bytes(index)

    @property
    def row_count(self) -> int:
        """Rows appended so far (including buffered ones)."""
        return self._row_count + len(self._pending)


def read_position_index(index_bytes: bytes) -> list[BlockInfo]:
    """Parse a position index byte stream into its block entries.

    Raises :class:`CorruptContainerError` on a structurally damaged
    index (torn or corrupted ``.pidx``) instead of letting arbitrary
    decode exceptions escape — the scavenger relies on this to
    quarantine rather than crash.
    """
    from .serde import read_uvarint

    try:
        count, offset = read_uvarint(index_bytes, 0)
        if count > len(index_bytes):
            # every serialized BlockInfo takes at least one byte, so a
            # count beyond the stream length is garbage, not data.
            raise StorageError(f"position index claims {count} blocks")
        infos = []
        for _ in range(count):
            info, offset = BlockInfo.deserialize(index_bytes, offset)
            infos.append(info)
    except CorruptContainerError:
        raise
    except Exception as exc:
        raise CorruptContainerError(
            f"unparseable position index: {exc}"
        ) from exc
    return infos


class ColumnReader:
    """Positional access to an encoded column.

    Holds the raw data bytes and the parsed position index; decoded
    blocks are cached (most access patterns are sequential or touch a
    few hot blocks).
    """

    def __init__(self, data: bytes, index_bytes: bytes):
        self._data = data
        self.blocks = read_position_index(index_bytes)
        self._cache: dict[int, list] = {}
        self._vector_cache: dict[int, object] = {}
        self.row_count = self.blocks[-1].end_position if self.blocks else 0

    def block_values(self, block_index: int) -> list:
        """Decode (with caching) the values of one block."""
        cached = self._cache.get(block_index)
        if cached is None:
            info = self.blocks[block_index]
            payload = self._data[info.offset : info.offset + info.length]
            cached = decode_block(payload, info)
            self._cache[block_index] = cached
            METRICS.inc("storage.blocks_decoded")
            METRICS.inc("storage.bytes_decoded", info.length)
            METRICS.inc(f"storage.bytes_decoded.{info.encoding}", info.length)
        return cached

    def block_vector(self, block_index: int):
        """The block as a :class:`ColumnVector`, preserving encoding.

        RLE blocks surface their runs and BLOCK_DICT blocks their
        (entries, codes) pair *without decoding to values* — the
        operate-on-compressed feed for execution kernels.  Blocks with
        NULLs decode plain (the presence bitmap's positions do not line
        up with run/code positions), as does every other encoding.
        """
        cached = self._vector_cache.get(block_index)
        if cached is None:
            from ..execution.kernels.vectors import (
                DictVector,
                PlainVector,
                RleVector,
            )

            info = self.blocks[block_index]
            if info.null_count == 0 and info.encoding in ("RLE", "BLOCK_DICT"):
                from .encodings import encoding_by_name

                payload = self._data[info.offset : info.offset + info.length]
                encoding = encoding_by_name(info.encoding)
                if info.encoding == "RLE":
                    runs = list(encoding.iter_runs(payload, info.row_count))
                    cached = RleVector(runs, info.row_count)
                else:
                    entries, codes = encoding.decode_parts(
                        payload, info.row_count
                    )
                    cached = DictVector(codes, entries)
                METRICS.inc("storage.blocks_vectorized")
            else:
                cached = PlainVector(
                    self.block_values(block_index), info.null_count
                )
            self._vector_cache[block_index] = cached
        return cached

    def vector_for_range(self, block_index: int, start: int, end: int):
        """``block_vector`` trimmed to absolute positions [start, end)."""
        info = self.blocks[block_index]
        vector = self.block_vector(block_index)
        lo = max(start - info.start_position, 0)
        hi = min(end - info.start_position, info.row_count)
        if lo == 0 and hi == info.row_count:
            return vector
        from ..execution.kernels.selection import Selection
        from ..execution.kernels.vectors import PlainVector

        trimmed = Selection.from_ranges([(lo, hi)], info.row_count).apply(vector)
        if isinstance(trimmed, list):
            nulls = (
                sum(1 for value in trimmed if value is None)
                if info.null_count
                else 0
            )
            return PlainVector(trimmed, nulls)
        return trimmed

    def read_all(self) -> list:
        """Decode the entire column in position order."""
        values: list = []
        for index in range(len(self.blocks)):
            values.extend(self.block_values(index))
        return values

    def _block_for_position(self, position: int) -> int:
        low, high = 0, len(self.blocks) - 1
        while low <= high:
            mid = (low + high) // 2
            info = self.blocks[mid]
            if position < info.start_position:
                high = mid - 1
            elif position >= info.end_position:
                low = mid + 1
            else:
                return mid
        raise StorageError(f"position {position} out of range 0..{self.row_count}")

    def get(self, position: int):
        """Value at an ordinal position (the tuple-reconstruction path)."""
        block_index = self._block_for_position(position)
        info = self.blocks[block_index]
        return self.block_values(block_index)[position - info.start_position]

    def get_many(self, positions) -> list:
        """Values at many positions (need not be sorted)."""
        return [self.get(position) for position in positions]

    def iter_blocks(self, low=None, high=None):
        """Yield ``(BlockInfo, values)`` for blocks overlapping [low, high].

        With no bounds every block is yielded; with bounds, blocks are
        pruned via their min/max metadata without being decoded.
        """
        for index, info in enumerate(self.blocks):
            if low is None and high is None:
                yield info, self.block_values(index)
            elif info.may_contain(low, high) or info.null_count:
                yield info, self.block_values(index)
            else:
                METRICS.inc("storage.blocks_pruned")

    def position_range_for(self, low, high) -> tuple[int, int]:
        """Smallest [start, end) position range covering all blocks
        that may hold values in [low, high] — pure metadata, no decode.

        Used by the scan fast path on sorted columns: a range predicate
        on the sort column maps to a contiguous run of blocks.
        """
        start = None
        end = 0
        pruned = 0
        for info in self.blocks:
            if info.may_contain(low, high) or info.null_count:
                if start is None:
                    start = info.start_position
                end = info.end_position
            else:
                pruned += 1
        if pruned:
            METRICS.inc("storage.blocks_pruned", pruned)
        if start is None:
            return 0, 0
        return start, end

    def read_range(self, start: int, end: int) -> list:
        """Decode only positions [start, end) (block-aligned reads)."""
        if start >= end:
            return []
        values: list = []
        for index, info in enumerate(self.blocks):
            if info.end_position <= start:
                continue
            if info.start_position >= end:
                break
            block_values = self.block_values(index)
            lo = max(start - info.start_position, 0)
            hi = min(end - info.start_position, info.row_count)
            values.extend(block_values[lo:hi])
        return values

    def min_value(self):
        """Column-level minimum from block metadata (no decode)."""
        mins = [b.min_value for b in self.blocks if b.min_value is not None]
        return min(mins) if mins else None

    def max_value(self):
        """Column-level maximum from block metadata (no decode)."""
        maxes = [b.max_value for b in self.blocks if b.max_value is not None]
        return max(maxes) if maxes else None

    @property
    def data_size(self) -> int:
        """Size in bytes of the encoded column data."""
        return len(self._data)
