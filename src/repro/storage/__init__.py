"""Physical storage layer: encodings, column files, ROS/WOS, deletes."""

from .block import BLOCK_ROWS, BlockInfo, decode_block, encode_block
from .column_file import ColumnReader, ColumnWriter, read_position_index
from .delete_vector import DeleteVector, combined_deletes
from .manager import (
    ProjectionStorage,
    QuarantinedContainer,
    ScanBatch,
    ScavengeReport,
    StorageManager,
)
from .ros import EPOCH_COLUMN, ContainerMeta, ROSContainer
from .wos import DEFAULT_WOS_CAPACITY, WriteOptimizedStore

__all__ = [
    "BLOCK_ROWS",
    "BlockInfo",
    "decode_block",
    "encode_block",
    "ColumnReader",
    "ColumnWriter",
    "read_position_index",
    "DeleteVector",
    "combined_deletes",
    "ProjectionStorage",
    "QuarantinedContainer",
    "ScanBatch",
    "ScavengeReport",
    "StorageManager",
    "EPOCH_COLUMN",
    "ContainerMeta",
    "ROSContainer",
    "DEFAULT_WOS_CAPACITY",
    "WriteOptimizedStore",
]
