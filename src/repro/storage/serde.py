"""Low-level byte serialization shared by all column encodings.

Encodings (section 3.4) are defined in terms of a handful of
primitives: unsigned varints, zigzag-coded signed varints, IEEE
doubles, and length-prefixed strings.  Keeping these in one module
makes every encoding short and makes byte-level sizes — the quantity
Table 4 measures — easy to reason about.
"""

from __future__ import annotations

import struct

from ..errors import EncodingError


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as a LEB128 unsigned varint."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned varint; return ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        try:
            byte = data[offset]
        except IndexError:
            raise EncodingError("truncated varint") from None
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one with small absolute values
    mapping to small codes (0->0, -1->1, 1->2, -2->3, ...).

    Python ints are arbitrary-precision, so the negative branch XORs
    with -1 (bitwise NOT) rather than the fixed-width ``value >> 127``
    idiom, which under-shifts for magnitudes of 2**127 and beyond.
    """
    return (value << 1) ^ -1 if value < 0 else value << 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


def write_svarint(out: bytearray, value: int) -> None:
    """Append a signed integer as a zigzag varint."""
    write_uvarint(out, zigzag(value))


def read_svarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read a zigzag varint; return ``(value, new_offset)``."""
    raw, offset = read_uvarint(data, offset)
    return unzigzag(raw), offset


def write_double(out: bytearray, value: float) -> None:
    """Append an IEEE-754 little-endian double."""
    out += struct.pack("<d", value)


def read_double(data: bytes, offset: int) -> tuple[float, int]:
    """Read an IEEE-754 little-endian double."""
    return struct.unpack_from("<d", data, offset)[0], offset + 8


def write_string(out: bytearray, value: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    encoded = value.encode("utf-8")
    write_uvarint(out, len(encoded))
    out += encoded


def read_string(data: bytes, offset: int) -> tuple[str, int]:
    """Read a length-prefixed UTF-8 string."""
    length, offset = read_uvarint(data, offset)
    return data[offset : offset + length].decode("utf-8"), offset + length


def write_value(out: bytearray, value) -> None:
    """Append one SQL value of any supported type (self-describing).

    Used by the plain encoding and by metadata that must store
    arbitrary min/max values.  Format: 1 tag byte then the payload.
    """
    if value is None:
        out.append(0)
    elif isinstance(value, bool):
        out.append(4 if value else 5)
    elif isinstance(value, int):
        out.append(1)
        write_svarint(out, value)
    elif isinstance(value, float):
        out.append(2)
        write_double(out, value)
    elif isinstance(value, str):
        out.append(3)
        write_string(out, value)
    else:
        raise EncodingError(f"unsupported SQL value {value!r}")


def read_value(data: bytes, offset: int):
    """Read one self-describing SQL value; return ``(value, new_offset)``."""
    tag = data[offset]
    offset += 1
    if tag == 0:
        return None, offset
    if tag == 1:
        return read_svarint(data, offset)
    if tag == 2:
        return read_double(data, offset)
    if tag == 3:
        return read_string(data, offset)
    if tag == 4:
        return True, offset
    if tag == 5:
        return False, offset
    raise EncodingError(f"unknown value tag {tag}")


def pack_bits(values: list[int], bit_width: int) -> bytes:
    """Bit-pack ``values`` (each < 2**bit_width) into a byte string."""
    if bit_width == 0:
        return b""
    buffer = 0
    bits = 0
    out = bytearray()
    for value in values:
        buffer |= value << bits
        bits += bit_width
        while bits >= 8:
            out.append(buffer & 0xFF)
            buffer >>= 8
            bits -= 8
    if bits:
        out.append(buffer & 0xFF)
    return bytes(out)


def unpack_bits(data: bytes, bit_width: int, count: int) -> list[int]:
    """Inverse of :func:`pack_bits` for ``count`` values."""
    if bit_width == 0:
        return [0] * count
    values = []
    buffer = 0
    bits = 0
    mask = (1 << bit_width) - 1
    position = 0
    for _ in range(count):
        while bits < bit_width:
            buffer |= data[position] << bits
            position += 1
            bits += 8
        values.append(buffer & mask)
        buffer >>= bit_width
        bits -= bit_width
    return values


def bit_width_for(max_value: int) -> int:
    """Smallest bit width able to represent ``max_value`` distinct codes."""
    return max(1, (max_value).bit_length()) if max_value > 0 else 0
