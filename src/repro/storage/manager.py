"""Per-node storage manager.

One :class:`StorageManager` owns the physical storage of a single
(simulated) node: per-projection WOS buffers, ROS containers, delete
vectors, and the bookkeeping the tuple mover and execution engine sit
on top of.  It enforces the physical invariants of sections 3.5-3.7:

* every ROS container holds rows of exactly one partition key and one
  local segment;
* containers are immutable and totally sorted by their projection's
  sort order;
* deletes never touch data files — they only append delete vectors;
* the WOS routes to ROS directly when it would overflow (and loads can
  explicitly request direct-to-ROS, section 7).
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field

from ..core.schema import TableDefinition
from ..errors import StorageError, UnknownObjectError
from ..monitor import METRICS
from ..projections import HashSegmentation, ProjectionDefinition
from . import fsio
from .delete_vector import DeleteVector, combined_deletes
from .ros import ROSContainer
from .wos import DEFAULT_WOS_CAPACITY, WriteOptimizedStore

#: Subdirectory of a projection's storage where corrupt containers are
#: moved (never deleted: the bytes are evidence and a repair source of
#: last resort).
QUARANTINE_DIR = "quarantine"


@dataclass
class QuarantinedContainer:
    """Record of one container pulled from service by the scavenger."""

    projection: str
    #: Original directory basename, e.g. ``ros_000004``.
    name: str
    #: Where the damaged directory now lives.
    path: str
    reason: str


@dataclass
class ScavengeReport:
    """What one crash-recovery scavenge pass found and fixed."""

    #: Orphaned ``.tmp`` staging directories deleted.
    removed_tmp: list[str] = field(default_factory=list)
    #: Containers quarantined (missing files, checksum mismatches...).
    quarantined: list[QuarantinedContainer] = field(default_factory=list)
    #: (projection, container id) mergeout inputs retired because the
    #: merged output had already been published before a crash.
    duplicates_retired: list[tuple[str, int]] = field(default_factory=list)
    #: Healthy containers loaded from disk into the manager.
    containers_loaded: int = 0
    #: Persisted delete vectors re-attached to their containers.
    delete_vectors_loaded: int = 0
    #: Stale delete-vector directories removed (target container gone).
    stale_delete_vectors: int = 0

    def clean(self) -> bool:
        """Whether the pass found nothing to repair."""
        return not (
            self.removed_tmp or self.quarantined or self.duplicates_retired
            or self.stale_delete_vectors
        )


@dataclass
class ScanBatch:
    """A vectorized slice of visible rows handed to the Scan operator."""

    columns: dict[str, list]
    row_count: int
    #: container id the batch came from, or None for the WOS.
    source: int | None
    #: True when rows are in projection sort order within the batch.
    sorted_run: bool
    #: The projection sort order (major first) when ``sorted_run``;
    #: lets the execution kernels binary-search and detect runs.
    sort_columns: tuple | None = None


@dataclass
class ProjectionStorage:
    """All physical state for one projection on one node."""

    projection: ProjectionDefinition
    table: TableDefinition
    wos: WriteOptimizedStore
    containers: dict[int, ROSContainer] = field(default_factory=dict)
    #: In-memory (DVWOS-resident) delete vectors, per ROS container id.
    pending_ros_deletes: dict[int, DeleteVector] = field(default_factory=dict)
    #: Persisted (DVROS) delete vectors, per ROS container id.
    persisted_ros_deletes: dict[int, list[DeleteVector]] = field(default_factory=dict)
    #: WOS position -> delete epoch.
    wos_deletes: dict[int, int] = field(default_factory=dict)
    #: Basenames of DVROS directories already reflected in
    #: ``persisted_ros_deletes`` (so scavenge never double-attaches).
    loaded_dv_dirs: set[str] = field(default_factory=set)

    def deletes_for(self, container_id: int) -> dict[int, int]:
        """position -> delete-epoch map for one container."""
        vectors = list(self.persisted_ros_deletes.get(container_id, ()))
        pending = self.pending_ros_deletes.get(container_id)
        if pending is not None:
            vectors.append(pending)
        return combined_deletes(vectors)

    def delete_count(self) -> int:
        """Total delete markers across WOS and all containers."""
        total = len(self.wos_deletes)
        for container_id in self.containers:
            total += len(self.deletes_for(container_id))
        return total


class StorageManager:
    """Physical storage for one node, rooted at a directory."""

    def __init__(
        self,
        root: str,
        node_count: int = 1,
        node_index: int = 0,
        segments_per_node: int = 1,
        wos_capacity: int = DEFAULT_WOS_CAPACITY,
    ):
        self.root = root
        self.node_count = node_count
        self.node_index = node_index
        self.segments_per_node = segments_per_node
        self.wos_capacity = wos_capacity
        self._projections: dict[str, ProjectionStorage] = {}
        self._next_container_id = 1
        self._dv_seq = 0
        #: Every container this manager has pulled from service.
        self.quarantined: list[QuarantinedContainer] = []
        os.makedirs(root, exist_ok=True)

    # -- registration ---------------------------------------------------

    def register_projection(
        self, projection: ProjectionDefinition, table: TableDefinition
    ) -> None:
        """Start managing storage for ``projection`` of ``table``."""
        if projection.name in self._projections:
            raise StorageError(f"projection {projection.name!r} already registered")
        self._projections[projection.name] = ProjectionStorage(
            projection=projection,
            table=table,
            wos=WriteOptimizedStore(capacity=self.wos_capacity),
        )
        os.makedirs(self._projection_dir(projection.name), exist_ok=True)

    def drop_projection(self, name: str) -> None:
        """Remove a projection's storage (files included)."""
        self._state(name)
        del self._projections[name]
        shutil.rmtree(self._projection_dir(name), ignore_errors=True)

    def projection_names(self) -> list[str]:
        """Names of projections stored on this node."""
        return sorted(self._projections)

    def _state(self, name: str) -> ProjectionStorage:
        try:
            return self._projections[name]
        except KeyError:
            raise UnknownObjectError(f"no storage for projection {name!r}") from None

    def _projection_dir(self, name: str) -> str:
        return os.path.join(self.root, name)

    def storage(self, name: str) -> ProjectionStorage:
        """Expose a projection's physical state (tuple mover, tests)."""
        return self._state(name)

    # -- writes -----------------------------------------------------------

    def insert(
        self,
        projection_name: str,
        rows: list[dict],
        epoch: int,
        direct_to_ros: bool = False,
    ) -> list[int]:
        """Store committed ``rows`` at ``epoch``.

        Returns ids of any ROS containers created (empty if the rows
        went to the WOS).  Rows go directly to ROS when requested or
        when the WOS would overflow (section 4).
        """
        state = self._state(projection_name)
        if not rows:
            return []
        if direct_to_ros or state.wos.would_overflow(len(rows)):
            if not direct_to_ros:
                # WOS overflow: the load was headed for memory but spills
                # straight to ROS instead (section 4).
                METRICS.inc("storage.wos_spills")
                METRICS.inc("storage.wos_spill_rows", len(rows))
            return self._write_ros_containers(state, rows, [epoch] * len(rows))
        state.wos.insert(rows, epoch)
        return []

    def _local_segment_of(self, state: ProjectionStorage, row: dict) -> int:
        scheme = state.projection.segmentation
        if self.segments_per_node <= 1 or not isinstance(scheme, HashSegmentation):
            return 0
        return scheme.local_segment_for_row(
            row, self.node_count, self.segments_per_node
        )

    def _write_ros_containers(
        self,
        state: ProjectionStorage,
        rows: list[dict],
        epochs: list[int],
        preserve_groups: bool = True,
    ) -> list[int]:
        """Split rows by (partition key, local segment), sort each group
        and write one ROS container per group."""
        groups: dict[tuple, list[int]] = {}
        for index, row in enumerate(rows):
            key = (
                state.table.partition_key(row),
                self._local_segment_of(state, row),
            )
            groups.setdefault(key, []).append(index)
        created = []
        for (partition_key, local_segment), indexes in sorted(
            groups.items(), key=lambda item: repr(item[0])
        ):
            ordered = sorted(
                indexes, key=lambda i: state.projection.sort_key_for(rows[i])
            )
            group_rows = [rows[i] for i in ordered]
            group_epochs = [epochs[i] for i in ordered]
            created.append(
                self._new_container(state, group_rows, group_epochs, partition_key, local_segment)
            )
        return created

    def _new_container(
        self,
        state: ProjectionStorage,
        sorted_rows: list[dict],
        epochs: list[int],
        partition_key,
        local_segment: int,
        merged_from: list[int] | None = None,
    ) -> int:
        container_id = self._next_container_id
        self._next_container_id += 1
        path = os.path.join(
            self._projection_dir(state.projection.name), f"ros_{container_id:06d}"
        )
        container = ROSContainer.write(
            path,
            container_id,
            state.projection,
            sorted_rows,
            epochs,
            partition_key=partition_key,
            local_segment=local_segment,
            merged_from=merged_from,
        )
        state.containers[container_id] = container
        return container_id

    def add_container_from_rows(
        self,
        projection_name: str,
        sorted_rows: list[dict],
        epochs: list[int],
        partition_key=None,
        local_segment: int = 0,
        merged_from: list[int] | None = None,
    ) -> int:
        """Create one container from pre-sorted rows (tuple mover,
        recovery and rebalance use this lower-level entry point).
        ``merged_from`` stamps mergeout provenance into the container's
        metadata so a crash before input retirement is self-healing."""
        state = self._state(projection_name)
        return self._new_container(
            state, sorted_rows, epochs, partition_key, local_segment,
            merged_from=merged_from,
        )

    def adopt_container(self, projection_name: str, source_dir: str) -> int:
        """Copy an externally produced container directory (backup
        image, shipped from another node) into this projection under a
        freshly assigned container id.  The copy commits atomically and
        is checksum-verified before registration; returns the new id.
        """
        state = self._state(projection_name)
        container_id = self._next_container_id
        self._next_container_id += 1
        target = os.path.join(
            self._projection_dir(projection_name), f"ros_{container_id:06d}"
        )
        container = ROSContainer.adopt(source_dir, target, container_id)
        if container.meta.projection != projection_name:
            shutil.rmtree(target, ignore_errors=True)
            raise StorageError(
                f"container from {source_dir} belongs to projection "
                f"{container.meta.projection!r}, not {projection_name!r}"
            )
        state.containers[container_id] = container
        return container_id

    def _drop_dv_dirs(self, state: ProjectionStorage, container_id: int) -> None:
        """Delete persisted delete-vector directories of one container."""
        directory = self._projection_dir(state.projection.name)
        prefix = f"dv_{container_id:06d}_"
        try:
            entries = os.listdir(directory)
        except FileNotFoundError:
            return
        for entry in entries:
            if entry.startswith(prefix):
                shutil.rmtree(os.path.join(directory, entry), ignore_errors=True)
                state.loaded_dv_dirs.discard(entry)

    def remove_containers(self, projection_name: str, container_ids) -> None:
        """Drop containers (mergeout inputs, dropped partitions) along
        with their persisted delete vectors."""
        state = self._state(projection_name)
        for container_id in container_ids:
            container = state.containers.pop(container_id, None)
            if container is None:
                raise StorageError(f"unknown container {container_id}")
            state.pending_ros_deletes.pop(container_id, None)
            state.persisted_ros_deletes.pop(container_id, None)
            shutil.rmtree(container.path, ignore_errors=True)
            self._drop_dv_dirs(state, container_id)

    def attach_delete_vector(
        self, projection_name: str, vector: DeleteVector
    ) -> None:
        """Attach an externally built delete vector (recovery path)."""
        state = self._state(projection_name)
        if vector.target_container is None:
            for position, epoch in zip(vector.positions, vector.epochs):
                state.wos_deletes.setdefault(position, epoch)
        else:
            state.persisted_ros_deletes.setdefault(
                vector.target_container, []
            ).append(vector)

    # -- deletes ----------------------------------------------------------

    def delete_where(
        self,
        projection_name: str,
        predicate,
        commit_epoch: int,
        snapshot_epoch: int,
    ) -> int:
        """Mark rows matching ``predicate(row)`` deleted at ``commit_epoch``.

        Rows are located in the snapshot visible at ``snapshot_epoch``
        (delete never modifies storage; it appends delete vectors).
        Returns the number of rows marked.
        """
        state = self._state(projection_name)
        deleted = 0
        for position, row in state.wos.visible(snapshot_epoch, state.wos_deletes):
            if predicate(row):
                state.wos_deletes[position] = commit_epoch
                deleted += 1
        for container_id, container in state.containers.items():
            deletes = state.deletes_for(container_id)
            columns = container.read_columns(container.meta.columns)
            epochs = container.read_epochs()
            names = container.meta.columns
            for position in range(container.row_count):
                if epochs[position] > snapshot_epoch:
                    continue
                delete_epoch = deletes.get(position)
                if delete_epoch is not None and delete_epoch <= snapshot_epoch:
                    continue
                row = {name: columns[name][position] for name in names}
                if predicate(row):
                    vector = state.pending_ros_deletes.setdefault(
                        container_id, DeleteVector(container_id)
                    )
                    vector.add(position, commit_epoch)
                    deleted += 1
        return deleted

    def persist_delete_vectors(self, projection_name: str) -> int:
        """Move pending (DVWOS) ROS delete vectors to disk (DVROS).

        Returns how many vectors were persisted.  This is the tuple
        mover's delete-vector moveout (section 3.7.1).
        """
        state = self._state(projection_name)
        persisted = 0
        for container_id, vector in sorted(state.pending_ros_deletes.items()):
            name = f"dv_{container_id:06d}_{self._dv_seq:06d}"
            self._dv_seq += 1
            vector.write(os.path.join(self._projection_dir(projection_name), name))
            state.persisted_ros_deletes.setdefault(container_id, []).append(vector)
            state.loaded_dv_dirs.add(name)
            persisted += 1
        state.pending_ros_deletes.clear()
        return persisted

    # -- crash recovery: scavenge, quarantine, verify ---------------------

    def scavenge(self, projection_name: str | None = None) -> ScavengeReport:
        """Bring on-disk storage back to a consistent, loaded state.

        Run at node startup after a crash (and harmlessly at any other
        time).  Four passes per projection, in order:

        1. delete orphaned ``.tmp`` staging directories — commits that
           never reached their rename;
        2. load every published container not already in memory,
           quarantining any that fails metadata or checksum
           verification instead of crashing;
        3. retire mergeout inputs whose merged output was published
           before a crash (``merged_from`` bookkeeping) — duplicate
           row coverage is resolved idempotently;
        4. re-attach persisted delete vectors, dropping stale ones
           whose target container no longer exists.
        """
        report = ScavengeReport()
        names = (
            [projection_name] if projection_name else self.projection_names()
        )
        for name in names:
            self._scavenge_projection(self._state(name), report)
        return report

    def _scavenge_projection(
        self, state: ProjectionStorage, report: ScavengeReport
    ) -> None:
        name = state.projection.name
        directory = self._projection_dir(name)
        try:
            entries = sorted(os.listdir(directory))
        except FileNotFoundError:
            return
        for entry in entries:
            if fsio.is_staging_dir(entry):
                shutil.rmtree(os.path.join(directory, entry), ignore_errors=True)
                report.removed_tmp.append(f"{name}/{entry}")
        for entry in entries:
            if not entry.startswith("ros_") or fsio.is_staging_dir(entry):
                continue
            path = os.path.join(directory, entry)
            if not os.path.isdir(path):
                continue
            self._scavenge_container(state, entry, path, report)
        self._retire_merge_duplicates(state, report)
        for entry in sorted(os.listdir(directory)):
            if not entry.startswith("dv_") or fsio.is_staging_dir(entry):
                continue
            self._scavenge_delete_vector(state, entry, report)
        highest = max(state.containers, default=0)
        if highest >= self._next_container_id:
            self._next_container_id = highest + 1

    def _scavenge_container(
        self, state: ProjectionStorage, entry: str, path: str,
        report: ScavengeReport,
    ) -> None:
        try:
            dir_id = int(entry[len("ros_"):])
        except ValueError:
            dir_id = None
        if dir_id is not None and dir_id in state.containers:
            return  # already live in memory
        try:
            container = ROSContainer.load(path)
        except StorageError as exc:
            report.quarantined.append(
                self._quarantine_path(state, entry, path, str(exc))
            )
            return
        meta = container.meta
        if meta.container_id != dir_id or meta.projection != state.projection.name:
            report.quarantined.append(
                self._quarantine_path(
                    state, entry, path,
                    f"identity mismatch: directory {entry} holds container "
                    f"{meta.container_id} of projection {meta.projection!r}",
                )
            )
            return
        state.containers[meta.container_id] = container
        report.containers_loaded += 1

    def _retire_merge_duplicates(
        self, state: ProjectionStorage, report: ScavengeReport
    ) -> None:
        """Resolve crash-between-publish-and-retire mergeouts: if a
        merged container and any of its inputs coexist, the inputs are
        duplicates (the merge output covers their rows and epoch range)
        and are retired now, exactly as the mover would have."""
        for container_id in sorted(state.containers):
            container = state.containers.get(container_id)
            if container is None:
                continue
            stale = [
                old_id
                for old_id in container.meta.merged_from
                if old_id in state.containers
            ]
            for old_id in stale:
                old = state.containers.pop(old_id)
                state.pending_ros_deletes.pop(old_id, None)
                state.persisted_ros_deletes.pop(old_id, None)
                shutil.rmtree(old.path, ignore_errors=True)
                self._drop_dv_dirs(state, old_id)
                report.duplicates_retired.append(
                    (state.projection.name, old_id)
                )

    def _scavenge_delete_vector(
        self, state: ProjectionStorage, entry: str, report: ScavengeReport
    ) -> None:
        if entry in state.loaded_dv_dirs:
            return
        path = os.path.join(self._projection_dir(state.projection.name), entry)
        try:
            vector = DeleteVector.load(path)
        except (StorageError, OSError, ValueError):
            shutil.rmtree(path, ignore_errors=True)
            report.stale_delete_vectors += 1
            return
        target = vector.target_container
        if target is None or target not in state.containers:
            # WOS vectors are never persisted; a DVROS whose container
            # is gone (retired or quarantined) is dead weight.
            shutil.rmtree(path, ignore_errors=True)
            report.stale_delete_vectors += 1
            return
        state.persisted_ros_deletes.setdefault(target, []).append(vector)
        state.loaded_dv_dirs.add(entry)
        report.delete_vectors_loaded += 1

    def _quarantine_path(
        self, state: ProjectionStorage, entry: str, path: str, reason: str
    ) -> QuarantinedContainer:
        """Move a damaged container directory into quarantine."""
        quarantine_root = os.path.join(
            self._projection_dir(state.projection.name), QUARANTINE_DIR
        )
        os.makedirs(quarantine_root, exist_ok=True)
        target = os.path.join(quarantine_root, entry)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(quarantine_root, f"{entry}.{suffix}")
        os.replace(path, target)
        record = QuarantinedContainer(
            projection=state.projection.name,
            name=entry,
            path=target,
            reason=reason,
        )
        self.quarantined.append(record)
        return record

    def quarantine_container(
        self, projection_name: str, container_id: int, reason: str
    ) -> QuarantinedContainer:
        """Pull a live container from service (scrub found it corrupt).

        Its rows become unavailable on this node until a repair
        rebuilds them from a buddy; its delete vectors are dropped with
        it (repair re-creates them from replayed history)."""
        state = self._state(projection_name)
        container = state.containers.pop(container_id, None)
        if container is None:
            raise StorageError(f"unknown container {container_id}")
        state.pending_ros_deletes.pop(container_id, None)
        state.persisted_ros_deletes.pop(container_id, None)
        self._drop_dv_dirs(state, container_id)
        return self._quarantine_path(
            state, os.path.basename(container.path), container.path, reason
        )

    def verify_containers(
        self, projection_name: str
    ) -> list[tuple[int, list[str]]]:
        """Deep-verify every live container's files against their
        committed CRC32s.  Returns (container id, bad files) pairs for
        the damaged ones — the per-node half of ``Cluster.scrub()``."""
        state = self._state(projection_name)
        damaged = []
        for container_id in sorted(state.containers):
            bad = state.containers[container_id].verify()
            if bad:
                damaged.append((container_id, bad))
        return damaged

    def purge_quarantine(self, projection_name: str | None = None) -> int:
        """Delete quarantined container directories (post-repair
        cleanup).  Returns how many were purged."""
        names = (
            [projection_name] if projection_name else self.projection_names()
        )
        purged = 0
        keep = []
        for record in self.quarantined:
            if record.projection in names:
                shutil.rmtree(record.path, ignore_errors=True)
                purged += 1
            else:
                keep.append(record)
        self.quarantined = keep
        return purged

    # -- reads ------------------------------------------------------------

    def scan(
        self,
        projection_name: str,
        epoch: int,
        columns: list[str] | None = None,
        prune: dict[str, tuple] | None = None,
        batch_rows: int = 8192,
        include_deleted: bool = False,
        vectorized: bool = False,
    ):
        """Yield :class:`ScanBatch` es of rows visible at ``epoch``.

        ``prune`` maps column name -> (low, high) and eliminates whole
        containers via their min/max metadata before any data is read.
        ``include_deleted`` disables delete-vector filtering (recovery
        must copy deleted-but-unpurged rows, section 5.2).
        ``vectorized`` asks for encoded column vectors instead of value
        lists where the container allows it (fully visible, no deletes);
        batches are then cut at storage-block boundaries so block-local
        dictionaries stay valid.
        """
        state = self._state(projection_name)
        names = columns or [c.name for c in state.projection.columns]
        sort_columns = tuple(state.projection.sort_order) or None
        for container_id in sorted(state.containers):
            container = state.containers[container_id]
            if prune and not all(
                container.may_contain(column, low, high)
                for column, (low, high) in prune.items()
                if column in container.meta.columns
            ):
                METRICS.inc("storage.containers_pruned")
                continue
            METRICS.inc("storage.containers_scanned")
            yield from self._scan_container(
                state, container, epoch, names, batch_rows, include_deleted,
                prune, vectorized, sort_columns,
            )
        yield from self._scan_wos(
            state, epoch, names, batch_rows, include_deleted, sort_columns
        )

    def _scan_container(
        self, state, container, epoch, names, batch_rows, include_deleted,
        prune=None, vectorized=False, sort_columns=None,
    ):
        deletes = {} if include_deleted else state.deletes_for(container.container_id)
        # fast path: fully visible container, no deletes -> block-level
        # pruning via the position index plus slice-based batching.
        if not deletes and container.meta.max_epoch <= epoch:
            if vectorized:
                yield from self._scan_container_vectorized(
                    container, names, batch_rows, prune, sort_columns
                )
            else:
                yield from self._scan_container_fast(
                    container, names, batch_rows, prune, sort_columns
                )
            return
        epochs = container.read_epochs()
        keep = [
            position
            for position in range(container.row_count)
            if epochs[position] <= epoch
            and not (
                (delete_epoch := deletes.get(position)) is not None
                and delete_epoch <= epoch
            )
        ]
        if not keep:
            return
        data = container.read_columns(names)
        for start in range(0, len(keep), batch_rows):
            chunk = keep[start : start + batch_rows]
            yield ScanBatch(
                columns={
                    name: [data[name][position] for position in chunk]
                    for name in names
                },
                row_count=len(chunk),
                source=container.container_id,
                sorted_run=True,
                sort_columns=sort_columns,
            )

    def _pruned_position_range(self, container, prune) -> tuple[int, int]:
        """Intersect pruned position ranges of restricted (ungrouped)
        columns — the shared first step of both fast-path scans."""
        start, end = 0, container.row_count
        if prune:
            for column, (low, high) in prune.items():
                if column not in container.meta.columns:
                    continue
                if container._group_of(column) is not None:
                    continue
                lo, hi = container.column_reader(column).position_range_for(
                    low, high
                )
                start = max(start, lo)
                end = min(end, hi)
        return start, end

    def _scan_container_fast(
        self, container, names, batch_rows, prune, sort_columns=None
    ):
        """Scan an immutable, fully-visible container: intersect the
        pruned position ranges of all restricted (ungrouped) columns,
        then slice every needed column to that range."""
        start, end = self._pruned_position_range(container, prune)
        if start >= end:
            return
        data = {}
        for name in names:
            if container._group_of(name) is not None:
                data[name] = container.read_column(name)[start:end]
            else:
                data[name] = container.column_reader(name).read_range(start, end)
        total = end - start
        for offset in range(0, total, batch_rows):
            yield ScanBatch(
                columns={
                    name: values[offset : offset + batch_rows]
                    for name, values in data.items()
                },
                row_count=min(batch_rows, total - offset),
                source=container.container_id,
                sorted_run=True,
                sort_columns=sort_columns,
            )

    def _scan_container_vectorized(
        self, container, names, batch_rows, prune, sort_columns=None
    ):
        """Fast-path scan that keeps columns in their encoded form.

        One batch per storage block (all ungrouped columns share block
        boundaries — they were written by the same :class:`ColumnWriter`
        cadence), so block-local dictionary codes stay meaningful for
        the whole batch.  Columns stored in a row-major group have no
        per-column encoding and are sliced plain.
        """
        start, end = self._pruned_position_range(container, prune)
        if start >= end:
            return
        reference = None
        for name in names:
            if container._group_of(name) is None:
                reference = container.column_reader(name)
                break
        if reference is None:
            # every requested column lives in a row-major group: no
            # encoded vectors to preserve.
            yield from self._scan_container_fast(
                container, names, batch_rows, prune, sort_columns
            )
            return
        grouped_cache: dict[str, list] = {}
        for block_index, info in enumerate(reference.blocks):
            if info.end_position <= start:
                continue
            if info.start_position >= end:
                break
            segment_start = max(start, info.start_position)
            segment_end = min(end, info.end_position)
            columns: dict = {}
            for name in names:
                if container._group_of(name) is not None:
                    cache = grouped_cache.get(name)
                    if cache is None:
                        cache = grouped_cache[name] = container.read_column(name)
                    columns[name] = cache[segment_start:segment_end]
                else:
                    columns[name] = container.column_reader(name).vector_for_range(
                        block_index, segment_start, segment_end
                    )
            yield ScanBatch(
                columns=columns,
                row_count=segment_end - segment_start,
                source=container.container_id,
                sorted_run=True,
                sort_columns=sort_columns,
            )

    def _scan_wos(
        self, state, epoch, names, batch_rows, include_deleted, sort_columns=None
    ):
        deletes = {} if include_deleted else state.wos_deletes
        visible_rows = [row for _, row in state.wos.visible(epoch, deletes)]
        if not visible_rows:
            return
        METRICS.inc("storage.wos_scans")
        METRICS.inc("storage.wos_rows_scanned", len(visible_rows))
        visible_rows = state.projection.sorted_rows(visible_rows)
        for start in range(0, len(visible_rows), batch_rows):
            chunk = visible_rows[start : start + batch_rows]
            yield ScanBatch(
                columns={name: [row[name] for row in chunk] for name in names},
                row_count=len(chunk),
                source=None,
                sorted_run=True,
                sort_columns=sort_columns,
            )

    def read_visible_rows(
        self, projection_name: str, epoch: int, include_deleted: bool = False
    ) -> list[dict]:
        """Materialize every visible row (test and recovery helper)."""
        rows: list[dict] = []
        for batch in self.scan(
            projection_name, epoch, include_deleted=include_deleted
        ):
            names = list(batch.columns)
            for index in range(batch.row_count):
                rows.append({name: batch.columns[name][index] for name in names})
        return rows

    def dump_rows(self, projection_name: str):
        """Yield ``(row, insert_epoch, delete_epoch_or_None)`` for every
        stored row, deleted or not.

        This is the full physical history of the projection on this
        node — the record recovery, refresh and rebalance replay from
        (section 5.2: "the data+epoch itself serves as a log of past
        system activity").
        """
        state = self._state(projection_name)
        for container_id in sorted(state.containers):
            container = state.containers[container_id]
            names = container.meta.columns
            columns = container.read_columns(names)
            epochs = container.read_epochs()
            deletes = state.deletes_for(container_id)
            for position in range(container.row_count):
                row = {name: columns[name][position] for name in names}
                yield row, epochs[position], deletes.get(position)
        for position, (row, epoch) in enumerate(
            zip(state.wos.rows, state.wos.epochs)
        ):
            yield row, epoch, state.wos_deletes.get(position)

    def truncate_after_epoch(self, projection_name: str, epoch: int) -> int:
        """Discard rows committed after ``epoch`` (and delete markers
        stamped after it), rebuilding the projection's containers.

        Recovery's first step: "the node truncates all tuples that were
        inserted after its LGE, ensuring that it starts at a consistent
        state" (section 5.2).  Returns rows discarded.
        """
        state = self._state(projection_name)
        survivors = []
        discarded = 0
        for row, insert_epoch, delete_epoch in self.dump_rows(projection_name):
            if insert_epoch > epoch:
                discarded += 1
                continue
            if delete_epoch is not None and delete_epoch > epoch:
                delete_epoch = None
            survivors.append((row, insert_epoch, delete_epoch))
        self.remove_containers(projection_name, list(state.containers))
        state.wos.drain()
        state.wos_deletes.clear()
        state.pending_ros_deletes.clear()
        state.persisted_ros_deletes.clear()
        self.load_history(projection_name, survivors)
        return discarded

    def load_history(
        self,
        projection_name: str,
        records: list[tuple[dict, int, int | None]],
    ) -> list[int]:
        """Write (row, insert_epoch, delete_epoch) records straight to
        ROS containers, preserving epochs and delete markers.  Used by
        truncate, recovery, refresh and rebalance."""
        state = self._state(projection_name)
        if not records:
            return []
        groups: dict[tuple, list[int]] = {}
        for index, (row, _, _) in enumerate(records):
            key = (
                state.table.partition_key(row),
                self._local_segment_of(state, row),
            )
            groups.setdefault(key, []).append(index)
        created = []
        for (partition_key, local_segment), indexes in sorted(
            groups.items(), key=lambda item: repr(item[0])
        ):
            ordered = sorted(
                indexes,
                key=lambda i: state.projection.sort_key_for(records[i][0]),
            )
            rows = [records[i][0] for i in ordered]
            epochs = [records[i][1] for i in ordered]
            container_id = self._new_container(
                state, rows, epochs, partition_key, local_segment
            )
            created.append(container_id)
            vector = DeleteVector(container_id)
            for position, original in enumerate(ordered):
                delete_epoch = records[original][2]
                if delete_epoch is not None:
                    vector.add(position, delete_epoch)
            if vector.count:
                state.persisted_ros_deletes.setdefault(container_id, []).append(
                    vector
                )
        return created

    # -- partitions --------------------------------------------------------

    def drop_partition(self, projection_name: str, partition_key) -> int:
        """Fast bulk delete: remove every container of one partition key
        (section 3.5).  Returns the number of rows reclaimed."""
        state = self._state(projection_name)
        victims = [
            container_id
            for container_id, container in state.containers.items()
            if container.meta.partition_key == partition_key
        ]
        reclaimed = sum(
            state.containers[container_id].row_count for container_id in victims
        )
        self.remove_containers(projection_name, victims)
        # WOS rows of that partition are dropped too (rare path: data
        # normally reaches ROS before partition drops happen).
        keep = [
            (row, epoch)
            for row, epoch in zip(state.wos.rows, state.wos.epochs)
            if state.table.partition_key(row) != partition_key
        ]
        reclaimed += state.wos.row_count - len(keep)
        state.wos.rows = [row for row, _ in keep]
        state.wos.epochs = [epoch for _, epoch in keep]
        state.wos_deletes.clear()
        return reclaimed

    def partition_keys(self, projection_name: str) -> list:
        """Distinct partition keys present in the projection's ROS."""
        state = self._state(projection_name)
        keys = {
            container.meta.partition_key for container in state.containers.values()
        }
        return sorted(keys, key=repr)

    # -- introspection -------------------------------------------------------

    def container_count(self, projection_name: str) -> int:
        """Number of live ROS containers for a projection."""
        return len(self._state(projection_name).containers)

    def total_data_bytes(self, projection_name: str | None = None) -> int:
        """Encoded user-data bytes on disk (Table 3/4 measurements)."""
        names = [projection_name] if projection_name else self.projection_names()
        total = 0
        for name in names:
            for container in self._state(name).containers.values():
                total += container.data_size_bytes()
        return total

    def total_bytes(self, projection_name: str | None = None) -> int:
        """All storage bytes including position indexes and epochs."""
        names = [projection_name] if projection_name else self.projection_names()
        total = 0
        for name in names:
            for container in self._state(name).containers.values():
                total += container.size_bytes()
        return total

    def wos_row_count(self, projection_name: str) -> int:
        """Rows currently buffered in the projection's WOS."""
        return self._state(projection_name).wos.row_count
