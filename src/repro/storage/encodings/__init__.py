"""Column encodings (paper section 3.4).

Importing this package registers all encodings:

* ``PLAIN`` / ``COMPRESSED_PLAIN`` — fallback storage (+ zlib stage)
* ``RLE`` — run-length, for sorted low-cardinality columns
* ``DELTAVAL`` — offset from block minimum, unsorted integers
* ``BLOCK_DICT`` — block-local dictionary, few-valued columns
* ``DELTARANGE_COMP`` — delta-from-previous + zlib, floats / ranges
* ``COMMONDELTA_COMP`` — delta dictionary + entropy coding, periodic data
* ``AUTO`` — empirical per-block chooser
"""

from .base import ENCODINGS, Encoding, encoding_by_name, register
from .plain import COMPRESSED_PLAIN, PLAIN, CompressedPlainEncoding, PlainEncoding
from .rle import RLE, RleEncoding
from .delta import DELTAVAL, DeltaValueEncoding
from .dictionary import BLOCK_DICT, BlockDictionaryEncoding
from .delta_range import DELTARANGE_COMP, CompressedDeltaRangeEncoding
from .common_delta import COMMONDELTA_COMP, CompressedCommonDeltaEncoding
from .auto import AUTO, SAMPLE_SIZE, AutoEncoding, choose_encoding

__all__ = [
    "ENCODINGS",
    "Encoding",
    "encoding_by_name",
    "register",
    "PLAIN",
    "COMPRESSED_PLAIN",
    "PlainEncoding",
    "CompressedPlainEncoding",
    "RLE",
    "RleEncoding",
    "DELTAVAL",
    "DeltaValueEncoding",
    "BLOCK_DICT",
    "BlockDictionaryEncoding",
    "DELTARANGE_COMP",
    "CompressedDeltaRangeEncoding",
    "COMMONDELTA_COMP",
    "CompressedCommonDeltaEncoding",
    "AUTO",
    "AutoEncoding",
    "choose_encoding",
    "SAMPLE_SIZE",
]
