"""Run-length encoding.

    RLE: Replaces sequences of identical values with a single pair that
    contains the value and number of occurrences.  This type is best
    for low cardinality columns that are sorted.  (section 3.4.1)

RLE is the encoding that makes sorted projections so effective: the
paper's meter-data experiment (section 8.2.2) compresses a few-hundred-
value ``metric`` column of 200M rows to 5 KB because, sorted, it is a
few hundred runs.  The execution engine can also aggregate directly on
runs without expanding them (section 6.1), which
:meth:`RleEncoding.iter_runs` supports.
"""

from __future__ import annotations

from ..serde import read_uvarint, read_value, write_uvarint, write_value
from .base import Encoding, register


class RleEncoding(Encoding):
    """(value, run-length) pairs; applies to any type."""

    name = "RLE"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        index = 0
        total = len(values)
        while index < total:
            value = values[index]
            run = index + 1
            while run < total and values[run] == value:
                run += 1
            write_value(out, value)
            write_uvarint(out, run - index)
            index = run
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        values: list = []
        offset = 0
        while len(values) < count:
            value, offset = read_value(data, offset)
            length, offset = read_uvarint(data, offset)
            values.extend([value] * length)
        return values

    def iter_runs(self, data: bytes, count: int):
        """Yield ``(value, run_length)`` pairs without materializing rows.

        This is the hook that lets GroupBy and Scan operate directly on
        encoded data.
        """
        emitted = 0
        offset = 0
        while emitted < count:
            value, offset = read_value(data, offset)
            length, offset = read_uvarint(data, offset)
            emitted += length
            yield value, length

    @staticmethod
    def run_count(values: list) -> int:
        """Number of runs in ``values`` (the encoded size driver)."""
        runs = 0
        previous = object()
        for value in values:
            if value != previous:
                runs += 1
                previous = value
        return runs


RLE = register(RleEncoding())
