"""AUTO encoding selection.

    Auto: The system automatically picks the most advantageous encoding
    type based on properties of the data itself.  This type is the
    default and is used when insufficient usage examples are known.
    (section 3.4.1)

Selection is *empirical*: every applicable concrete encoding is trial-
run on (a sample of) the block and the smallest output wins.  The
paper credits exactly this empirical approach for users essentially
never overriding the Database Designer's encoding choices
(section 6.3).
"""

from __future__ import annotations

from ...types import DataType
from .base import ENCODINGS, Encoding
from .plain import COMPRESSED_PLAIN, PLAIN

#: Concrete encodings AUTO chooses among, in tie-break preference order
#: (structured encodings first: they keep operate-on-encoded-data
#: opportunities that an opaque zlib blob does not).
CANDIDATE_NAMES = (
    "RLE",
    "COMMONDELTA_COMP",
    "DELTARANGE_COMP",
    "DELTAVAL",
    "BLOCK_DICT",
    "COMPRESSED_PLAIN",
    "PLAIN",
)

#: Trial-encode at most this many values when choosing.
SAMPLE_SIZE = 4096


def choose_encoding(dtype: DataType, values: list) -> Encoding:
    """Pick the smallest applicable encoding for ``values`` of ``dtype``.

    Returns a concrete encoding (never AUTO itself).  An empty block
    gets PLAIN.
    """
    sample = [v for v in values[:SAMPLE_SIZE] if v is not None]
    if not sample:
        return PLAIN
    best = PLAIN
    best_size = None
    for name in CANDIDATE_NAMES:
        encoding = ENCODINGS[name]
        if not encoding.supports(dtype, sample):
            continue
        size = len(encoding.encode(sample))
        if best_size is None or size < best_size:
            best = encoding
            best_size = size
    return best


class AutoEncoding(Encoding):
    """Per-block empirical chooser.

    Encodes with the best concrete encoding and prefixes a tag byte so
    decode knows which one was used.  The tag is the index into
    :data:`CANDIDATE_NAMES`.
    """

    name = "AUTO"

    def encode(self, values: list) -> bytes:
        # Type is inferred from the values themselves here; the block
        # writer passes the declared type when it calls choose_encoding
        # directly, which is the normal path.
        from ...types import FLOAT, INTEGER, VARCHAR

        if values and isinstance(values[0], int) and not isinstance(values[0], bool):
            dtype = INTEGER
        elif values and isinstance(values[0], float):
            dtype = FLOAT
        else:
            dtype = VARCHAR
        chosen = choose_encoding(dtype, values)
        tag = CANDIDATE_NAMES.index(chosen.name)
        return bytes([tag]) + chosen.encode(values)

    def decode(self, data: bytes, count: int) -> list:
        chosen = ENCODINGS[CANDIDATE_NAMES[data[0]]]
        return chosen.decode(data[1:], count)


from .base import register  # noqa: E402  (registration after class defs)

AUTO = register(AutoEncoding())
