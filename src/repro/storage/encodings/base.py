"""Encoding interface and registry.

Each column in each projection has a specific encoding scheme
(section 3.4).  An :class:`Encoding` turns a block of non-NULL values
into bytes and back.  NULL handling lives one layer up (the block
writer strips NULLs into a presence bitmap before encoding), so
encodings only ever see concrete values.

Encodings are registered by name in :data:`ENCODINGS`; the ``AUTO``
pseudo-encoding picks the cheapest applicable one per column by
empirical trial (the same mechanism the Database Designer's storage
optimization phase uses, section 6.3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ...errors import EncodingError
from ...types import DataType


class Encoding(ABC):
    """A reversible block codec for a list of non-NULL SQL values."""

    #: Registry / SQL name of the encoding (e.g. ``"RLE"``).
    name: str = ""

    @abstractmethod
    def encode(self, values: list[object]) -> bytes:
        """Encode ``values`` (no NULLs) into a byte string."""

    @abstractmethod
    def decode(self, data: bytes, count: int) -> list[object]:
        """Decode ``count`` values from ``data``."""

    def supports(self, dtype: DataType, values: list[object]) -> bool:
        """Whether this encoding can represent ``values`` of ``dtype``.

        Encodings with structural restrictions (integers only, must
        have few distinct values, ...) override this.  ``values`` may
        be a sample.
        """
        return True

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<Encoding {self.name}>"


#: name -> Encoding instance, populated by :func:`register`.
ENCODINGS: dict[str, Encoding] = {}  # concurrency: immutable


def register(encoding: Encoding) -> Encoding:
    """Add ``encoding`` to the global registry (module-import time)."""
    if encoding.name in ENCODINGS:
        raise EncodingError(f"duplicate encoding {encoding.name!r}")
    ENCODINGS[encoding.name] = encoding
    return encoding


def encoding_by_name(name: str) -> Encoding:
    """Look up a registered encoding by case-insensitive name."""
    try:
        return ENCODINGS[name.upper()]
    except KeyError:
        raise EncodingError(f"unknown encoding {name!r}") from None


def values_are_integral(values: list[object]) -> bool:
    """True when every value is an int (and not a bool)."""
    return all(isinstance(v, int) and not isinstance(v, bool) for v in values)


def values_are_float(values: list[object]) -> bool:
    """True when every value is a float."""
    return all(isinstance(v, float) for v in values)
