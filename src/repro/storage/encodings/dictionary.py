"""Block Dictionary encoding.

    Block Dictionary: Within a data block, distinct column values are
    stored in a dictionary and actual values are replaced with
    references to the dictionary.  This type is best for few-valued,
    unsorted columns such as stock prices.  (section 3.4.1)

The dictionary is block-local (no global dictionary to maintain, so
ROS containers remain immutable and self-contained) and references are
bit-packed to the smallest width that covers the dictionary size.
"""

from __future__ import annotations

from ...types import DataType
from ..serde import (
    bit_width_for,
    pack_bits,
    read_uvarint,
    read_value,
    unpack_bits,
    write_uvarint,
    write_value,
)
from .base import Encoding, register


class BlockDictionaryEncoding(Encoding):
    """Block-local dictionary with bit-packed codes; any type."""

    name = "BLOCK_DICT"

    #: Refuse to build dictionaries beyond this many entries; a column
    #: with more distinct values per block is not "few-valued".
    max_dictionary_size = 4096

    def encode(self, values: list) -> bytes:
        codes = []
        dictionary: dict = {}
        entries: list = []
        for value in values:
            code = dictionary.get(value)
            if code is None:
                code = len(entries)
                dictionary[value] = code
                entries.append(value)
            codes.append(code)
        out = bytearray()
        write_uvarint(out, len(entries))
        for entry in entries:
            write_value(out, entry)
        width = bit_width_for(max(len(entries) - 1, 0))
        write_uvarint(out, width)
        out += pack_bits(codes, width)
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        entries, codes = self.decode_parts(data, count)
        return [entries[code] for code in codes]

    def decode_parts(self, data: bytes, count: int) -> tuple[list, list[int]]:
        """Decode to ``(entries, codes)`` without mapping codes to values.

        The execution engine's dictionary kernels want the dictionary
        and the code list separately (test each entry once, compare
        codes as integers).
        """
        size, offset = read_uvarint(data, 0)
        entries = []
        for _ in range(size):
            entry, offset = read_value(data, offset)
            entries.append(entry)
        width, offset = read_uvarint(data, offset)
        codes = unpack_bits(data[offset:], width, count)
        return entries, codes

    def supports(self, dtype: DataType, values: list) -> bool:
        if not values:
            return True
        sample = values[: self.max_dictionary_size + 1]
        try:
            distinct = len(set(sample))
        except TypeError:  # pragma: no cover - defensive
            return False
        return distinct <= self.max_dictionary_size


BLOCK_DICT = register(BlockDictionaryEncoding())
