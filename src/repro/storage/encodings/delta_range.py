"""Compressed Delta Range encoding.

    Compressed Delta Range: Stores each value as a delta from the
    previous one.  This type is ideal for many-valued float columns
    that are either sorted or confined to a range.  (section 3.4.1)

Integers are stored as zigzag varint deltas from the previous value.
Floats are first reinterpreted as their raw 64-bit patterns and the
*patterns* are delta-coded — unlike arithmetic float deltas this is
exactly reversible, and neighbouring floats in a sorted or
range-confined column share high-order bits so their pattern deltas
are small.  Either stream is then run through zlib (the "compressed"
part).
"""

from __future__ import annotations

import struct
import zlib

from ...types import DataType
from ..serde import read_svarint, write_svarint
from .base import Encoding, register, values_are_float, values_are_integral


def float_to_ordered_int(value: float) -> int:
    """Reinterpret a double as a sign-magnitude-ordered 64-bit integer.

    The mapping is monotone in the float ordering (NaNs aside), so
    sorted floats produce monotone integers with small deltas.
    """
    raw = struct.unpack("<q", struct.pack("<d", value))[0]
    return raw if raw >= 0 else raw ^ 0x7FFFFFFFFFFFFFFF


def ordered_int_to_float(raw: int) -> float:
    """Inverse of :func:`float_to_ordered_int`."""
    raw = raw if raw >= 0 else raw ^ 0x7FFFFFFFFFFFFFFF
    return struct.unpack("<d", struct.pack("<q", raw))[0]


class CompressedDeltaRangeEncoding(Encoding):
    """Delta-from-previous plus zlib; numeric types only."""

    name = "DELTARANGE_COMP"

    _INT_TAG = 0
    _FLOAT_TAG = 1

    def encode(self, values: list) -> bytes:
        out = bytearray()
        if values and isinstance(values[0], float):
            out.append(self._FLOAT_TAG)
            stream = (float_to_ordered_int(value) for value in values)
        else:
            out.append(self._INT_TAG)
            stream = iter(values)
        previous = 0
        for value in stream:
            write_svarint(out, value - previous)
            previous = value
        return zlib.compress(bytes(out), level=6)

    def decode(self, data: bytes, count: int) -> list:
        raw = zlib.decompress(data)
        if count == 0:
            return []
        is_float = raw[0] == self._FLOAT_TAG
        offset = 1
        values: list = []
        previous = 0
        for _ in range(count):
            delta, offset = read_svarint(raw, offset)
            previous += delta
            values.append(ordered_int_to_float(previous) if is_float else previous)
        return values

    def supports(self, dtype: DataType, values: list) -> bool:
        if dtype.integral:
            return values_are_integral(values)
        return values_are_float(values) or values_are_integral(values)


DELTARANGE_COMP = register(CompressedDeltaRangeEncoding())
