"""Compressed Common Delta encoding.

    Compressed Common Delta: Builds a dictionary of all the deltas in
    the block and then stores indexes into the dictionary using entropy
    coding.  This type is best for sorted data with predictable
    sequences and occasional sequence breaks.  For example, timestamps
    recorded at periodic intervals or primary keys.  (section 3.4.1)

A periodic timestamp column has essentially one delta (the interval)
plus a handful of breaks, so the delta dictionary is tiny and the
bit-packed, zlib-entropy-coded index stream collapses to almost
nothing — this is how the meter experiment (section 8.2.2) stores a
collection-timestamp column in a fraction of its raw size.
"""

from __future__ import annotations

import zlib

from ...types import DataType
from ..serde import (
    bit_width_for,
    pack_bits,
    read_svarint,
    read_uvarint,
    unpack_bits,
    write_svarint,
    write_uvarint,
)
from .base import Encoding, register, values_are_integral


class CompressedCommonDeltaEncoding(Encoding):
    """Delta dictionary + entropy-coded indexes; integers only."""

    name = "COMMONDELTA_COMP"

    #: A block whose consecutive deltas exceed this many distinct values
    #: has no "common" deltas and should use another encoding.
    max_delta_dictionary = 65536

    def encode(self, values: list) -> bytes:
        out = bytearray()
        write_svarint(out, values[0] if values else 0)
        deltas = [values[i] - values[i - 1] for i in range(1, len(values))]
        dictionary: dict[int, int] = {}
        entries: list[int] = []
        codes = []
        for delta in deltas:
            code = dictionary.get(delta)
            if code is None:
                code = len(entries)
                dictionary[delta] = code
                entries.append(delta)
            codes.append(code)
        write_uvarint(out, len(entries))
        for entry in entries:
            write_svarint(out, entry)
        width = bit_width_for(max(len(entries) - 1, 0))
        write_uvarint(out, width)
        out += pack_bits(codes, width)
        return zlib.compress(bytes(out), level=6)

    def decode(self, data: bytes, count: int) -> list:
        if count == 0:
            return []
        raw = zlib.decompress(data)
        first, offset = read_svarint(raw, 0)
        size, offset = read_uvarint(raw, offset)
        entries = []
        for _ in range(size):
            entry, offset = read_svarint(raw, offset)
            entries.append(entry)
        width, offset = read_uvarint(raw, offset)
        codes = unpack_bits(raw[offset:], width, count - 1)
        values = [first]
        current = first
        for code in codes:
            current += entries[code]
            values.append(current)
        return values

    def supports(self, dtype: DataType, values: list) -> bool:
        if not (dtype.integral and values_are_integral(values)):
            return False
        if len(values) < 2:
            return True
        sample_deltas = {
            values[i] - values[i - 1] for i in range(1, min(len(values), 8192))
        }
        return len(sample_deltas) <= self.max_delta_dictionary


COMMONDELTA_COMP = register(CompressedCommonDeltaEncoding())
