"""Delta Value encoding.

    Delta Value: Data is recorded as a difference from the smallest
    value in a data block.  This type is best used for many-valued,
    unsorted integer or integer-based columns.  (section 3.4.1)

Each block stores its minimum once, then every value as an unsigned
varint offset from that minimum.  Works for INTEGER/DATE/TIMESTAMP
columns (the "integer-based" types).
"""

from __future__ import annotations

from ...types import DataType
from ..serde import read_svarint, read_uvarint, write_svarint, write_uvarint
from .base import Encoding, register, values_are_integral


class DeltaValueEncoding(Encoding):
    """Offset-from-block-minimum varints; integers only."""

    name = "DELTAVAL"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        if not values:
            return bytes(out)
        minimum = min(values)
        write_svarint(out, minimum)
        for value in values:
            write_uvarint(out, value - minimum)
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        if count == 0:
            return []
        minimum, offset = read_svarint(data, 0)
        values = []
        for _ in range(count):
            delta, offset = read_uvarint(data, offset)
            values.append(minimum + delta)
        return values

    def supports(self, dtype: DataType, values: list) -> bool:
        return dtype.integral and values_are_integral(values)


DELTAVAL = register(DeltaValueEncoding())
