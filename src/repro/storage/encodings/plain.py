"""Plain (uncompressed) encoding, with an optional zlib variant.

``PLAIN`` stores every value as a self-describing record; it is the
fallback when no structured encoding applies.  ``COMPRESSED_PLAIN``
runs the plain bytes through zlib, standing in for the block-level
LZ-style compression a production column store layers under its
structured encodings.
"""

from __future__ import annotations

import zlib

from ..serde import read_value, write_value
from .base import Encoding, register


class PlainEncoding(Encoding):
    """Self-describing value-at-a-time storage; applies to any type."""

    name = "PLAIN"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        for value in values:
            write_value(out, value)
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        values = []
        offset = 0
        for _ in range(count):
            value, offset = read_value(data, offset)
            values.append(value)
        return values


class CompressedPlainEncoding(PlainEncoding):
    """Plain encoding with a zlib entropy stage on top."""

    name = "COMPRESSED_PLAIN"

    def encode(self, values: list) -> bytes:
        return zlib.compress(super().encode(values), level=6)

    def decode(self, data: bytes, count: int) -> list:
        return super().decode(zlib.decompress(data), count)


PLAIN = register(PlainEncoding())
COMPRESSED_PLAIN = register(CompressedPlainEncoding())
