"""Delete vectors.

    Data in Vertica is never modified in place.  When a tuple is
    deleted or updated from either the WOS or ROS, Vertica creates a
    delete vector [...] a list of positions of rows that have been
    deleted.  Delete vectors are stored in the same format as user
    data: they are first written to a DVWOS in memory, then moved to
    DVROS containers on disk by the tuple mover and stored using
    efficient compression mechanisms.  (section 3.7.1)

A :class:`DeleteVector` pairs each deleted position with the epoch the
delete committed in (section 5: "each delete marker is paired with the
logical time the row was deleted"), which is what makes historical
snapshot queries and AHM-based purging possible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .. import faults
from ..lint import sanitizer
from ..types import INTEGER
from . import fsio
from .column_file import ColumnReader, ColumnWriter


@dataclass
class DeleteVector:
    """Deleted (position, epoch) pairs for one target store.

    ``target_container`` is a ROS container id, or ``None`` when the
    vector applies to the WOS.  Positions are kept sorted; merging two
    vectors for the same target is a sorted merge.
    """

    target_container: int | None
    positions: list[int] = field(default_factory=list)
    epochs: list[int] = field(default_factory=list)

    def add(self, position: int, epoch: int) -> None:
        """Record the deletion of ``position`` at ``epoch``."""
        sanitizer.check_no_double_delete(
            self.target_container, self.positions, position
        )
        self.positions.append(position)
        self.epochs.append(epoch)

    def sort(self) -> None:
        """Normalize to position order."""
        if self.positions != sorted(self.positions):
            pairs = sorted(zip(self.positions, self.epochs))
            self.positions = [p for p, _ in pairs]
            self.epochs = [e for _, e in pairs]

    @property
    def count(self) -> int:
        """Number of deleted positions recorded."""
        return len(self.positions)

    def as_dict(self) -> dict[int, int]:
        """position -> delete epoch mapping."""
        return dict(zip(self.positions, self.epochs))

    def merged_with(self, other: "DeleteVector") -> "DeleteVector":
        """Union of two vectors for the same target."""
        merged = DeleteVector(
            self.target_container,
            self.positions + other.positions,
            self.epochs + other.epochs,
        )
        merged.sort()
        return merged

    # -- persistence (DVROS) -------------------------------------------

    def write(self, path: str) -> None:
        """Persist as a DVROS: the same column-file format as user data.

        Positions are ascending integers (delta-friendly) and epochs
        are near-constant (RLE-friendly) — the "efficient compression
        mechanisms" of section 3.7.1 fall out of reusing the encodings.
        Committed with the same stage-then-rename protocol as ROS
        containers, so a crash never leaves a half-written vector.
        """
        self.sort()
        staged = fsio.staging_dir(path)
        position_writer = ColumnWriter(INTEGER, "COMMONDELTA_COMP")
        position_writer.extend(self.positions)
        epoch_writer = ColumnWriter(INTEGER, "RLE")
        epoch_writer.extend(self.epochs)
        staged_files = []
        for name, writer in (("positions", position_writer), ("epochs", epoch_writer)):
            data, index = writer.finish()
            for suffix, payload in ((".dat", data), (".pidx", index)):
                file_path = os.path.join(staged, f"{name}{suffix}")
                fsio.write_bytes(file_path, payload)
                staged_files.append(file_path)
        fsio.write_text(
            os.path.join(staged, "target.txt"),
            "wos" if self.target_container is None else str(self.target_container),
        )
        faults.inject("dv.publish", files=staged_files)
        fsio.publish_dir(staged, path)

    @classmethod
    def load(cls, path: str) -> "DeleteVector":
        """Load a persisted DVROS."""
        columns = {}
        for name in ("positions", "epochs"):
            with open(os.path.join(path, f"{name}.dat"), "rb") as handle:
                data = handle.read()
            with open(os.path.join(path, f"{name}.pidx"), "rb") as handle:
                index = handle.read()
            columns[name] = ColumnReader(data, index).read_all()
        with open(os.path.join(path, "target.txt")) as handle:
            raw = handle.read().strip()
        target = None if raw == "wos" else int(raw)
        return cls(target, columns["positions"], columns["epochs"])


def combined_deletes(vectors: list[DeleteVector]) -> dict[int, int]:
    """Fold several delete vectors into one position -> epoch map.

    When the same position appears twice (possible after recovery
    replays), the earliest delete epoch wins.
    """
    deletes: dict[int, int] = {}
    for vector in vectors:
        for position, epoch in zip(vector.positions, vector.epochs):
            current = deletes.get(position)
            if current is None or epoch < current:
                deletes[position] = epoch
    return deletes
