"""Write Optimized Store.

    Data in the WOS is solely in memory [...] The WOS's primary purpose
    is to buffer small data inserts, deletes and updates so that writes
    to physical structures contain a sufficient numbers of rows to
    amortize the cost of the writing.  (section 3.7)

Data in the WOS is *not* encoded or compressed, but it is segmented by
the projection's segmentation expression (each simulated node's WOS
only ever holds that node's rows).  Rows carry their commit epoch so
snapshot reads work uniformly across WOS and ROS.  A capacity cap
models WOS saturation: when it is exceeded the storage manager routes
new loads directly to the ROS (section 4 / section 7, "Direct Loading
to the ROS").
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default per-projection WOS capacity, in rows.  Deliberately small so
#: the moveout/overflow machinery is exercised at test scale.
DEFAULT_WOS_CAPACITY = 65536


@dataclass
class WriteOptimizedStore:
    """In-memory row buffer for one projection on one node.

    Positions are ordinals into the current buffer; they are only
    meaningful until the next moveout (which drains the whole buffer).
    """

    capacity: int = DEFAULT_WOS_CAPACITY
    rows: list[dict] = field(default_factory=list)
    epochs: list[int] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        """Rows currently buffered."""
        return len(self.rows)

    def would_overflow(self, incoming: int) -> bool:
        """Whether adding ``incoming`` rows exceeds capacity."""
        return len(self.rows) + incoming > self.capacity

    def insert(self, rows: list[dict], epoch: int) -> None:
        """Buffer committed rows stamped with their commit epoch."""
        self.rows.extend(rows)
        self.epochs.extend([epoch] * len(rows))

    def drain(self) -> tuple[list[dict], list[int]]:
        """Remove and return all buffered (rows, epochs) — the moveout
        primitive.  The WOS is empty afterwards."""
        rows, epochs = self.rows, self.epochs
        self.rows, self.epochs = [], []
        return rows, epochs

    def truncate_after_epoch(self, epoch: int) -> int:
        """Drop rows committed after ``epoch``; returns how many were
        dropped.  Used by recovery's initial truncation to the LGE."""
        from ..lint import sanitizer

        past = sum(1 for e in self.epochs if e > epoch)
        keep = [i for i, e in enumerate(self.epochs) if e <= epoch]
        dropped = len(self.rows) - len(keep)
        self.rows = [self.rows[i] for i in keep]
        self.epochs = [self.epochs[i] for i in keep]
        sanitizer.check_wos_truncate(epoch, past, dropped, self.epochs)
        return dropped

    def visible(self, epoch: int, deleted_positions: dict[int, int]):
        """Yield ``(position, row)`` pairs visible at snapshot ``epoch``.

        ``deleted_positions`` maps WOS position -> delete epoch.
        """
        for position, (row, row_epoch) in enumerate(zip(self.rows, self.epochs)):
            if row_epoch > epoch:
                continue
            delete_epoch = deleted_positions.get(position)
            if delete_epoch is not None and delete_epoch <= epoch:
                continue
            yield position, row
