"""Read Optimized Store containers.

    Data in the ROS is physically stored in multiple ROS containers on
    a standard file system.  Each ROS container logically contains some
    number of complete tuples sorted by the projection's sort order,
    stored as a pair of files per column.  (section 3.7)

A container is a directory holding ``<column>.dat`` + ``<column>.pidx``
per column, one implicit ``_epoch`` column (the paper's 64-bit epoch
timestamp, section 5), and a ``meta.json``.  Containers are immutable
after creation: deletes go to delete vectors, reorganization goes
through the tuple mover, and backup can hard-link the files safely.

Containers commit atomically: every file is staged in a sibling
``.tmp`` directory, a CRC32 per file is recorded in ``meta.json``
(written last, self-checksummed via ``meta_crc``), and a single
``os.replace`` rename publishes the directory.  A crash at any point
leaves either an ignorable ``.tmp`` orphan or a complete container;
readers verify each file's CRC on first access, so corruption raises
:class:`~repro.errors.CorruptContainerError` instead of ever serving
wrong rows.  ``merged_from`` records mergeout inputs so a crash
between publish and retire is resolved idempotently by the scavenger.

The rarely-used hybrid row-column mode ("grouping multiple columns
together into the same file", section 3.7) is supported through
``column_groups``; grouped columns are stored row-major with plain
value serialization, which demonstrates exactly the compression
penalty the paper describes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .. import faults
from ..errors import CorruptContainerError, StorageError
from ..lint import sanitizer
from ..monitor import METRICS
from ..projections import ProjectionDefinition
from . import fsio
from .column_file import ColumnReader, ColumnWriter
from .serde import read_value, write_value

#: Name of the implicit per-row commit-epoch column.
EPOCH_COLUMN = "_epoch"


def _json_safe(value):
    """Make a partition key JSON-serializable (tuples -> tagged lists)."""
    if isinstance(value, tuple):
        return {"__tuple__": [_json_safe(v) for v in value]}
    return value


def _json_restore(value):
    """Inverse of :func:`_json_safe`."""
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_json_restore(v) for v in value["__tuple__"])
    return value


@dataclass
class ContainerMeta:
    """Descriptive metadata persisted in a container's ``meta.json``."""

    container_id: int
    projection: str
    row_count: int
    partition_key: object
    local_segment: int
    #: Smallest / largest commit epoch of any row in the container.
    min_epoch: int
    max_epoch: int
    columns: list[str]
    column_groups: list[list[str]]
    #: file name -> CRC32 of its committed contents (meta.json excluded;
    #: the metadata record checksums itself via ``meta_crc``).
    checksums: dict[str, int] = field(default_factory=dict)
    #: Container ids this one replaced in a mergeout; the scavenger
    #: retires any of them still on disk (crash-between-publish-and-
    #: retire resolution, section 4.3).
    merged_from: list[int] = field(default_factory=list)

    def payload(self) -> dict:
        """JSON-serializable form, without the self-checksum."""
        return {
            "container_id": self.container_id,
            "projection": self.projection,
            "row_count": self.row_count,
            "partition_key": _json_safe(self.partition_key),
            "local_segment": self.local_segment,
            "min_epoch": self.min_epoch,
            "max_epoch": self.max_epoch,
            "columns": self.columns,
            "column_groups": self.column_groups,
            "checksums": self.checksums,
            "merged_from": self.merged_from,
        }

    def to_json(self) -> dict:
        """The full ``meta.json`` record, ``meta_crc`` included."""
        payload = self.payload()
        payload["meta_crc"] = _meta_crc(payload)
        return payload


def _meta_crc(payload: dict) -> int:
    """Self-checksum over the canonical serialization of the metadata."""
    return fsio.crc32(json.dumps(payload, sort_keys=True).encode("utf-8"))


class ROSContainer:
    """One immutable sorted run of complete tuples on disk."""

    def __init__(self, path: str, meta: ContainerMeta):
        self.path = path
        self.meta = meta
        self._readers: dict[str, ColumnReader] = {}
        self._group_cache: dict[int, dict[str, list]] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def write(
        cls,
        path: str,
        container_id: int,
        projection: ProjectionDefinition,
        rows: list[dict],
        epochs: list[int],
        partition_key=None,
        local_segment: int = 0,
        column_groups: list[list[str]] | None = None,
        merged_from: list[int] | None = None,
    ) -> "ROSContainer":
        """Create a container at ``path`` from *already sorted* rows.

        ``epochs[i]`` is the commit epoch of ``rows[i]``.  Raises
        :class:`StorageError` if the rows are not sorted by the
        projection's sort order — containers must be totally sorted.

        The commit is atomic: files are staged under ``path + ".tmp"``
        and published with one rename; a crash at any registered fault
        point leaves no partially visible container.
        """
        if len(rows) != len(epochs):
            raise StorageError("rows and epochs length mismatch")
        keys = [projection.sort_key_for(row) for row in rows]
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise StorageError("ROS container rows must be sorted by sort order")
        staged = fsio.staging_dir(path)
        checksums: dict[str, int] = {}
        column_groups = column_groups or []
        grouped = {name for group in column_groups for name in group}
        for column in projection.columns:
            if column.name in grouped:
                continue
            writer = ColumnWriter(column.dtype, column.encoding)
            writer.extend(row[column.name] for row in rows)
            cls._write_column_files(staged, column.name, writer, checksums)
        for index, group in enumerate(column_groups):
            cls._write_group_file(staged, index, group, rows, checksums)
        from ..types import INTEGER

        epoch_writer = ColumnWriter(INTEGER, "RLE")
        epoch_writer.extend(epochs)
        cls._write_column_files(staged, EPOCH_COLUMN, epoch_writer, checksums)
        meta = ContainerMeta(
            container_id=container_id,
            projection=projection.name,
            row_count=len(rows),
            partition_key=partition_key,
            local_segment=local_segment,
            min_epoch=min(epochs) if epochs else 0,
            max_epoch=max(epochs) if epochs else 0,
            columns=[column.name for column in projection.columns],
            column_groups=column_groups,
            checksums=checksums,
            merged_from=sorted(merged_from or []),
        )
        staged_files = [os.path.join(staged, name) for name in checksums]
        faults.inject("ros.write.meta", files=staged_files)
        fsio.write_json(os.path.join(staged, "meta.json"), meta.to_json())
        # validate the staged bytes (sanitizer) before the commit point,
        # so what gets published is exactly what passed the checks.
        sanitizer.check_container(cls(staged, meta))
        faults.inject("ros.publish", files=staged_files)
        fsio.publish_dir(staged, path)
        faults.inject(
            "ros.published",
            files=[os.path.join(path, name) for name in checksums],
        )
        METRICS.inc("storage.containers_written")
        METRICS.inc("storage.container_rows_written", len(rows))
        return cls(path, meta)

    @staticmethod
    def _write_column_files(
        path: str, name: str, writer: ColumnWriter, checksums: dict[str, int]
    ) -> None:
        data, index = writer.finish()
        dat_path = os.path.join(path, f"{name}.dat")
        pidx_path = os.path.join(path, f"{name}.pidx")
        checksums[f"{name}.dat"] = fsio.write_bytes(dat_path, data)
        checksums[f"{name}.pidx"] = fsio.write_bytes(pidx_path, index)
        faults.inject("ros.write.column", files=[dat_path, pidx_path])

    @staticmethod
    def _write_group_file(
        path: str,
        group_index: int,
        group: list[str],
        rows: list[dict],
        checksums: dict[str, int],
    ) -> None:
        out = bytearray()
        for row in rows:
            for name in group:
                write_value(out, row[name])
        group_path = os.path.join(path, f"_group{group_index}.dat")
        checksums[f"_group{group_index}.dat"] = fsio.write_bytes(
            group_path, bytes(out)
        )
        faults.inject("ros.write.column", files=[group_path])

    @classmethod
    def load(cls, path: str, verify_checksums: bool = True) -> "ROSContainer":
        """Open an existing container directory.

        Raises :class:`CorruptContainerError` when the metadata is
        missing/damaged or (with ``verify_checksums``) any file's
        CRC32 disagrees with the committed checksum — the condition
        the storage manager quarantines on.
        """
        meta_path = os.path.join(path, "meta.json")
        try:
            with open(meta_path) as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            raise CorruptContainerError(
                f"container {path} has no meta.json (incomplete commit?)"
            ) from None
        except (ValueError, UnicodeDecodeError, OSError) as exc:
            raise CorruptContainerError(
                f"container {path} has unreadable meta.json: {exc}"
            ) from None
        meta = cls._meta_from_json(path, raw)
        container = cls(path, meta)
        if verify_checksums:
            bad = container.verify()
            if bad:
                raise CorruptContainerError(
                    f"container {path} failed checksum verification: "
                    + ", ".join(bad)
                )
        sanitizer.check_container(container)
        return container

    @staticmethod
    def _meta_from_json(path: str, raw: dict) -> ContainerMeta:
        """Validate and deserialize a ``meta.json`` record."""
        if not isinstance(raw, dict):
            raise CorruptContainerError(
                f"container {path} meta.json is not an object"
            )
        recorded_crc = raw.pop("meta_crc", None)
        if recorded_crc is not None and recorded_crc != _meta_crc(raw):
            raise CorruptContainerError(
                f"container {path} meta.json fails its self-checksum"
            )
        try:
            return ContainerMeta(
                container_id=raw["container_id"],
                projection=raw["projection"],
                row_count=raw["row_count"],
                partition_key=_json_restore(raw["partition_key"]),
                local_segment=raw["local_segment"],
                min_epoch=raw["min_epoch"],
                max_epoch=raw["max_epoch"],
                columns=raw["columns"],
                column_groups=raw["column_groups"],
                checksums=dict(raw.get("checksums") or {}),
                merged_from=list(raw.get("merged_from") or []),
            )
        except (KeyError, TypeError) as exc:
            raise CorruptContainerError(
                f"container {path} meta.json is missing fields: {exc}"
            ) from None

    @classmethod
    def adopt(cls, source_dir: str, path: str, container_id: int) -> "ROSContainer":
        """Copy a foreign container directory (a backup image, another
        node's storage) into place at ``path`` under a new identity.

        The copy is staged and published atomically like any other
        container commit; ``meta.json`` is rewritten with the adopted
        ``container_id`` and a cleared ``merged_from`` (input ids from
        a foreign id space are meaningless here), and the result is
        loaded with full checksum verification — a damaged backup is
        rejected, never silently restored.
        """
        import shutil

        if not os.path.isdir(source_dir):
            raise StorageError(f"no container directory at {source_dir}")
        staged = fsio.staging_dir(path)
        for entry in sorted(os.listdir(source_dir)):
            shutil.copy2(
                os.path.join(source_dir, entry), os.path.join(staged, entry)
            )
        meta_path = os.path.join(staged, "meta.json")
        try:
            with open(meta_path) as handle:
                raw = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CorruptContainerError(
                f"cannot adopt {source_dir}: unreadable meta.json ({exc})"
            ) from None
        raw.pop("meta_crc", None)
        raw["container_id"] = container_id
        raw["merged_from"] = []
        raw["meta_crc"] = _meta_crc(raw)
        fsio.write_json(meta_path, raw)
        fsio.publish_dir(staged, path)
        return cls.load(path)

    def verify(self) -> list[str]:
        """Names of files whose on-disk bytes fail CRC verification.

        Empty list means the container is intact (or predates
        checksums, in which case there is nothing to verify against).
        Reads every file fresh from disk — this is the scrub primitive.
        """
        bad = []
        for name, expected in sorted(self.meta.checksums.items()):
            file_path = os.path.join(self.path, name)
            try:
                actual = fsio.crc32_file(file_path)
            except OSError:
                bad.append(f"{name} (missing)")
                continue
            if actual != expected:
                bad.append(f"{name} (crc mismatch)")
        return bad

    # -- reading ------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of tuples in the container (deleted ones included)."""
        return self.meta.row_count

    @property
    def container_id(self) -> int:
        """Node-local identifier of the container."""
        return self.meta.container_id

    def _group_of(self, name: str) -> int | None:
        for index, group in enumerate(self.meta.column_groups):
            if name in group:
                return index
        return None

    def _checked_read(self, file_name: str) -> bytes:
        """Read one container file, verifying its committed CRC32.

        This is why a bit flip can never surface as wrong query
        results: the first read of a damaged file raises
        :class:`CorruptContainerError` instead of returning bytes.
        """
        file_path = os.path.join(self.path, file_name)
        with open(file_path, "rb") as handle:
            data = handle.read()
        METRICS.inc("storage.container_files_read")
        METRICS.inc("storage.container_bytes_read", len(data))
        expected = self.meta.checksums.get(file_name)
        if expected is not None and fsio.crc32(data) != expected:
            METRICS.inc("storage.crc_failures")
            raise CorruptContainerError(
                f"container {self.path}: {file_name} fails its CRC32 "
                "(read-time corruption detection)"
            )
        return data

    def column_reader(self, name: str) -> ColumnReader:
        """Positional reader for an ungrouped column (or ``_epoch``)."""
        reader = self._readers.get(name)
        if reader is None:
            if self._group_of(name) is not None:
                raise StorageError(
                    f"column {name!r} is stored grouped; use read_column"
                )
            try:
                data = self._checked_read(f"{name}.dat")
                index = self._checked_read(f"{name}.pidx")
            except FileNotFoundError:
                raise StorageError(
                    f"container {self.path} has no column {name!r}"
                ) from None
            reader = ColumnReader(data, index)
            self._readers[name] = reader
        return reader

    def _read_group(self, group_index: int) -> dict[str, list]:
        cached = self._group_cache.get(group_index)
        if cached is None:
            group = self.meta.column_groups[group_index]
            data = self._checked_read(f"_group{group_index}.dat")
            columns: dict[str, list] = {name: [] for name in group}
            offset = 0
            for _ in range(self.meta.row_count):
                for name in group:
                    value, offset = read_value(data, offset)
                    columns[name].append(value)
            cached = columns
            self._group_cache[group_index] = cached
        return cached

    def read_column(self, name: str) -> list:
        """The full value list of a column, grouped or not."""
        group_index = self._group_of(name)
        if group_index is not None:
            return self._read_group(group_index)[name]
        return self.column_reader(name).read_all()

    def read_epochs(self) -> list[int]:
        """Per-row commit epochs."""
        return self.column_reader(EPOCH_COLUMN).read_all()

    def read_columns(self, names) -> dict[str, list]:
        """Several columns at once, as a dict of value lists."""
        return {name: self.read_column(name) for name in names}

    def column_min_max(self, name: str):
        """(min, max) of a column from index metadata (no data decode)."""
        if self._group_of(name) is not None:
            values = [v for v in self.read_column(name) if v is not None]
            if not values:
                return None, None
            return min(values), max(values)
        reader = self.column_reader(name)
        return reader.min_value(), reader.max_value()

    def may_contain(self, column: str, low, high) -> bool:
        """Container-level pruning check on one column ([22] in the
        paper: min/max stored per ROS to prune at plan time)."""
        minimum, maximum = self.column_min_max(column)
        if minimum is None and maximum is None:
            return False
        if low is not None and maximum < low:
            return False
        if high is not None and minimum > high:
            return False
        return True

    def size_bytes(self) -> int:
        """Total bytes of user data files (excluding meta.json)."""
        total = 0
        for entry in os.listdir(self.path):
            if entry == "meta.json":
                continue
            total += os.path.getsize(os.path.join(self.path, entry))
        return total

    def data_size_bytes(self) -> int:
        """Bytes of .dat files for user columns (no indexes, no epoch);
        the figure Table 3/4 compare against raw input size."""
        total = 0
        for name in self.meta.columns:
            group_index = self._group_of(name)
            if group_index is not None:
                continue
            total += os.path.getsize(os.path.join(self.path, f"{name}.dat"))
        for index in range(len(self.meta.column_groups)):
            total += os.path.getsize(os.path.join(self.path, f"_group{index}.dat"))
        return total

    def file_inventory(self) -> list[str]:
        """Names of the container's files (for the Figure 2 bench)."""
        return sorted(os.listdir(self.path))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ROSContainer {self.meta.container_id} rows={self.meta.row_count} "
            f"partition={self.meta.partition_key!r} "
            f"segment={self.meta.local_segment}>"
        )
