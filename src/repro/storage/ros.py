"""Read Optimized Store containers.

    Data in the ROS is physically stored in multiple ROS containers on
    a standard file system.  Each ROS container logically contains some
    number of complete tuples sorted by the projection's sort order,
    stored as a pair of files per column.  (section 3.7)

A container is a directory holding ``<column>.dat`` + ``<column>.pidx``
per column, one implicit ``_epoch`` column (the paper's 64-bit epoch
timestamp, section 5), and a ``meta.json``.  Containers are immutable
after creation: deletes go to delete vectors, reorganization goes
through the tuple mover, and backup can hard-link the files safely.

The rarely-used hybrid row-column mode ("grouping multiple columns
together into the same file", section 3.7) is supported through
``column_groups``; grouped columns are stored row-major with plain
value serialization, which demonstrates exactly the compression
penalty the paper describes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..errors import StorageError
from ..lint import sanitizer
from ..projections import ProjectionDefinition
from .column_file import ColumnReader, ColumnWriter
from .serde import read_value, write_value

#: Name of the implicit per-row commit-epoch column.
EPOCH_COLUMN = "_epoch"


def _json_safe(value):
    """Make a partition key JSON-serializable (tuples -> tagged lists)."""
    if isinstance(value, tuple):
        return {"__tuple__": [_json_safe(v) for v in value]}
    return value


def _json_restore(value):
    """Inverse of :func:`_json_safe`."""
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_json_restore(v) for v in value["__tuple__"])
    return value


@dataclass
class ContainerMeta:
    """Descriptive metadata persisted in a container's ``meta.json``."""

    container_id: int
    projection: str
    row_count: int
    partition_key: object
    local_segment: int
    #: Smallest / largest commit epoch of any row in the container.
    min_epoch: int
    max_epoch: int
    columns: list[str]
    column_groups: list[list[str]]


class ROSContainer:
    """One immutable sorted run of complete tuples on disk."""

    def __init__(self, path: str, meta: ContainerMeta):
        self.path = path
        self.meta = meta
        self._readers: dict[str, ColumnReader] = {}
        self._group_cache: dict[int, dict[str, list]] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def write(
        cls,
        path: str,
        container_id: int,
        projection: ProjectionDefinition,
        rows: list[dict],
        epochs: list[int],
        partition_key=None,
        local_segment: int = 0,
        column_groups: list[list[str]] | None = None,
    ) -> "ROSContainer":
        """Create a container at ``path`` from *already sorted* rows.

        ``epochs[i]`` is the commit epoch of ``rows[i]``.  Raises
        :class:`StorageError` if the rows are not sorted by the
        projection's sort order — containers must be totally sorted.
        """
        if len(rows) != len(epochs):
            raise StorageError("rows and epochs length mismatch")
        keys = [projection.sort_key_for(row) for row in rows]
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise StorageError("ROS container rows must be sorted by sort order")
        os.makedirs(path, exist_ok=True)
        column_groups = column_groups or []
        grouped = {name for group in column_groups for name in group}
        for column in projection.columns:
            if column.name in grouped:
                continue
            writer = ColumnWriter(column.dtype, column.encoding)
            writer.extend(row[column.name] for row in rows)
            cls._write_column_files(path, column.name, writer)
        for index, group in enumerate(column_groups):
            cls._write_group_file(path, index, group, rows)
        from ..types import INTEGER

        epoch_writer = ColumnWriter(INTEGER, "RLE")
        epoch_writer.extend(epochs)
        cls._write_column_files(path, EPOCH_COLUMN, epoch_writer)
        meta = ContainerMeta(
            container_id=container_id,
            projection=projection.name,
            row_count=len(rows),
            partition_key=partition_key,
            local_segment=local_segment,
            min_epoch=min(epochs) if epochs else 0,
            max_epoch=max(epochs) if epochs else 0,
            columns=[column.name for column in projection.columns],
            column_groups=column_groups,
        )
        with open(os.path.join(path, "meta.json"), "w") as handle:
            json.dump(
                {
                    "container_id": meta.container_id,
                    "projection": meta.projection,
                    "row_count": meta.row_count,
                    "partition_key": _json_safe(meta.partition_key),
                    "local_segment": meta.local_segment,
                    "min_epoch": meta.min_epoch,
                    "max_epoch": meta.max_epoch,
                    "columns": meta.columns,
                    "column_groups": meta.column_groups,
                },
                handle,
            )
        container = cls(path, meta)
        sanitizer.check_container(container)
        return container

    @staticmethod
    def _write_column_files(path: str, name: str, writer: ColumnWriter) -> None:
        data, index = writer.finish()
        with open(os.path.join(path, f"{name}.dat"), "wb") as handle:
            handle.write(data)
        with open(os.path.join(path, f"{name}.pidx"), "wb") as handle:
            handle.write(index)

    @staticmethod
    def _write_group_file(
        path: str, group_index: int, group: list[str], rows: list[dict]
    ) -> None:
        out = bytearray()
        for row in rows:
            for name in group:
                write_value(out, row[name])
        with open(os.path.join(path, f"_group{group_index}.dat"), "wb") as handle:
            handle.write(bytes(out))

    @classmethod
    def load(cls, path: str) -> "ROSContainer":
        """Open an existing container directory."""
        with open(os.path.join(path, "meta.json")) as handle:
            raw = json.load(handle)
        meta = ContainerMeta(
            container_id=raw["container_id"],
            projection=raw["projection"],
            row_count=raw["row_count"],
            partition_key=_json_restore(raw["partition_key"]),
            local_segment=raw["local_segment"],
            min_epoch=raw["min_epoch"],
            max_epoch=raw["max_epoch"],
            columns=raw["columns"],
            column_groups=raw["column_groups"],
        )
        container = cls(path, meta)
        sanitizer.check_container(container)
        return container

    # -- reading ------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of tuples in the container (deleted ones included)."""
        return self.meta.row_count

    @property
    def container_id(self) -> int:
        """Node-local identifier of the container."""
        return self.meta.container_id

    def _group_of(self, name: str) -> int | None:
        for index, group in enumerate(self.meta.column_groups):
            if name in group:
                return index
        return None

    def column_reader(self, name: str) -> ColumnReader:
        """Positional reader for an ungrouped column (or ``_epoch``)."""
        reader = self._readers.get(name)
        if reader is None:
            if self._group_of(name) is not None:
                raise StorageError(
                    f"column {name!r} is stored grouped; use read_column"
                )
            try:
                with open(os.path.join(self.path, f"{name}.dat"), "rb") as handle:
                    data = handle.read()
                with open(os.path.join(self.path, f"{name}.pidx"), "rb") as handle:
                    index = handle.read()
            except FileNotFoundError:
                raise StorageError(
                    f"container {self.path} has no column {name!r}"
                ) from None
            reader = ColumnReader(data, index)
            self._readers[name] = reader
        return reader

    def _read_group(self, group_index: int) -> dict[str, list]:
        cached = self._group_cache.get(group_index)
        if cached is None:
            group = self.meta.column_groups[group_index]
            with open(
                os.path.join(self.path, f"_group{group_index}.dat"), "rb"
            ) as handle:
                data = handle.read()
            columns: dict[str, list] = {name: [] for name in group}
            offset = 0
            for _ in range(self.meta.row_count):
                for name in group:
                    value, offset = read_value(data, offset)
                    columns[name].append(value)
            cached = columns
            self._group_cache[group_index] = cached
        return cached

    def read_column(self, name: str) -> list:
        """The full value list of a column, grouped or not."""
        group_index = self._group_of(name)
        if group_index is not None:
            return self._read_group(group_index)[name]
        return self.column_reader(name).read_all()

    def read_epochs(self) -> list[int]:
        """Per-row commit epochs."""
        return self.column_reader(EPOCH_COLUMN).read_all()

    def read_columns(self, names) -> dict[str, list]:
        """Several columns at once, as a dict of value lists."""
        return {name: self.read_column(name) for name in names}

    def column_min_max(self, name: str):
        """(min, max) of a column from index metadata (no data decode)."""
        if self._group_of(name) is not None:
            values = [v for v in self.read_column(name) if v is not None]
            if not values:
                return None, None
            return min(values), max(values)
        reader = self.column_reader(name)
        return reader.min_value(), reader.max_value()

    def may_contain(self, column: str, low, high) -> bool:
        """Container-level pruning check on one column ([22] in the
        paper: min/max stored per ROS to prune at plan time)."""
        minimum, maximum = self.column_min_max(column)
        if minimum is None and maximum is None:
            return False
        if low is not None and maximum < low:
            return False
        if high is not None and minimum > high:
            return False
        return True

    def size_bytes(self) -> int:
        """Total bytes of user data files (excluding meta.json)."""
        total = 0
        for entry in os.listdir(self.path):
            if entry == "meta.json":
                continue
            total += os.path.getsize(os.path.join(self.path, entry))
        return total

    def data_size_bytes(self) -> int:
        """Bytes of .dat files for user columns (no indexes, no epoch);
        the figure Table 3/4 compare against raw input size."""
        total = 0
        for name in self.meta.columns:
            group_index = self._group_of(name)
            if group_index is not None:
                continue
            total += os.path.getsize(os.path.join(self.path, f"{name}.dat"))
        for index in range(len(self.meta.column_groups)):
            total += os.path.getsize(os.path.join(self.path, f"_group{index}.dat"))
        return total

    def file_inventory(self) -> list[str]:
        """Names of the container's files (for the Figure 2 bench)."""
        return sorted(os.listdir(self.path))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ROSContainer {self.meta.container_id} rows={self.meta.row_count} "
            f"partition={self.meta.partition_key!r} "
            f"segment={self.meta.local_segment}>"
        )
