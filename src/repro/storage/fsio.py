"""Atomic-commit file IO for the storage layer.

Crash consistency of the ROS rests on one protocol (section 4.3's
durability story, restated for a file system): stage every file of a
container (or delete vector) inside a sibling ``<dir>.tmp`` directory,
record a CRC32 per file in the metadata written *last*, then publish
with a single atomic ``os.replace`` rename.  A crash before the rename
leaves only a ``.tmp`` orphan for the scavenger to delete; a crash
after it leaves a complete, verifiable directory.

This module is the only place in ``storage/`` and ``tuple_mover/``
allowed to open files for writing — replint rule R7 enforces that
every other write goes through these helpers, so no code path can
reintroduce a non-atomic, non-checksummed write.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib

#: Suffix of staging directories; scavenge deletes orphans bearing it.
TMP_SUFFIX = ".tmp"


def crc32(data: bytes) -> int:
    """Checksum recorded per file in container metadata."""
    return zlib.crc32(data) & 0xFFFFFFFF


def crc32_file(path: str) -> int:
    """CRC32 of a file's current on-disk contents."""
    with open(path, "rb") as handle:
        return crc32(handle.read())


def write_bytes(path: str, data: bytes) -> int:
    """Write ``data`` to ``path`` and return its CRC32.

    Only safe inside a staging directory: the surrounding directory
    rename, not this write, is the commit point.
    """
    with open(path, "wb") as handle:  # replint: disable=R7
        handle.write(data)
    return crc32(data)


def write_text(path: str, text: str) -> int:
    """UTF-8 text variant of :func:`write_bytes`."""
    return write_bytes(path, text.encode("utf-8"))


def write_json(path: str, payload: dict) -> int:
    """Serialize ``payload`` as JSON into the staging directory."""
    return write_text(path, json.dumps(payload))


def stage_file(final_path: str) -> str:
    """The staging path for a single-file atomic publish.

    Single-file twin of :func:`staging_dir`: write the complete new
    contents to the returned ``<final>.tmp`` path (via
    :func:`write_bytes`), then commit with :func:`publish_file`.  Any
    stale staging file from an earlier crash is removed first.
    """
    tmp = final_path + TMP_SUFFIX
    if os.path.exists(tmp):
        os.remove(tmp)
    return tmp


def publish_file(tmp_path: str, final_path: str) -> None:
    """Atomically publish a fully staged file (the commit point).

    ``os.replace`` is atomic on POSIX: a crash before it leaves only
    the ``.tmp`` orphan; a crash after it leaves the complete new file.
    The write-ahead journal routes every segment and checkpoint write
    through this pair.
    """
    os.replace(tmp_path, final_path)


def staging_dir(final_path: str) -> str:
    """Create (fresh) and return the staging directory for ``final_path``."""
    tmp = final_path + TMP_SUFFIX
    if os.path.isdir(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    return tmp


def publish_dir(tmp_path: str, final_path: str) -> None:
    """Atomically publish a fully staged directory (the commit point)."""
    if os.path.isdir(final_path):
        shutil.rmtree(final_path)
    os.replace(tmp_path, final_path)


def is_staging_dir(name: str) -> bool:
    """Whether a directory entry is an (orphanable) staging directory."""
    return name.endswith(TMP_SUFFIX)
