"""Recursive-descent SQL parser."""

from __future__ import annotations

import datetime as _dt

from ..errors import SqlSyntaxError
from ..types import date_to_days, timestamp_to_seconds
from . import ast
from .lexer import Token, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_WINDOW_ONLY = {"ROW_NUMBER", "RANK", "DENSE_RANK"}


class Parser:
    """One-statement-at-a-time recursive descent parser."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.peek().matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            raise SqlSyntaxError(
                f"expected {value or kind}, found {actual.value or actual.kind!r} "
                f"at position {actual.position}"
            )
        return token

    def accept_keyword(self, *words: str) -> bool:
        saved = self.position
        for word in words:
            if not self.accept("keyword", word):
                self.position = saved
                return False
        return True

    # -- entry points -----------------------------------------------------------

    def parse_statement(self):
        """Parse exactly one statement."""
        statement = self._statement()
        self.accept("op", ";")
        self.expect("eof")
        return statement

    def _statement(self):
        token = self.peek()
        if token.matches("keyword", "EXPLAIN"):
            self.advance()
            analyze = self.accept("keyword", "ANALYZE") is not None
            return ast.ExplainStatement(self._select(), analyze=analyze)
        if token.matches("keyword", "PROFILE"):
            self.advance()
            return ast.ExplainStatement(self._select(), analyze=True)
        if token.matches("keyword", "AT") or token.matches("keyword", "SELECT"):
            return self._select()
        if token.matches("keyword", "INSERT"):
            return self._insert()
        if token.matches("keyword", "UPDATE"):
            return self._update()
        if token.matches("keyword", "DELETE"):
            return self._delete()
        if token.matches("keyword", "CREATE"):
            self.advance()
            if self.peek().matches("keyword", "TABLE"):
                return self._create_table()
            if self.peek().matches("keyword", "PROJECTION"):
                return self._create_projection()
            raise SqlSyntaxError("expected TABLE or PROJECTION after CREATE")
        if token.matches("keyword", "DROP"):
            self.advance()
            self.expect("keyword", "TABLE")
            return ast.DropTableStatement(self.expect("ident").value)
        if token.matches("keyword", "COPY"):
            return self._copy()
        raise SqlSyntaxError(f"cannot parse statement starting with {token.value!r}")

    # -- SELECT --------------------------------------------------------------------

    def _select(self) -> ast.SelectStatement:
        at_epoch = None
        if self.accept("keyword", "AT"):
            self.expect("keyword", "EPOCH")
            at_epoch = int(self.expect("number").value)
        self.expect("keyword", "SELECT")
        distinct = bool(self.accept("keyword", "DISTINCT"))
        items = [self._select_item()]
        while self.accept("op", ","):
            items.append(self._select_item())
        statement = ast.SelectStatement(
            items=items, distinct=distinct, at_epoch=at_epoch
        )
        if self.accept("keyword", "FROM"):
            statement.from_tables.append(self._table_ref())
            while True:
                if self.accept("op", ","):
                    statement.from_tables.append(self._table_ref())
                    continue
                join_type = self._join_type()
                if join_type is None:
                    break
                table = self._table_ref()
                condition = None
                if self.accept("keyword", "ON"):
                    condition = self._expr()
                statement.joins.append(
                    ast.JoinClause(join_type, table, condition)
                )
        if self.accept("keyword", "WHERE"):
            statement.where = self._expr()
        if self.accept_keyword("GROUP", "BY"):
            statement.group_by.append(self._expr())
            while self.accept("op", ","):
                statement.group_by.append(self._expr())
        if self.accept("keyword", "HAVING"):
            statement.having = self._expr()
        if self.accept_keyword("ORDER", "BY"):
            statement.order_by.append(self._order_item())
            while self.accept("op", ","):
                statement.order_by.append(self._order_item())
        if self.accept("keyword", "LIMIT"):
            statement.limit = int(self.expect("number").value)
        if self.accept("keyword", "OFFSET"):
            statement.offset = int(self.expect("number").value)
        return statement

    def _select_item(self) -> ast.SelectItem:
        if self.peek().matches("op", "*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        if (
            self.peek().kind == "ident"
            and self.peek(1).matches("op", ".")
            and self.peek(2).matches("op", "*")
        ):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(qualifier))
        expr = self._expr()
        alias = None
        if self.accept("keyword", "AS"):
            alias = self._name()
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def _name(self) -> str:
        token = self.peek()
        if token.kind in ("ident",) or token.kind == "keyword":
            self.advance()
            return token.value if token.kind == "ident" else token.value.lower()
        raise SqlSyntaxError(f"expected name, found {token.value!r}")

    def _table_ref(self) -> ast.TableRef:
        table = self.expect("ident").value
        # schema-qualified names (v_monitor.query_profiles)
        while self.accept("op", "."):
            table += "." + self.expect("ident").value
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("ident").value
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return ast.TableRef(table, alias)

    def _join_type(self) -> str | None:
        for keywords, join_type in (
            (("INNER", "JOIN"), "INNER"),
            (("LEFT", "OUTER", "JOIN"), "LEFT"),
            (("LEFT", "JOIN"), "LEFT"),
            (("RIGHT", "OUTER", "JOIN"), "RIGHT"),
            (("RIGHT", "JOIN"), "RIGHT"),
            (("FULL", "OUTER", "JOIN"), "FULL"),
            (("FULL", "JOIN"), "FULL"),
            (("SEMI", "JOIN"), "SEMI"),
            (("ANTI", "JOIN"), "ANTI"),
            (("JOIN",), "INNER"),
        ):
            if self.accept_keyword(*keywords):
                return join_type
        return None

    def _order_item(self) -> tuple[ast.SqlExpr, bool]:
        expr = self._expr()
        if self.accept("keyword", "DESC"):
            return expr, False
        self.accept("keyword", "ASC")
        return expr, True

    # -- DML --------------------------------------------------------------------------

    def _insert(self) -> ast.InsertStatement:
        self.expect("keyword", "INSERT")
        self.expect("keyword", "INTO")
        table = self.expect("ident").value
        columns: list[str] = []
        if self.accept("op", "("):
            columns.append(self.expect("ident").value)
            while self.accept("op", ","):
                columns.append(self.expect("ident").value)
            self.expect("op", ")")
        self.expect("keyword", "VALUES")
        rows = [self._value_row()]
        while self.accept("op", ","):
            rows.append(self._value_row())
        return ast.InsertStatement(table, columns, rows)

    def _value_row(self) -> list[ast.SqlExpr]:
        self.expect("op", "(")
        values = [self._expr()]
        while self.accept("op", ","):
            values.append(self._expr())
        self.expect("op", ")")
        return values

    def _update(self) -> ast.UpdateStatement:
        self.expect("keyword", "UPDATE")
        table = self.expect("ident").value
        self.expect("keyword", "SET")
        assignments: dict[str, ast.SqlExpr] = {}
        while True:
            column = self.expect("ident").value
            self.expect("op", "=")
            assignments[column] = self._expr()
            if not self.accept("op", ","):
                break
        where = self._expr() if self.accept("keyword", "WHERE") else None
        return ast.UpdateStatement(table, assignments, where)

    def _delete(self) -> ast.DeleteStatement:
        self.expect("keyword", "DELETE")
        self.expect("keyword", "FROM")
        table = self.expect("ident").value
        where = self._expr() if self.accept("keyword", "WHERE") else None
        return ast.DeleteStatement(table, where)

    # -- DDL ------------------------------------------------------------------------------

    def _create_table(self) -> ast.CreateTableStatement:
        self.expect("keyword", "TABLE")
        name = self.expect("ident").value
        self.expect("op", "(")
        columns: list[ast.ColumnSpec] = []
        primary_key: list[str] = []
        while True:
            if self.accept_keyword("PRIMARY", "KEY"):
                self.expect("op", "(")
                primary_key.append(self.expect("ident").value)
                while self.accept("op", ","):
                    primary_key.append(self.expect("ident").value)
                self.expect("op", ")")
            else:
                column = self.expect("ident").value
                type_token = self.peek()
                if type_token.kind in ("ident", "keyword"):
                    self.advance()
                    type_name = type_token.value
                else:
                    raise SqlSyntaxError(f"expected type after column {column!r}")
                if self.accept("op", "("):  # VARCHAR(20) etc: size ignored
                    self.expect("number")
                    self.expect("op", ")")
                encoding = None
                if self.accept("keyword", "ENCODING"):
                    encoding = self.expect("ident").value
                columns.append(ast.ColumnSpec(column, type_name, encoding))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        partition_by = None
        partition_text = None
        if self.accept_keyword("PARTITION", "BY"):
            start = self.peek().position
            partition_by = self._expr()
            partition_text = self.text[start : self.peek().position].strip()
        return ast.CreateTableStatement(
            name, columns, primary_key, partition_by, partition_text
        )

    def _create_projection(self) -> ast.CreateProjectionStatement:
        self.expect("keyword", "PROJECTION")
        name = self.expect("ident").value
        self.expect("op", "(")
        columns: list[ast.ColumnSpec] = []
        while True:
            column = self.expect("ident").value
            encoding = None
            if self.accept("keyword", "ENCODING"):
                encoding_token = self.peek()
                self.advance()
                encoding = encoding_token.value
            columns.append(ast.ColumnSpec(column, "", encoding))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        self.expect("keyword", "AS")
        self.expect("keyword", "SELECT")
        select_columns: list[str] = []
        if self.accept("op", "*"):
            pass
        else:
            select_columns.append(self.expect("ident").value)
            while self.accept("op", ","):
                select_columns.append(self.expect("ident").value)
        self.expect("keyword", "FROM")
        table = self.expect("ident").value
        order_by: list[str] = []
        if self.accept_keyword("ORDER", "BY"):
            order_by.append(self.expect("ident").value)
            while self.accept("op", ","):
                order_by.append(self.expect("ident").value)
        segmented_by: list[str] | None = None
        if self.accept("keyword", "SEGMENTED"):
            self.expect("keyword", "BY")
            self.expect("keyword", "HASH")
            self.expect("op", "(")
            segmented_by = [self.expect("ident").value]
            while self.accept("op", ","):
                segmented_by.append(self.expect("ident").value)
            self.expect("op", ")")
            self.accept_keyword("ALL", "NODES")
        elif self.accept("keyword", "UNSEGMENTED"):
            self.accept_keyword("ALL", "NODES")
            segmented_by = None
        return ast.CreateProjectionStatement(
            name, columns, table, select_columns, order_by, segmented_by
        )

    def _copy(self) -> ast.CopyStatement:
        self.expect("keyword", "COPY")
        table = self.expect("ident").value
        columns: list[str] = []
        if self.accept("op", "("):
            columns.append(self.expect("ident").value)
            while self.accept("op", ","):
                columns.append(self.expect("ident").value)
            self.expect("op", ")")
        self.expect("keyword", "FROM")
        self.expect("keyword", "STDIN")
        return ast.CopyStatement(table, columns)

    # -- expressions ---------------------------------------------------------------------

    def _expr(self) -> ast.SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.SqlExpr:
        left = self._and_expr()
        while self.accept("keyword", "OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.SqlExpr:
        left = self._not_expr()
        while self.accept("keyword", "AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.SqlExpr:
        if self.accept("keyword", "NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.SqlExpr:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            op = "<>" if token.value == "!=" else token.value
            return ast.BinaryOp(op, left, self._additive())
        negated = bool(self.accept("keyword", "NOT"))
        if self.accept("keyword", "BETWEEN"):
            low = self._additive()
            self.expect("keyword", "AND")
            high = self._additive()
            return ast.BetweenExpr(left, low, high, negated)
        if self.accept("keyword", "IN"):
            self.expect("op", "(")
            if self.peek().matches("keyword", "SELECT"):
                subquery = self._select()
                self.expect("op", ")")
                return ast.InSubquery(left, subquery, negated)
            options = [self._expr()]
            while self.accept("op", ","):
                options.append(self._expr())
            self.expect("op", ")")
            return ast.InExpr(left, options, negated)
        if self.accept("keyword", "LIKE"):
            pattern = self.expect("string").value
            return ast.LikeExpr(left, pattern, negated)
        if self.accept("keyword", "IS"):
            is_negated = bool(self.accept("keyword", "NOT"))
            self.expect("keyword", "NULL")
            return ast.IsNullExpr(left, is_negated)
        if negated:
            raise SqlSyntaxError("dangling NOT")
        return left

    def _additive(self) -> ast.SqlExpr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self.advance()
                left = ast.BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.SqlExpr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                self.advance()
                left = ast.BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.SqlExpr:
        if self.accept("op", "-"):
            return ast.UnaryOp("-", self._unary())
        if self.accept("op", "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.SqlExpr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Constant(float(text))
            return ast.Constant(int(text))
        if token.kind == "string":
            self.advance()
            return ast.Constant(token.value)
        if token.matches("keyword", "NULL"):
            self.advance()
            return ast.Constant(None)
        if token.matches("keyword", "TRUE"):
            self.advance()
            return ast.Constant(True)
        if token.matches("keyword", "FALSE"):
            self.advance()
            return ast.Constant(False)
        if token.matches("keyword", "DATE"):
            self.advance()
            text = self.expect("string").value
            return ast.Constant(date_to_days(_dt.date.fromisoformat(text)))
        if token.matches("keyword", "TIMESTAMP"):
            self.advance()
            text = self.expect("string").value
            return ast.Constant(
                timestamp_to_seconds(_dt.datetime.fromisoformat(text))
            )
        if token.matches("keyword", "CASE"):
            self.advance()
            branches = []
            while self.accept("keyword", "WHEN"):
                condition = self._expr()
                self.expect("keyword", "THEN")
                branches.append((condition, self._expr()))
            default = self._expr() if self.accept("keyword", "ELSE") else None
            self.expect("keyword", "END")
            return ast.CaseExpr(branches, default)
        if token.kind == "keyword" and token.value in _AGGREGATES:
            self.advance()
            return self._function_call(token.value)
        if token.kind == "ident":
            if self.peek(1).matches("op", "("):
                self.advance()
                return self._function_call(token.value)
            self.advance()
            if self.accept("op", "."):
                column = self._name()
                return ast.Identifier(column, qualifier=token.value)
            return ast.Identifier(token.value)
        if token.matches("op", "("):
            self.advance()
            expr = self._expr()
            self.expect("op", ")")
            return expr
        raise SqlSyntaxError(
            f"unexpected token {token.value or token.kind!r} at {token.position}"
        )

    def _function_call(self, name: str) -> ast.SqlExpr:
        self.expect("op", "(")
        distinct = bool(self.accept("keyword", "DISTINCT"))
        star = False
        args: list[ast.SqlExpr] = []
        if self.accept("op", "*"):
            star = True
        elif not self.peek().matches("op", ")"):
            args.append(self._expr())
            while self.accept("op", ","):
                args.append(self._expr())
        self.expect("op", ")")
        call = ast.FuncCall(name.upper(), args, distinct, star)
        if self.accept("keyword", "OVER"):
            self.expect("op", "(")
            partition_by: list[ast.SqlExpr] = []
            order_by: list[tuple[ast.SqlExpr, bool]] = []
            if self.accept_keyword("PARTITION", "BY"):
                partition_by.append(self._expr())
                while self.accept("op", ","):
                    partition_by.append(self._expr())
            if self.accept_keyword("ORDER", "BY"):
                order_by.append(self._order_item())
                while self.accept("op", ","):
                    order_by.append(self._order_item())
            self.expect("op", ")")
            return ast.WindowCall(call, partition_by, order_by)
        return call


def parse(text: str):
    """Parse one SQL statement."""
    return Parser(text).parse_statement()
