"""SQL front end: lexer, parser, analyzer and statement execution."""

from .analyzer import Analyzer
from .interface import CopyResult, execute_sql
from .lexer import Token, tokenize
from .parser import Parser, parse

__all__ = [
    "Analyzer",
    "CopyResult",
    "execute_sql",
    "Token",
    "tokenize",
    "Parser",
    "parse",
]
