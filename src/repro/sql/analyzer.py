"""Semantic analysis: SQL AST -> logical plans and DDL actions.

Name resolution works in two spaces (matching the planner/executor
convention): each FROM item's columns get *output names* — the bare
column name when unambiguous across the FROM list, otherwise
``alias.column`` — and scans carry the raw->output rename map.
Aggregates are detected in the select list / HAVING / ORDER BY, hoisted
into a GroupBy node under generated names, and the outer expressions
are rewritten to reference them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.catalog import Catalog
from ..errors import SqlAnalysisError
from ..execution.aggregates import SUPPORTED as AGGREGATE_FUNCS
from ..execution.aggregates import AggregateSpec
from ..execution.expressions import (
    And,
    Arithmetic,
    Between,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    substitute_columns,
)
from ..execution.operators.analytic import WindowSpec
from ..execution.operators.join import JoinType
from ..optimizer.logical import (
    AnalyticNode,
    DistinctNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from ..optimizer.rewrite import conjoin, split_conjuncts
from . import ast

_WINDOW_FUNCS = ("ROW_NUMBER", "RANK", "DENSE_RANK") + tuple(AGGREGATE_FUNCS)


def _is_aggregate_name(name: str) -> bool:
    """Built-in or SDK-registered aggregate?"""
    if name in AGGREGATE_FUNCS:
        return True
    from ..sdk import user_aggregate_factory

    return user_aggregate_factory(name) is not None


@dataclass
class _FromItem:
    """One resolved FROM entry."""

    ref: ast.TableRef
    table_columns: list[str]
    #: raw column -> output name
    rename: dict[str, str] = field(default_factory=dict)

    @property
    def output_names(self) -> set[str]:
        return {self.rename.get(c, c) for c in self.table_columns}


class Scope:
    """Column resolution over the FROM list."""

    def __init__(self, items: list[_FromItem]):
        self.items = items
        self._by_qualified: dict[tuple[str, str], str] = {}
        self._by_name: dict[str, list[str]] = {}
        for item in items:
            for column in item.table_columns:
                output = item.rename.get(column, column)
                self._by_qualified[(item.ref.name, column)] = output
                self._by_name.setdefault(column, []).append(output)

    def resolve(self, identifier: ast.Identifier) -> str:
        if identifier.qualifier is not None:
            output = self._by_qualified.get(
                (identifier.qualifier, identifier.name)
            )
            if output is None:
                raise SqlAnalysisError(
                    f"unknown column {identifier.display!r}"
                )
            return output
        candidates = self._by_name.get(identifier.name, [])
        if not candidates:
            raise SqlAnalysisError(f"unknown column {identifier.name!r}")
        if len(candidates) > 1:
            raise SqlAnalysisError(f"ambiguous column {identifier.name!r}")
        return candidates[0]

    def item_of_output(self, output: str) -> _FromItem:
        for item in self.items:
            if output in item.output_names:
                return item
        raise SqlAnalysisError(f"no FROM item produces {output!r}")


def monitor_scope(ref: ast.TableRef, columns: list[str]) -> Scope:
    """Scope over a virtual (``v_monitor``) table's fixed column list.

    Virtual tables are not in the catalog, so :func:`build_scope`
    cannot resolve them; their evaluator supplies the columns directly
    and gets the same qualified/unqualified resolution rules as real
    tables.
    """
    return Scope([_FromItem(ref, list(columns))])


def build_scope(catalog: Catalog, refs: list[ast.TableRef]) -> Scope:
    """Resolve the FROM list and assign output names."""
    names = [ref.name for ref in refs]
    if len(set(names)) != len(names):
        raise SqlAnalysisError(f"duplicate table alias in FROM: {names}")
    counts: dict[str, int] = {}
    items = []
    for ref in refs:
        table = catalog.table(ref.table)
        for column in table.column_names:
            counts[column] = counts.get(column, 0) + 1
        items.append(_FromItem(ref, table.column_names))
    for item in items:
        for column in item.table_columns:
            if counts[column] > 1:
                item.rename[column] = f"{item.ref.name}.{column}"
    return Scope(items)


class Analyzer:
    """Builds logical plans from parsed SELECT statements."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._generated = 0

    def _fresh(self, prefix: str) -> str:
        self._generated += 1
        return f"{prefix}_{self._generated}"

    # -- expression conversion -----------------------------------------

    def convert(self, node: ast.SqlExpr, scope: Scope) -> Expr:
        """SqlExpr -> runtime Expr over output names.  Aggregate and
        window calls are rejected here; callers hoist them first."""
        if isinstance(node, ast.Constant):
            return Literal(node.value)
        if isinstance(node, ast.Identifier):
            return ColumnRef(scope.resolve(node))
        if isinstance(node, ast.BinaryOp):
            left = self.convert(node.left, scope)
            right = self.convert(node.right, scope)
            if node.op == "AND":
                return And(left, right)
            if node.op == "OR":
                return Or(left, right)
            if node.op in ("=", "<>", "<", "<=", ">", ">="):
                return Comparison(node.op, left, right)
            return Arithmetic(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            if node.op == "NOT":
                return Not(self.convert(node.operand, scope))
            operand = self.convert(node.operand, scope)
            if isinstance(operand, Literal) and operand.value is not None:
                return Literal(-operand.value)
            return Arithmetic("-", Literal(0), operand)
        if isinstance(node, ast.BetweenExpr):
            expr = Between(
                self.convert(node.value, scope),
                self.convert(node.low, scope),
                self.convert(node.high, scope),
            )
            return Not(expr) if node.negated else expr
        if isinstance(node, ast.InExpr):
            values = []
            for option in node.options:
                if not isinstance(option, ast.Constant):
                    raise SqlAnalysisError("IN list must contain constants")
                values.append(option.value)
            expr = InList(self.convert(node.value, scope), values)
            return Not(expr) if node.negated else expr
        if isinstance(node, ast.IsNullExpr):
            return IsNull(self.convert(node.value, scope), node.negated)
        if isinstance(node, ast.LikeExpr):
            return Like(self.convert(node.value, scope), node.pattern, node.negated)
        if isinstance(node, ast.CaseExpr):
            branches = [
                (self.convert(cond, scope), self.convert(value, scope))
                for cond, value in node.branches
            ]
            default = (
                self.convert(node.default, scope)
                if node.default is not None
                else None
            )
            return CaseWhen(branches, default)
        if isinstance(node, ast.FuncCall):
            if _is_aggregate_name(node.name):
                raise SqlAnalysisError(
                    f"aggregate {node.name} not allowed in this context"
                )
            if len(node.args) != 1:
                raise SqlAnalysisError(
                    f"function {node.name} expects one argument"
                )
            return FunctionCall(node.name, self.convert(node.args[0], scope))
        if isinstance(node, ast.WindowCall):
            raise SqlAnalysisError("window function not allowed in this context")
        if isinstance(node, ast.Star):
            raise SqlAnalysisError("* not allowed in this context")
        raise SqlAnalysisError(f"cannot analyze {type(node).__name__}")

    # -- aggregate hoisting ------------------------------------------------

    def _contains_aggregate(self, node: ast.SqlExpr) -> bool:
        if isinstance(node, ast.FuncCall):
            return _is_aggregate_name(node.name) or any(
                self._contains_aggregate(arg) for arg in node.args
            )
        if isinstance(node, ast.WindowCall):
            return False
        if isinstance(node, ast.BinaryOp):
            return self._contains_aggregate(node.left) or self._contains_aggregate(
                node.right
            )
        if isinstance(node, ast.UnaryOp):
            return self._contains_aggregate(node.operand)
        if isinstance(node, ast.BetweenExpr):
            return any(
                self._contains_aggregate(n)
                for n in (node.value, node.low, node.high)
            )
        if isinstance(node, (ast.InExpr, ast.IsNullExpr, ast.LikeExpr)):
            return self._contains_aggregate(node.value)
        if isinstance(node, ast.CaseExpr):
            parts = [n for pair in node.branches for n in pair]
            if node.default is not None:
                parts.append(node.default)
            return any(self._contains_aggregate(n) for n in parts)
        return False

    def _contains_window(self, node: ast.SqlExpr) -> bool:
        if isinstance(node, ast.WindowCall):
            return True
        if isinstance(node, ast.BinaryOp):
            return self._contains_window(node.left) or self._contains_window(
                node.right
            )
        if isinstance(node, ast.UnaryOp):
            return self._contains_window(node.operand)
        return False

    def _hoist_aggregates(
        self,
        node: ast.SqlExpr,
        scope: Scope,
        registry: dict[str, AggregateSpec],
    ) -> ast.SqlExpr:
        """Replace aggregate calls in the tree with identifiers naming
        hoisted AggregateSpecs (dedup by description)."""
        if isinstance(node, ast.FuncCall) and _is_aggregate_name(node.name):
            arg = None
            if node.star:
                if node.name != "COUNT":
                    raise SqlAnalysisError(f"{node.name}(*) is not valid")
            else:
                if len(node.args) != 1:
                    raise SqlAnalysisError(
                        f"aggregate {node.name} expects one argument"
                    )
                arg = self.convert(node.args[0], scope)
            key = f"{node.name}|{node.distinct}|{arg!r}"
            if key not in registry:
                registry[key] = AggregateSpec(
                    node.name, arg, self._fresh("agg"), node.distinct
                )
            return ast.Identifier(registry[key].output_name)
        if isinstance(node, ast.BinaryOp):
            return ast.BinaryOp(
                node.op,
                self._hoist_aggregates(node.left, scope, registry),
                self._hoist_aggregates(node.right, scope, registry),
            )
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(
                node.op, self._hoist_aggregates(node.operand, scope, registry)
            )
        if isinstance(node, ast.BetweenExpr):
            return ast.BetweenExpr(
                self._hoist_aggregates(node.value, scope, registry),
                self._hoist_aggregates(node.low, scope, registry),
                self._hoist_aggregates(node.high, scope, registry),
                node.negated,
            )
        if isinstance(node, (ast.InExpr,)):
            return ast.InExpr(
                self._hoist_aggregates(node.value, scope, registry),
                node.options,
                node.negated,
            )
        if isinstance(node, ast.IsNullExpr):
            return ast.IsNullExpr(
                self._hoist_aggregates(node.value, scope, registry), node.negated
            )
        if isinstance(node, ast.CaseExpr):
            return ast.CaseExpr(
                [
                    (
                        self._hoist_aggregates(cond, scope, registry),
                        self._hoist_aggregates(value, scope, registry),
                    )
                    for cond, value in node.branches
                ],
                self._hoist_aggregates(node.default, scope, registry)
                if node.default is not None
                else None,
            )
        return node

    # -- SELECT analysis -----------------------------------------------------

    def analyze_select(self, stmt: ast.SelectStatement) -> LogicalNode:
        """Build the logical plan for a SELECT."""
        if not stmt.from_tables:
            raise SqlAnalysisError("SELECT requires a FROM clause")
        refs = list(stmt.from_tables) + [join.table for join in stmt.joins]
        scope = build_scope(self.catalog, refs)

        # expand stars in the select list
        items: list[ast.SelectItem] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                for from_item in scope.items:
                    if (
                        item.expr.qualifier is not None
                        and from_item.ref.name != item.expr.qualifier
                    ):
                        continue
                    for column in from_item.table_columns:
                        output = from_item.rename.get(column, column)
                        items.append(
                            ast.SelectItem(ast.Identifier(output), output)
                        )
            else:
                items.append(item)

        # classify: aggregation needed?
        registry: dict[str, AggregateSpec] = {}
        has_window = any(self._contains_window(item.expr) for item in items)
        aggregated = bool(stmt.group_by) or any(
            self._contains_aggregate(item.expr) for item in items
        ) or (stmt.having is not None)
        if has_window and aggregated:
            raise SqlAnalysisError(
                "window functions cannot be combined with GROUP BY here"
            )

        where_conjuncts = self._split_ast_conjuncts(stmt.where)
        subqueries = [
            conjunct
            for conjunct in where_conjuncts
            if isinstance(conjunct, ast.InSubquery)
        ]
        plain = [
            conjunct
            for conjunct in where_conjuncts
            if not isinstance(conjunct, ast.InSubquery)
        ]
        where_expr = (
            conjoin([self.convert(conjunct, scope) for conjunct in plain])
            if plain
            else None
        )
        plan = self._build_join_tree(stmt, scope, where_expr)
        for subquery in subqueries:
            plan = self._flatten_in_subquery(plan, subquery, scope)

        select_names: list[str] = []
        select_exprs: dict[str, Expr] = {}
        order_exprs: list[tuple[Expr, bool]] = []

        if aggregated:
            plan, post_scope_names = self._plan_aggregation(
                stmt, items, scope, registry, plan,
                select_names, select_exprs, order_exprs,
            )
        elif has_window:
            plan = self._plan_windows(
                stmt, items, scope, plan, select_names, select_exprs, order_exprs
            )
        else:
            for item in items:
                expr = self.convert(item.expr, scope)
                name = item.alias or self._default_name(item.expr)
                if name in select_exprs:
                    name = self._fresh(name)
                select_names.append(name)
                select_exprs[name] = expr
            for order_ast, ascending in stmt.order_by:
                order_exprs.append(
                    (self._order_expr(order_ast, scope, items, select_exprs), ascending)
                )
            plan = ProjectNode(plan, select_exprs)

        if stmt.distinct:
            plan = DistinctNode(plan)
        if order_exprs:
            plan = SortNode(plan, order_exprs)
        if stmt.limit is not None:
            plan = LimitNode(plan, stmt.limit, stmt.offset)
        return plan

    @staticmethod
    def _split_ast_conjuncts(node: ast.SqlExpr | None) -> list:
        if node is None:
            return []
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            return Analyzer._split_ast_conjuncts(
                node.left
            ) + Analyzer._split_ast_conjuncts(node.right)
        return [node]

    def _flatten_in_subquery(
        self, plan: LogicalNode, subquery: ast.InSubquery, scope: Scope
    ) -> LogicalNode:
        """Subquery flattening (section 6.2): ``x IN (SELECT ...)``
        becomes a SEMI join against the subquery plan; ``NOT IN``
        becomes an ANTI join (NOT EXISTS semantics: a NULL-producing
        subquery does not veto every row, unlike strict SQL NOT IN)."""
        value = self.convert(subquery.value, scope)
        subplan = self.analyze_select(subquery.select)
        output = self._single_output_name(subplan)
        return JoinNode(
            plan,
            subplan,
            JoinType.ANTI if subquery.negated else JoinType.SEMI,
            [value],
            [ColumnRef(output)],
        )

    @staticmethod
    def _single_output_name(plan: LogicalNode) -> str:
        for node in plan.walk():
            if isinstance(node, ProjectNode):
                names = list(node.outputs)
                if len(names) != 1:
                    raise SqlAnalysisError(
                        "IN subquery must select exactly one column"
                    )
                return names[0]
        raise SqlAnalysisError("cannot determine subquery output column")

    def _default_name(self, expr: ast.SqlExpr) -> str:
        if isinstance(expr, ast.Identifier):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return expr.name.lower()
        return self._fresh("col")

    def _order_expr(
        self, node: ast.SqlExpr, scope: Scope, items, select_exprs: dict[str, Expr]
    ) -> Expr:
        # positional ORDER BY 2 / alias reference / plain expression
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            names = list(select_exprs)
            index = node.value - 1
            if not 0 <= index < len(names):
                raise SqlAnalysisError(f"ORDER BY position {node.value} out of range")
            return ColumnRef(names[index])
        if isinstance(node, ast.Identifier) and node.qualifier is None:
            if node.name in select_exprs:
                return ColumnRef(node.name)
        return self.convert(node, scope)

    # -- join tree ----------------------------------------------------------------

    def _build_join_tree(
        self, stmt: ast.SelectStatement, scope: Scope, where: Expr | None
    ) -> LogicalNode:
        items_by_name = {item.ref.name: item for item in scope.items}
        # split WHERE into: equi-join conditions between items, per-item
        # filters, and multi-item residuals.
        equi_conditions: list[tuple[str, str, Expr, Expr]] = []
        residuals: list[Expr] = []
        for conjunct in split_conjuncts(where):
            classified = self._classify_conjunct(conjunct, scope)
            if classified is not None:
                equi_conditions.append(classified)
            else:
                residuals.append(conjunct)

        scans: dict[str, LogicalNode] = {}
        reachable: dict[str, set[str]] = {}
        for item in scope.items:
            scans[item.ref.name] = ScanNode(
                item.ref.table,
                self.catalog.table(item.ref.table).column_names,
                rename=dict(item.rename),
                alias=item.ref.name,
            )
            reachable[item.ref.name] = item.output_names

        # start with the comma-joined FROM tables (inner), then apply
        # explicit JOIN clauses in order.
        plan: LogicalNode | None = None
        joined: set[str] = set()
        plan_columns: set[str] = set()

        def attach(name: str, join_type: JoinType, condition: Expr | None):
            nonlocal plan, plan_columns
            right = scans[name]
            right_columns = reachable[name]
            if plan is None:
                plan = right
                plan_columns = set(right_columns)
                joined.add(name)
                return
            left_keys: list[Expr] = []
            right_keys: list[Expr] = []
            residual_parts: list[Expr] = []
            if condition is not None:
                for conjunct in split_conjuncts(condition):
                    pair = self._split_equi(
                        conjunct, plan_columns, right_columns
                    )
                    if pair is not None:
                        left_keys.append(pair[0])
                        right_keys.append(pair[1])
                    else:
                        residual_parts.append(conjunct)
            if join_type is JoinType.INNER:
                for quad in list(equi_conditions):
                    a_item, b_item, a_expr, b_expr = quad
                    if a_item in joined and b_item == name:
                        left_keys.append(a_expr)
                        right_keys.append(b_expr)
                        equi_conditions.remove(quad)
                    elif b_item in joined and a_item == name:
                        left_keys.append(b_expr)
                        right_keys.append(a_expr)
                        equi_conditions.remove(quad)
            plan = JoinNode(
                plan,
                right,
                join_type,
                left_keys,
                right_keys,
                residual=conjoin(residual_parts),
            )
            plan_columns |= right_columns
            joined.add(name)

        for ref in stmt.from_tables:
            attach(ref.name, JoinType.INNER, None)
        for join in stmt.joins:
            condition = (
                self.convert(join.condition, scope)
                if join.condition is not None
                else None
            )
            attach(join.table.name, JoinType(join.join_type), condition)

        # unconsumed equi conditions + residuals go into a filter above
        leftovers = residuals + [
            Comparison("=", a_expr, b_expr)
            for _, _, a_expr, b_expr in equi_conditions
        ]
        predicate = conjoin(leftovers)
        if predicate is not None:
            plan = FilterNode(plan, predicate)
        return plan

    def _classify_conjunct(self, conjunct: Expr, scope: Scope):
        """Detect `a.x = b.y` between two different FROM items."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        try:
            left_item = scope.item_of_output(left.name)
            right_item = scope.item_of_output(right.name)
        except SqlAnalysisError:
            return None
        if left_item is right_item:
            return None
        return (left_item.ref.name, right_item.ref.name, left, right)

    @staticmethod
    def _split_equi(conjunct: Expr, left_columns: set[str], right_columns: set[str]):
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        a, b = conjunct.left, conjunct.right
        a_cols = a.referenced_columns()
        b_cols = b.referenced_columns()
        if a_cols and a_cols <= left_columns and b_cols and b_cols <= right_columns:
            return a, b
        if b_cols and b_cols <= left_columns and a_cols and a_cols <= right_columns:
            return b, a
        return None

    # -- aggregation ------------------------------------------------------------------

    def _plan_aggregation(
        self, stmt, items, scope, registry, plan,
        select_names, select_exprs, order_exprs,
    ):
        group_keys: list[tuple[str, Expr]] = []
        key_by_repr: dict[str, str] = {}
        for group_ast in stmt.group_by:
            expr = self.convert(group_ast, scope)
            if isinstance(expr, ColumnRef):
                name = expr.name
            else:
                name = self._fresh("gk")
            group_keys.append((name, expr))
            key_by_repr[repr(expr)] = name
        aggregates: list[AggregateSpec] = []

        def finish_expr(node: ast.SqlExpr) -> Expr:
            hoisted = self._hoist_aggregates(node, scope, registry)
            return self._post_group_expr(hoisted, scope, key_by_repr, registry)

        for item in items:
            expr = finish_expr(item.expr)
            name = item.alias or self._default_name(item.expr)
            if name in select_exprs:
                name = self._fresh(name)
            self._check_grouped(expr, key_by_repr, registry)
            select_names.append(name)
            select_exprs[name] = expr
        having_expr = None
        if stmt.having is not None:
            having_expr = finish_expr(stmt.having)
        aggregates = list(registry.values())
        group_node = GroupByNode(plan, group_keys, aggregates, having=having_expr)
        for order_ast, ascending in stmt.order_by:
            if (
                isinstance(order_ast, ast.Identifier)
                and order_ast.qualifier is None
                and order_ast.name in select_exprs
            ):
                order_exprs.append((ColumnRef(order_ast.name), ascending))
            elif isinstance(order_ast, ast.Constant) and isinstance(
                order_ast.value, int
            ):
                names = list(select_exprs)
                order_exprs.append(
                    (ColumnRef(names[order_ast.value - 1]), ascending)
                )
            else:
                order_exprs.append((finish_expr(order_ast), ascending))
        project = ProjectNode(group_node, select_exprs)
        return project, select_names

    def _post_group_expr(
        self, node: ast.SqlExpr, scope: Scope, key_by_repr, registry
    ) -> Expr:
        """Convert a hoisted expression in the post-GROUP BY scope:
        aggregate placeholders become ColumnRefs; other sub-expressions
        must match a group key."""
        agg_names = {spec.output_name for spec in registry.values()}
        if isinstance(node, ast.Identifier) and node.qualifier is None:
            if node.name in agg_names:
                return ColumnRef(node.name)
        converted = None
        try:
            converted = self.convert(node, scope)
        except SqlAnalysisError:
            pass
        if converted is not None and repr(converted) in key_by_repr:
            return ColumnRef(key_by_repr[repr(converted)])
        # descend structurally
        if isinstance(node, ast.Identifier):
            if converted is not None:
                return converted  # will be validated by _check_grouped
            return ColumnRef(node.name)
        if isinstance(node, ast.Constant):
            return Literal(node.value)
        if isinstance(node, ast.BinaryOp):
            left = self._post_group_expr(node.left, scope, key_by_repr, registry)
            right = self._post_group_expr(node.right, scope, key_by_repr, registry)
            if node.op == "AND":
                return And(left, right)
            if node.op == "OR":
                return Or(left, right)
            if node.op in ("=", "<>", "<", "<=", ">", ">="):
                return Comparison(node.op, left, right)
            return Arithmetic(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self._post_group_expr(node.operand, scope, key_by_repr, registry)
            if node.op == "NOT":
                return Not(operand)
            return Arithmetic("-", Literal(0), operand)
        if isinstance(node, ast.BetweenExpr):
            return Between(
                self._post_group_expr(node.value, scope, key_by_repr, registry),
                self._post_group_expr(node.low, scope, key_by_repr, registry),
                self._post_group_expr(node.high, scope, key_by_repr, registry),
            )
        if isinstance(node, ast.IsNullExpr):
            return IsNull(
                self._post_group_expr(node.value, scope, key_by_repr, registry),
                node.negated,
            )
        if converted is not None:
            return converted
        raise SqlAnalysisError(
            f"expression {type(node).__name__} is not valid after GROUP BY"
        )

    def _check_grouped(self, expr: Expr, key_by_repr, registry) -> None:
        valid = set(key_by_repr.values()) | {
            spec.output_name for spec in registry.values()
        }
        stray = expr.referenced_columns() - valid
        if stray:
            raise SqlAnalysisError(
                f"column(s) {sorted(stray)} must appear in GROUP BY or an "
                "aggregate function"
            )

    # -- windows --------------------------------------------------------------------------

    def _plan_windows(
        self, stmt, items, scope, plan, select_names, select_exprs, order_exprs
    ):
        specs: list[WindowSpec] = []
        for item in items:
            if isinstance(item.expr, ast.WindowCall):
                call = item.expr
                name = item.alias or self._fresh(call.func.name.lower())
                arg = None
                if call.func.args:
                    arg = self.convert(call.func.args[0], scope)
                specs.append(
                    WindowSpec(
                        call.func.name,
                        arg,
                        name,
                        partition_by=[
                            self.convert(e, scope) for e in call.partition_by
                        ],
                        order_by=[
                            (self.convert(e, scope), asc)
                            for e, asc in call.order_by
                        ],
                    )
                )
                select_names.append(name)
                select_exprs[name] = ColumnRef(name)
            else:
                expr = self.convert(item.expr, scope)
                name = item.alias or self._default_name(item.expr)
                select_names.append(name)
                select_exprs[name] = expr
        plan = AnalyticNode(plan, specs)
        for order_ast, ascending in stmt.order_by:
            if (
                isinstance(order_ast, ast.Identifier)
                and order_ast.qualifier is None
                and order_ast.name in select_exprs
            ):
                order_exprs.append((ColumnRef(order_ast.name), ascending))
            else:
                order_exprs.append((self.convert(order_ast, scope), ascending))
        return ProjectNode(plan, select_exprs)
