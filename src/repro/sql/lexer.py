"""SQL lexer.

Hand-written tokenizer for the supported SQL dialect.  (The real
Vertica borrowed PostgreSQL's parser — section 2.1; we implement a
compact dialect covering everything the paper's examples and
experiments need.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "BETWEEN",
    "LIKE", "TRUE", "FALSE", "JOIN", "INNER", "LEFT", "RIGHT", "FULL",
    "OUTER", "SEMI", "ANTI", "ON", "ASC", "DESC", "DISTINCT", "CASE",
    "WHEN", "THEN", "ELSE", "END", "INSERT", "INTO", "VALUES", "UPDATE",
    "SET", "DELETE", "CREATE", "TABLE", "PROJECTION", "DROP", "PRIMARY",
    "KEY", "PARTITION", "ENCODING", "SEGMENTED", "UNSEGMENTED", "HASH",
    "ALL", "NODES", "COPY", "STDIN", "OVER", "ROWS", "AT", "EPOCH",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "DATE", "TIMESTAMP", "CAST",
    "EXPLAIN", "ANALYZE", "PROFILE",
}

#: Multi-character operators, longest first.
OPERATORS = ["<>", "!=", ">=", "<=", "=", "<", ">", "+", "-", "*", "/", "%",
             "(", ")", ",", ".", ";"]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char == "'":
            end = index + 1
            parts = []
            while True:
                if end >= length:
                    raise SqlSyntaxError(f"unterminated string at {index}")
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(Token("string", "".join(parts), index))
            index = end + 1
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            seen_exp = False
            while end < length:
                c = text[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end + 1 < length and (
                    text[end + 1].isdigit() or text[end + 1] in "+-"
                ):
                    seen_exp = True
                    end += 2 if text[end + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token("number", text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, index))
            else:
                tokens.append(Token("ident", word, index))
            index = end
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {index}")
            tokens.append(Token("ident", text[index + 1 : end], index))
            index = end + 1
            continue
        for operator in OPERATORS:
            if text.startswith(operator, index):
                tokens.append(Token("op", operator, index))
                index += len(operator)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {char!r} at {index}")
    tokens.append(Token("eof", "", length))
    return tokens
