"""Abstract syntax tree for the supported SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions --------------------------------------------------------------


class SqlExpr:
    """Base class for parsed (unresolved) expressions."""


@dataclass
class Identifier(SqlExpr):
    """Column reference, possibly qualified (``alias.column``)."""

    name: str
    qualifier: str | None = None

    @property
    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class Constant(SqlExpr):
    """Literal value (already converted to its Python representation)."""

    value: object


@dataclass
class Star(SqlExpr):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: str | None = None


@dataclass
class BinaryOp(SqlExpr):
    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass
class UnaryOp(SqlExpr):
    op: str  # 'NOT' | '-'
    operand: SqlExpr


@dataclass
class BetweenExpr(SqlExpr):
    value: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass
class InExpr(SqlExpr):
    value: SqlExpr
    options: list[SqlExpr] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(SqlExpr):
    """``expr [NOT] IN (SELECT ...)`` — flattened to a semi/anti join."""

    value: SqlExpr
    select: "SelectStatement"
    negated: bool = False


@dataclass
class IsNullExpr(SqlExpr):
    value: SqlExpr
    negated: bool = False


@dataclass
class LikeExpr(SqlExpr):
    value: SqlExpr
    pattern: str
    negated: bool = False


@dataclass
class CaseExpr(SqlExpr):
    branches: list[tuple[SqlExpr, SqlExpr]]
    default: SqlExpr | None = None


@dataclass
class FuncCall(SqlExpr):
    """Scalar or aggregate function call."""

    name: str
    args: list[SqlExpr] = field(default_factory=list)
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass
class WindowCall(SqlExpr):
    """``func(...) OVER (PARTITION BY ... ORDER BY ...)``."""

    func: FuncCall
    partition_by: list[SqlExpr] = field(default_factory=list)
    order_by: list[tuple[SqlExpr, bool]] = field(default_factory=list)


# -- statements ---------------------------------------------------------------


@dataclass
class SelectItem:
    expr: SqlExpr
    alias: str | None = None


@dataclass
class TableRef:
    table: str
    alias: str | None = None

    @property
    def name(self) -> str:
        return self.alias or self.table


@dataclass
class JoinClause:
    join_type: str  # INNER/LEFT/RIGHT/FULL/SEMI/ANTI
    table: TableRef
    condition: SqlExpr | None


@dataclass
class SelectStatement:
    items: list[SelectItem]
    from_tables: list[TableRef] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: SqlExpr | None = None
    group_by: list[SqlExpr] = field(default_factory=list)
    having: SqlExpr | None = None
    order_by: list[tuple[SqlExpr, bool]] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    distinct: bool = False
    at_epoch: int | None = None


@dataclass
class InsertStatement:
    table: str
    columns: list[str]
    rows: list[list[SqlExpr]]


@dataclass
class UpdateStatement:
    table: str
    assignments: dict[str, SqlExpr]
    where: SqlExpr | None


@dataclass
class DeleteStatement:
    table: str
    where: SqlExpr | None


@dataclass
class ColumnSpec:
    name: str
    type_name: str
    encoding: str | None = None


@dataclass
class CreateTableStatement:
    name: str
    columns: list[ColumnSpec]
    primary_key: list[str] = field(default_factory=list)
    partition_by: SqlExpr | None = None
    partition_by_text: str | None = None


@dataclass
class CreateProjectionStatement:
    name: str
    columns: list[ColumnSpec]  # type_name empty; encoding may be set
    table: str
    select_columns: list[str] = field(default_factory=list)
    order_by: list[str] = field(default_factory=list)
    segmented_by: list[str] | None = None  # None = unsegmented (replicated)


@dataclass
class DropTableStatement:
    name: str


@dataclass
class CopyStatement:
    table: str
    columns: list[str]


@dataclass
class ExplainStatement:
    select: SelectStatement
    #: True for EXPLAIN ANALYZE / PROFILE: execute the query and render
    #: the plan annotated with per-operator runtime counters.
    analyze: bool = False
