"""SQL statement execution: parse, analyze, run.

Routes each statement kind to the right subsystem: SELECTs to the
optimizer + executor, DML to the session's transactional buffers, DDL
to the catalog/cluster, COPY to the bulk loader (with the rejected-
record handling of section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.database import Session

from ..core.schema import ColumnDef, TableDefinition
from ..errors import LoadError, SqlAnalysisError
from ..projections import HashSegmentation, ProjectionColumn, ProjectionDefinition, Replicated
from ..types import type_from_name
from . import ast
from .analyzer import Analyzer, Scope, _FromItem
from .parser import parse


@dataclass
class CopyResult:
    """Outcome of a COPY: loaded row count and rejected records."""

    loaded: int
    rejected: list[tuple[int, str, str]] = field(default_factory=list)


def _single_table_scope(catalog, table_name: str) -> Scope:
    table = catalog.table(table_name)
    return Scope([_FromItem(ast.TableRef(table_name), table.column_names)])


def execute_sql(
    session: "Session", text: str, copy_rows: Iterable | None = None
) -> object:
    """Execute one SQL statement in ``session``.

    Returns rows for SELECT, a plan string for EXPLAIN, a
    :class:`CopyResult` for COPY, and ``None`` / counts for other
    statements.

    This is where a statement's trace begins and ends: when tracing is
    enabled (``REPRO_TRACE=1`` or ``TRACER.configure``), the whole
    statement runs inside one :class:`repro.trace.TraceContext` whose
    spans — parse, analyze, plan, per-node execution, exchanges,
    failover retries — are retained for ``v_monitor.query_traces`` /
    ``v_monitor.trace_spans`` and Chrome trace-event export.

    It is also where the Data Collector's request history is written:
    every completed (or failed) statement lands in
    ``dc_requests_completed`` with its duration, row count, engine mix
    and resource pool — except reads of the ``v_monitor`` tables
    themselves, so a polling console never floods its own history.
    """
    from time import perf_counter

    from ..trace import TRACER

    trace = TRACER.start_trace("statement", attrs={"sql": text})
    info = {"kind": "unknown", "skip": False}
    started = perf_counter()
    try:
        result = _execute_statement(session, text, copy_rows, trace, info)
    except Exception as exc:
        _record_request(
            session, text, info, perf_counter() - started, error=exc
        )
        raise
    else:
        _record_request(
            session, text, info, perf_counter() - started, result=result
        )
        return result
    finally:
        TRACER.end_trace(trace)


def _engine_of(profile) -> str:
    """Collapse a query profile's per-operator execution modes into one
    label: "kernel", "row", "mixed", or "-" when nothing applies."""
    if profile is None:
        return "-"
    modes = {
        op.execution
        for op in profile.operators
        if op.execution != "-"
    }
    if not modes:
        return "-"
    if modes == {"kernel"}:
        return "kernel"
    if modes == {"row"}:
        return "row"
    return "mixed"


def _record_request(
    session, text, info, duration_seconds, result=None, error=None
) -> None:
    """Append one ``dc_requests_completed`` record for the statement."""
    if info.get("skip"):
        return
    collector = getattr(session.db.cluster, "dc", None)
    if collector is None:
        return
    rows_returned = len(result) if isinstance(result, list) else 0
    profile = (
        session.last_profile
        if error is None and info.get("kind") == "select"
        else None
    )
    collector.record(
        "requests",
        info.get("kind", "unknown"),
        session_id=getattr(session, "service_session_id", None),
        pool_name=getattr(session, "service_pool", "-"),
        sql=text[:200],
        success=error is None,
        error=type(error).__name__ if error is not None else "",
        engine=_engine_of(profile),
        rows_returned=rows_returned,
        duration_ms=duration_seconds * 1000.0,
        epoch=session.db.latest_epoch,
    )
    if error is not None:
        collector.record(
            "errors",
            type(error).__name__,
            source="sql",
            node_index=-1,
            detail=str(error)[:200],
        )


def _execute_statement(session, text, copy_rows, trace, info=None):
    db = session.db
    from ..trace import TRACER

    if info is None:
        info = {}
    with TRACER.span("sql.parse", category="sql"):
        statement = parse(text)
    info["kind"] = (
        type(statement).__name__.removesuffix("Statement").lower()
    )
    if trace is not None:
        trace.root.attrs["statement"] = type(statement).__name__
    analyzer = Analyzer(db.cluster.catalog)

    if isinstance(statement, ast.SelectStatement):
        if _is_monitor_select(statement):
            from ..monitor.tables import execute_monitor_select

            # reading the monitoring tables is not itself an
            # operational event worth recording.
            info["skip"] = True
            return execute_monitor_select(session, statement)
        with TRACER.span("sql.analyze", category="sql"):
            plan = analyzer.analyze_select(statement)
        return session.query(plan, at_epoch=statement.at_epoch, sql_text=text)

    if isinstance(statement, ast.ExplainStatement):
        if statement.analyze:
            return _explain_analyze(session, analyzer, statement, text)
        plan = analyzer.analyze_select(statement.select)
        return db.explain(plan)

    if isinstance(statement, ast.InsertStatement):
        table = db.cluster.catalog.table(statement.table)
        columns = statement.columns or table.column_names
        rows = []
        for values in statement.rows:
            if len(values) != len(columns):
                raise SqlAnalysisError(
                    f"INSERT has {len(values)} values for {len(columns)} columns"
                )
            row = {name: None for name in table.column_names}
            for name, value in zip(columns, values):
                if not isinstance(value, ast.Constant):
                    raise SqlAnalysisError("INSERT values must be constants")
                row[name] = value.value
            rows.append(row)
        session.insert(statement.table, rows)
        return len(rows)

    if isinstance(statement, ast.UpdateStatement):
        scope = _single_table_scope(db.cluster.catalog, statement.table)
        assignments = {
            column: analyzer.convert(expr, scope)
            for column, expr in statement.assignments.items()
        }
        predicate = (
            analyzer.convert(statement.where, scope)
            if statement.where is not None
            else _always_true()
        )
        return session.update(statement.table, assignments, predicate)

    if isinstance(statement, ast.DeleteStatement):
        scope = _single_table_scope(db.cluster.catalog, statement.table)
        predicate = (
            analyzer.convert(statement.where, scope)
            if statement.where is not None
            else _always_true()
        )
        session.delete(statement.table, predicate)
        return None

    if isinstance(statement, ast.CreateTableStatement):
        return _create_table(db, analyzer, statement)

    if isinstance(statement, ast.CreateProjectionStatement):
        return _create_projection(db, statement)

    if isinstance(statement, ast.DropTableStatement):
        db.drop_table(statement.name)
        return None

    if isinstance(statement, ast.CopyStatement):
        return _copy(session, statement, copy_rows)

    raise SqlAnalysisError(f"unsupported statement {type(statement).__name__}")


def _is_monitor_select(statement: ast.SelectStatement) -> bool:
    """Whether the SELECT reads only ``v_monitor`` virtual tables.

    Mixing virtual and catalog tables in one FROM list is rejected —
    virtual tables never reach the optimizer, so they cannot be joined
    against real data.
    """
    from ..monitor.tables import is_monitor_table

    tables = [ref.table for ref in statement.from_tables]
    tables += [join.table.table for join in statement.joins]
    if not tables:
        return False
    flags = [is_monitor_table(name) for name in tables]
    if any(flags) and not all(flags):
        raise SqlAnalysisError(
            "cannot mix v_monitor and regular tables in one query"
        )
    return all(flags)


def _explain_analyze(session, analyzer, statement, text: str) -> str:
    """EXPLAIN ANALYZE / PROFILE: execute, then render the annotated plan."""
    select = statement.select
    if _is_monitor_select(select):
        raise SqlAnalysisError(
            "EXPLAIN ANALYZE over v_monitor tables is not supported"
        )
    plan = analyzer.analyze_select(select)
    session.query(plan, at_epoch=select.at_epoch, sql_text=text)
    return session.last_profile.render()


def _always_true():
    from ..execution.expressions import Literal

    return Literal(True)


def _create_table(db, analyzer, statement: ast.CreateTableStatement):
    columns = [
        ColumnDef(spec.name, type_from_name(spec.type_name))
        for spec in statement.columns
    ]
    partition_fn = None
    if statement.partition_by is not None:
        names = [spec.name for spec in statement.columns]
        scope = Scope([_FromItem(ast.TableRef(statement.name), names)])
        expr = analyzer.convert(statement.partition_by, scope)

        def partition_fn(row, _expr=expr):
            return _expr.evaluate_row(row)

    table = TableDefinition(
        statement.name,
        columns,
        partition_by=partition_fn,
        partition_by_text=statement.partition_by_text,
        primary_key=tuple(statement.primary_key),
    )
    encodings = {
        spec.name: spec.encoding
        for spec in statement.columns
        if spec.encoding is not None
    }
    db.create_table(table, encodings=encodings or None)
    return None


def _create_projection(db, statement: ast.CreateProjectionStatement):
    table = db.cluster.catalog.table(statement.table)
    select_columns = statement.select_columns or [
        spec.name for spec in statement.columns
    ]
    if len(select_columns) != len(statement.columns):
        raise SqlAnalysisError(
            "projection column list and SELECT list differ in length"
        )
    columns = []
    for spec, source in zip(statement.columns, select_columns):
        dtype = table.column(source).dtype
        columns.append(
            ProjectionColumn(spec.name, dtype, spec.encoding or "AUTO")
        )
    if statement.segmented_by is None:
        segmentation = Replicated()
    else:
        segmentation = HashSegmentation(tuple(statement.segmented_by))
    projection = ProjectionDefinition(
        name=statement.name,
        anchor_table=statement.table,
        columns=columns,
        sort_order=statement.order_by or [columns[0].name],
        segmentation=segmentation,
    )
    db.add_projection(projection)
    return None


def _copy(session, statement: ast.CopyStatement, copy_rows) -> CopyResult:
    """Bulk load with rejected-record collection (section 7)."""
    if copy_rows is None:
        raise LoadError("COPY requires data (pass copy_rows=...)")
    db = session.db
    table = db.cluster.catalog.table(statement.table)
    columns = statement.columns or table.column_names
    good: list[dict] = []
    rejected: list[tuple[int, str, str]] = []
    for line_number, record in enumerate(copy_rows, start=1):
        try:
            if isinstance(record, dict):
                row = {name: None for name in table.column_names}
                row.update(record)
                row = table.validate_row(row)
            else:
                fields = (
                    record.split("|") if isinstance(record, str) else list(record)
                )
                if len(fields) != len(columns):
                    raise LoadError(
                        f"expected {len(columns)} fields, got {len(fields)}"
                    )
                row = {name: None for name in table.column_names}
                for name, field_text in zip(columns, fields):
                    row[name] = table.column(name).dtype.parse_text(
                        str(field_text)
                    )
            good.append(row)
        except Exception as exc:  # rejected record, keep loading
            rejected.append((line_number, str(record)[:80], str(exc)))
    session.insert(statement.table, good, direct_to_ros=len(good) > 10000)
    return CopyResult(loaded=len(good), rejected=rejected)
