"""Projections: Vertica's only physical data structure (section 3)."""

from .projection import (
    PrejoinSpec,
    ProjectionColumn,
    ProjectionDefinition,
    ProjectionFamily,
    make_buddy,
    super_projection,
)
from .segmentation import (
    HashSegmentation,
    Replicated,
    SegmentationScheme,
    buddy_of,
)

__all__ = [
    "PrejoinSpec",
    "ProjectionColumn",
    "ProjectionDefinition",
    "ProjectionFamily",
    "make_buddy",
    "super_projection",
    "HashSegmentation",
    "Replicated",
    "SegmentationScheme",
    "buddy_of",
]
