"""Projection definitions.

Projections (section 3.1) are the *only* physical data structure in
Vertica: sorted, optionally column-subsetted, optionally prejoined
copies of a table, each with its own per-column encodings and its own
segmentation.  Every table needs at least one *super projection*
holding every column (section 3.2 — join indexes were dropped), and
each projection needs a *buddy* at K-safety >= 1 (section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.schema import TableDefinition
from ..errors import SqlAnalysisError
from ..types import DataType, sort_key
from .segmentation import HashSegmentation, Replicated, SegmentationScheme


@dataclass(frozen=True)
class ProjectionColumn:
    """One column of a projection: source column, type and encoding."""

    name: str
    dtype: DataType
    #: Encoding name from :mod:`repro.storage.encodings`; "AUTO" defers
    #: the choice to per-block empirical selection.
    encoding: str = "AUTO"


@dataclass
class PrejoinSpec:
    """Denormalizing N:1 join baked into a prejoin projection (3.3).

    ``dimension`` rows are joined to the anchor's rows during load via
    ``anchor_key = dimension_key``; the projection then stores selected
    dimension columns alongside the fact columns.
    """

    dimension_table: str
    anchor_key: str
    dimension_key: str
    #: dimension column name -> name it gets inside the projection.
    carried_columns: dict[str, str]


@dataclass
class ProjectionDefinition:
    """A named physical layout of (a subset of) a table's columns."""

    name: str
    anchor_table: str
    columns: list[ProjectionColumn]
    #: Column names (must be a prefix-free subset of ``columns``) the
    #: projection is totally sorted on, in major-to-minor order.
    sort_order: list[str]
    segmentation: SegmentationScheme
    prejoin: PrejoinSpec | None = None
    #: Buddy offset (0 = primary copy); buddies share a base name.
    buddy_offset: int = 0
    #: Free-form creation comment, kept for catalog display.
    comment: str = ""

    def __post_init__(self):
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SqlAnalysisError(f"duplicate columns in projection {self.name!r}")
        for sort_column in self.sort_order:
            if sort_column not in names:
                raise SqlAnalysisError(
                    f"sort column {sort_column!r} not in projection {self.name!r}"
                )
        if isinstance(self.segmentation, HashSegmentation):
            for column in self.segmentation.columns:
                if column not in names:
                    raise SqlAnalysisError(
                        f"segmentation column {column!r} not in projection "
                        f"{self.name!r}"
                    )

    @property
    def column_names(self) -> list[str]:
        """Ordered column names stored by this projection."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> ProjectionColumn:
        """Look up a projection column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SqlAnalysisError(f"projection {self.name!r} has no column {name!r}")

    def is_super_for(self, table: TableDefinition) -> bool:
        """Whether this projection stores every column of ``table``."""
        if self.prejoin is not None:
            carried = set(self.prejoin.carried_columns.values())
        else:
            carried = set()
        own = {name for name in self.column_names if name not in carried}
        return own >= set(table.column_names)

    def sort_key_for(self, row: dict):
        """Tuple ordering key of ``row`` under this projection's sort order."""
        return tuple(sort_key(row[column]) for column in self.sort_order)

    def sorted_rows(self, rows: list[dict]) -> list[dict]:
        """Rows sorted by the projection sort order (stable)."""
        return sorted(rows, key=self.sort_key_for)

    def covers(self, needed_columns) -> bool:
        """Whether the projection stores every column in ``needed_columns``."""
        return set(needed_columns) <= set(self.column_names)

    def describe(self) -> str:
        """One-line catalog description (used by Figure 1/2 benches)."""
        columns = ", ".join(
            f"{column.name} ENCODING {column.encoding}" for column in self.columns
        )
        order = ", ".join(self.sort_order)
        return (
            f"PROJECTION {self.name} ({columns}) "
            f"ORDER BY {order} {self.segmentation.describe()}"
        )


def super_projection(
    table: TableDefinition,
    name: str | None = None,
    sort_order: list[str] | None = None,
    segmentation: SegmentationScheme | None = None,
    encodings: dict[str, str] | None = None,
    buddy_offset: int = 0,
) -> ProjectionDefinition:
    """Build a super projection for ``table`` with sensible defaults.

    Defaults mirror what Vertica's Database Designer would produce with
    no workload: sort on all columns left-to-right, segment by hash of
    the first column (or primary key when declared), AUTO encodings.
    """
    encodings = encodings or {}
    columns = [
        ProjectionColumn(c.name, c.dtype, encodings.get(c.name, "AUTO"))
        for c in table.columns
    ]
    if sort_order is None:
        sort_order = [c.name for c in table.columns]
    if segmentation is None:
        seg_columns = table.primary_key or (table.columns[0].name,)
        segmentation = HashSegmentation(tuple(seg_columns), offset=buddy_offset)
    return ProjectionDefinition(
        name=name or f"{table.name}_super",
        anchor_table=table.name,
        columns=columns,
        sort_order=list(sort_order),
        segmentation=segmentation,
        buddy_offset=buddy_offset,
    )


def make_buddy(
    projection: ProjectionDefinition, offset: int = 1
) -> ProjectionDefinition:
    """Create the buddy of ``projection`` at ``offset``.

    Same columns, same sort order; segmentation ring rotated so no row
    co-locates with the primary copy (section 5.2).
    """
    from .segmentation import buddy_of

    return ProjectionDefinition(
        name=f"{projection.name}_b{offset}",
        anchor_table=projection.anchor_table,
        columns=list(projection.columns),
        sort_order=list(projection.sort_order),
        segmentation=buddy_of(projection.segmentation, offset),
        prejoin=projection.prejoin,
        buddy_offset=offset,
        comment=f"buddy of {projection.name}",
    )


@dataclass
class ProjectionFamily:
    """A projection and its buddies, as registered in the catalog."""

    primary: ProjectionDefinition
    buddies: list[ProjectionDefinition] = field(default_factory=list)

    @property
    def all_copies(self) -> list[ProjectionDefinition]:
        """Primary followed by its buddies."""
        return [self.primary, *self.buddies]

    def k_safety(self) -> int:
        """K such that any K node failures leave some copy reachable.

        A replicated projection provides K = (node_count - 1), which is
        reported as a large constant here; hash-segmented families
        provide K = number of buddies.
        """
        if self.primary.segmentation.replicated:
            return 2**31
        return len(self.buddies)
