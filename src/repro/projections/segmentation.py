"""Cluster segmentation: the ring that maps tuples to nodes.

Section 3.6: projections are either *replicated* (every node stores
every tuple) or *segmented* (each tuple lives on exactly one node,
chosen by an integral segmentation expression mapped through a classic
ring of ``N`` equal ranges over ``[0, C_MAX)`` with ``C_MAX = 2**64``).

Buddy projections (section 5.2) reuse the same ring shifted by an
offset, which guarantees no row is stored on the same node by both
buddies — the property K-safety needs.

Within a node, tuples are further segregated into *local segments*
(section 3.6) by subdividing the node's ring range; cluster expansion
moves whole local segments without rewriting them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hashing import RING_SIZE, hash_row


class SegmentationScheme:
    """Base class for projection placement policies."""

    #: True when every node stores a full copy.
    replicated = False

    def node_for_row(self, row: dict, node_count: int) -> int | None:
        """Index of the node that stores ``row`` (None = all nodes)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable DDL-ish description."""
        raise NotImplementedError


@dataclass(frozen=True)
class Replicated(SegmentationScheme):
    """UNSEGMENTED ALL NODES: a full copy on every node."""

    replicated = True

    def node_for_row(self, row: dict, node_count: int) -> None:
        return None

    def describe(self) -> str:
        return "UNSEGMENTED ALL NODES"


@dataclass(frozen=True)
class HashSegmentation(SegmentationScheme):
    """SEGMENTED BY HASH(col1..coln), ring-mapped, with a buddy offset.

    ``offset`` rotates the ring-to-node assignment: the tuple that the
    offset-0 projection stores on node ``i`` is stored on node
    ``(i + offset) % N`` by an offset-``offset`` buddy.
    """

    columns: tuple[str, ...]
    offset: int = 0

    def ring_position(self, row: dict) -> int:
        """The tuple's position in ``[0, 2**64)``."""
        return hash_row([row[column] for column in self.columns])

    def node_for_position(self, position: int, node_count: int) -> int:
        """Map a ring position to a node index (paper's range table)."""
        base = position * node_count // RING_SIZE
        return (base + self.offset) % node_count

    def node_for_row(self, row: dict, node_count: int) -> int:
        return self.node_for_position(self.ring_position(row), node_count)

    def local_segment_for_position(
        self, position: int, node_count: int, segments_per_node: int
    ) -> int:
        """Index of the local segment (within its node) for a position.

        The node's ring range is subdivided into ``segments_per_node``
        equal sub-ranges, exactly like Figure 2's three local segments.
        """
        node_range = RING_SIZE // node_count
        within = position % node_range if node_count > 1 else position
        return min(
            within * segments_per_node // node_range,
            segments_per_node - 1,
        )

    def local_segment_for_row(
        self, row: dict, node_count: int, segments_per_node: int
    ) -> int:
        return self.local_segment_for_position(
            self.ring_position(row), node_count, segments_per_node
        )

    def describe(self) -> str:
        column_list = ", ".join(self.columns)
        suffix = f" OFFSET {self.offset}" if self.offset else ""
        return f"SEGMENTED BY HASH({column_list}) ALL NODES{suffix}"

    def with_offset(self, offset: int) -> "HashSegmentation":
        """The same ring with a different buddy offset."""
        return HashSegmentation(self.columns, offset)


def buddy_of(scheme: SegmentationScheme, offset: int) -> SegmentationScheme:
    """Segmentation for a buddy projection at the given offset.

    Replicated projections are their own buddies (every node already
    has every row); hash segmentation gets a rotated ring.
    """
    if isinstance(scheme, HashSegmentation):
        return scheme.with_offset((scheme.offset + offset))
    return scheme
