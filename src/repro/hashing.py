"""Deterministic 64-bit hashing for segmentation.

Projection segmentation (section 3.6) maps each tuple to a node through
``HASH(col1..coln)`` evaluated into the ring ``[0, 2**64)``.  The hash
must be stable across processes and runs — Python's built-in ``hash``
is salted for strings, so we implement FNV-1a over a canonical byte
representation of each value.
"""

from __future__ import annotations

import struct

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

#: Size of the segmentation ring: hash values lie in ``[0, RING_SIZE)``.
RING_SIZE = 1 << 64


def fnv1a_64(data: bytes) -> int:
    """FNV-1a hash of ``data`` into ``[0, 2**64)``."""
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _value_bytes(value) -> bytes:
    """Canonical byte representation of a single SQL value."""
    if value is None:
        return b"\x00N"
    if isinstance(value, bool):
        return b"\x01T" if value else b"\x01F"
    if isinstance(value, int):
        return b"\x02" + value.to_bytes(8, "little", signed=True)
    if isinstance(value, float):
        return b"\x03" + struct.pack("<d", value)
    if isinstance(value, str):
        return b"\x04" + value.encode("utf-8")
    raise TypeError(f"unhashable SQL value {value!r}")


def hash_value(value) -> int:
    """Hash a single SQL value into the segmentation ring."""
    return fnv1a_64(_value_bytes(value))


def hash_row(values) -> int:
    """Hash a tuple of SQL values into the segmentation ring.

    This is the ``HASH(col1..coln)`` of the paper: values are combined
    in order with a separator so ``(1, 23)`` and ``(12, 3)`` differ.
    """
    parts = bytearray()
    for value in values:
        part = _value_bytes(value)
        parts += len(part).to_bytes(4, "little")
        parts += part
    return fnv1a_64(bytes(parts))
