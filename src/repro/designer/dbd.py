"""The Database Designer (section 6.3).

Two sequential phases, exactly as the paper describes:

1. **Query optimization phase** — candidate projections are enumerated
   from workload heuristics (predicate columns, group-by columns,
   order-by columns, join keys); the *real optimizer* is then invoked
   for each workload query against a hypothetical catalog containing
   the candidates, and the projections the optimizer actually picks
   (weighted by estimated cost savings) survive.  "The DBD's direct
   use of the optimizer and cost model guarantees that it remains
   synchronized as the optimizer evolves."
2. **Storage optimization phase** — encodings for the surviving
   projections are chosen by *empirical encoding experiments* on
   sample data sorted by the proposed sort order (the same mechanism
   as the AUTO encoding; the paper credits this for users essentially
   never overriding the DBD's encoding choices).

Three policies trade query speed against load/storage cost:
``load-optimized`` proposes nothing beyond the super projections,
``balanced`` allows one extra projection per table, and
``query-optimized`` allows several.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.catalog import Catalog
from ..errors import DesignError
from ..execution.expressions import ColumnRef
from ..optimizer import PhysScan, ScanNode
from ..optimizer.logical import GroupByNode, JoinNode, LogicalNode, SortNode
from ..optimizer.rewrite import split_conjuncts
from ..projections import (
    HashSegmentation,
    ProjectionColumn,
    ProjectionDefinition,
    ProjectionFamily,
    Replicated,
)
from ..storage.encodings import choose_encoding

#: Rows of per-table sample data used for encoding experiments.
ENCODING_SAMPLE_ROWS = 4096
#: Dimension tables at or below this row count are replicated.
REPLICATE_THRESHOLD = 10_000


@dataclass(frozen=True)
class DesignPolicy:
    """How aggressively to trade storage/load for query speed."""

    name: str
    extra_projections_per_table: int


LOAD_OPTIMIZED = DesignPolicy("load-optimized", 0)
BALANCED = DesignPolicy("balanced", 1)
QUERY_OPTIMIZED = DesignPolicy("query-optimized", 3)

POLICIES = {
    policy.name: policy
    for policy in (LOAD_OPTIMIZED, BALANCED, QUERY_OPTIMIZED)
}


@dataclass
class CandidateProjection:
    """A projection the DBD is considering."""

    definition: ProjectionDefinition
    source_hint: str
    #: Total estimated cost saved across the workload when available.
    benefit: float = 0.0
    times_chosen: int = 0


@dataclass
class DesignProposal:
    """The DBD's output: projections to create, with rationale."""

    policy: DesignPolicy
    projections: list[ProjectionDefinition] = field(default_factory=list)
    #: per-projection human-readable rationale
    rationale: dict[str, str] = field(default_factory=dict)
    #: chosen encodings per projection: {projection: {column: encoding}}
    encodings: dict[str, dict[str, str]] = field(default_factory=dict)
    #: workload cost with only existing projections vs with the design.
    baseline_cost: float = 0.0
    designed_cost: float = 0.0

    def summary(self) -> str:
        lines = [f"Design ({self.policy.name}):"]
        for projection in self.projections:
            lines.append(f"  {projection.describe()}")
            hint = self.rationale.get(projection.name)
            if hint:
                lines.append(f"    rationale: {hint}")
        if self.baseline_cost:
            lines.append(
                f"  workload cost {self.baseline_cost:.0f} -> "
                f"{self.designed_cost:.0f}"
            )
        return "\n".join(lines)


class _HypotheticalCluster:
    """The minimal cluster surface the planner needs, over a scratch
    catalog extended with candidate projections."""

    def __init__(self, real_cluster, catalog: Catalog):
        self.catalog = catalog
        self.node_count = real_cluster.node_count
        self.membership = real_cluster.membership
        self.nodes = real_cluster.nodes


class DatabaseDesigner:
    """Proposes projection designs for a workload of logical queries."""

    def __init__(self, db):
        self.db = db

    # -- phase 1: candidate enumeration -------------------------------------

    def enumerate_candidates(
        self, workload: list[LogicalNode]
    ) -> list[CandidateProjection]:
        """Heuristic candidate projections per table touched by the
        workload: sorted on predicate columns, group-by columns and
        order-by columns; segmented on join keys (for co-located
        joins) or replicated when small."""
        interesting: dict[str, dict[str, set[tuple[str, ...]]]] = {}
        for query in workload:
            self._collect_interesting(query, interesting)
        candidates: list[CandidateProjection] = []
        for table_name, buckets in sorted(interesting.items()):
            table = self.db.cluster.catalog.table(table_name)
            stats = self.db.stats.get(table_name)
            small = stats.row_count and stats.row_count <= REPLICATE_THRESHOLD
            join_keys = buckets.get("join", set())
            seen_orders: set[tuple[str, ...]] = set()
            for hint in ("predicate", "group", "order"):
                for columns in sorted(buckets.get(hint, set())):
                    rest = [
                        c for c in table.column_names if c not in columns
                    ]
                    sort_order = tuple(columns) + tuple(rest)
                    if sort_order in seen_orders:
                        continue
                    seen_orders.add(sort_order)
                    if small:
                        segmentation = Replicated()
                    elif join_keys:
                        segmentation = HashSegmentation(
                            tuple(sorted(join_keys)[0])
                        )
                    else:
                        segmentation = HashSegmentation(
                            tuple(table.primary_key)
                            or (table.column_names[0],)
                        )
                    name = f"{table_name}_dbd_{hint}_{'_'.join(columns)}"
                    definition = ProjectionDefinition(
                        name=name,
                        anchor_table=table_name,
                        columns=[
                            ProjectionColumn(c.name, c.dtype)
                            for c in table.columns
                        ],
                        sort_order=list(sort_order),
                        segmentation=segmentation,
                        comment=f"DBD candidate ({hint} columns {columns})",
                    )
                    candidates.append(
                        CandidateProjection(definition, hint)
                    )
        return candidates

    def _collect_interesting(self, node: LogicalNode, interesting) -> None:
        alias_to_table: dict[str, str] = {}
        for scan in (n for n in node.walk() if isinstance(n, ScanNode)):
            alias_to_table[scan.alias or scan.table] = scan.table
            buckets = interesting.setdefault(
                scan.table, {"predicate": set(), "group": set(),
                             "order": set(), "join": set()}
            )
            for conjunct in split_conjuncts(scan.predicate):
                columns = tuple(sorted(conjunct.referenced_columns()))
                if columns:
                    buckets["predicate"].add(columns)
        for group in (n for n in node.walk() if isinstance(n, GroupByNode)):
            columns = []
            for _, expr in group.keys:
                if isinstance(expr, ColumnRef):
                    columns.append(expr.name)
            self._attribute_columns(node, tuple(columns), "group", interesting)
        for sort in (n for n in node.walk() if isinstance(n, SortNode)):
            columns = [
                expr.name
                for expr, _ in sort.keys
                if isinstance(expr, ColumnRef)
            ]
            self._attribute_columns(node, tuple(columns), "order", interesting)
        for join in (n for n in node.walk() if isinstance(n, JoinNode)):
            for keys, side in ((join.left_keys, join.left), (join.right_keys, join.right)):
                columns = tuple(
                    key.name for key in keys if isinstance(key, ColumnRef)
                )
                self._attribute_columns(side, columns, "join", interesting)

    def _attribute_columns(self, node, columns, bucket, interesting) -> None:
        """Attach output-name columns to the scans that produce them,
        translated back to stored names."""
        if not columns:
            return
        for scan in (n for n in node.walk() if isinstance(n, ScanNode)):
            inverse = {out: raw for raw, out in scan.rename.items()}
            outputs = {scan.rename.get(c, c) for c in scan.columns}
            mine = tuple(
                inverse.get(c, c) for c in columns if c in outputs
            )
            if mine:
                interesting.setdefault(
                    scan.table, {"predicate": set(), "group": set(),
                                 "order": set(), "join": set()}
                )[bucket].add(mine)

    # -- phase 1: optimizer-in-the-loop evaluation ---------------------------------

    def evaluate_candidates(
        self,
        workload: list[LogicalNode],
        candidates: list[CandidateProjection],
    ) -> float:
        """Plan every workload query against a hypothetical catalog
        holding the candidates; accumulate per-candidate benefit.
        Returns the baseline workload cost."""
        baseline_total, _ = self._workload_cost(workload, [])
        for candidate in candidates:
            total, chosen = self._workload_cost(workload, [candidate.definition])
            candidate.benefit = max(baseline_total - total, 0.0)
            candidate.times_chosen = chosen.get(candidate.definition.name, 0)
        return baseline_total

    def _workload_cost(self, workload, extra_projections):
        scratch = Catalog()
        scratch.tables = dict(self.db.cluster.catalog.tables)
        scratch.families = dict(self.db.cluster.catalog.families)
        for definition in extra_projections:
            scratch.families[definition.name] = ProjectionFamily(definition, [])
        shim = _HypotheticalCluster(self.db.cluster, scratch)
        planner_cls = type(self.db.planner())
        planner = planner_cls(shim, self.db.stats)
        total = 0.0
        chosen: dict[str, int] = {}
        for query in workload:
            plan = planner.plan(query)
            total += plan.est_cost.total
            for scan in (n for n in plan.walk() if isinstance(n, PhysScan)):
                chosen[scan.family_name] = chosen.get(scan.family_name, 0) + 1
        return total, chosen

    # -- phase 2: storage optimization ------------------------------------------------

    def choose_encodings(
        self, definition: ProjectionDefinition
    ) -> dict[str, str]:
        """Empirical encoding experiments on sorted sample data."""
        rows = self.db.cluster.read_table(
            definition.anchor_table, self.db.latest_epoch
        )[:ENCODING_SAMPLE_ROWS]
        rows = definition.sorted_rows(rows)
        encodings: dict[str, str] = {}
        for column in definition.columns:
            values = [row[column.name] for row in rows if row.get(column.name) is not None]
            encodings[column.name] = choose_encoding(column.dtype, values).name
        return encodings

    # -- entry point ------------------------------------------------------------------------

    def design(
        self, workload: list[LogicalNode], policy: DesignPolicy | str = BALANCED
    ) -> DesignProposal:
        """Run both phases and return a deployable proposal."""
        if isinstance(policy, str):
            try:
                policy = POLICIES[policy]
            except KeyError:
                raise DesignError(f"unknown design policy {policy!r}") from None
        if not workload:
            raise DesignError("design requires a non-empty workload")
        candidates = self.enumerate_candidates(workload)
        baseline = self.evaluate_candidates(workload, candidates)
        proposal = DesignProposal(policy=policy, baseline_cost=baseline)
        per_table: dict[str, int] = {}
        accepted: list[ProjectionDefinition] = []
        for candidate in sorted(
            candidates, key=lambda c: (-c.benefit, c.definition.name)
        ):
            table = candidate.definition.anchor_table
            if candidate.benefit <= 0 or candidate.times_chosen == 0:
                continue
            if per_table.get(table, 0) >= policy.extra_projections_per_table:
                continue
            per_table[table] = per_table.get(table, 0) + 1
            accepted.append(candidate.definition)
            proposal.rationale[candidate.definition.name] = (
                f"{candidate.source_hint} columns; chosen by the optimizer "
                f"for {candidate.times_chosen} scan(s); estimated benefit "
                f"{candidate.benefit:.0f}"
            )
        for definition in accepted:
            encodings = self.choose_encodings(definition)
            proposal.encodings[definition.name] = encodings
            definition.columns = [
                ProjectionColumn(
                    column.name, column.dtype,
                    encodings.get(column.name, "AUTO"),
                )
                for column in definition.columns
            ]
            proposal.projections.append(definition)
        proposal.designed_cost = self._workload_cost(workload, accepted)[0]
        return proposal

    def design_sql(self, queries: list[str], policy="balanced") -> DesignProposal:
        """Design from SQL query texts."""
        from ..sql.analyzer import Analyzer
        from ..sql.parser import parse

        analyzer = Analyzer(self.db.cluster.catalog)
        workload = []
        for text in queries:
            statement = parse(text)
            workload.append(analyzer.analyze_select(statement))
        return self.design(workload, policy)

    def deploy(self, proposal: DesignProposal) -> int:
        """Create the proposal's projections (populated from data)."""
        created = 0
        for definition in proposal.projections:
            if definition.name in self.db.cluster.catalog.families:
                continue
            self.db.add_projection(definition)
            created += 1
        return created
