"""The Database Designer: automatic physical design (section 6.3)."""

from .dbd import (
    BALANCED,
    LOAD_OPTIMIZED,
    POLICIES,
    QUERY_OPTIMIZED,
    CandidateProjection,
    DatabaseDesigner,
    DesignPolicy,
    DesignProposal,
)

__all__ = [
    "BALANCED",
    "LOAD_OPTIMIZED",
    "POLICIES",
    "QUERY_OPTIMIZED",
    "CandidateProjection",
    "DatabaseDesigner",
    "DesignPolicy",
    "DesignProposal",
]
