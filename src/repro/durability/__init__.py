"""Write-ahead durability: the journal and the cold-start path.

The paper's Vertica keeps the catalog and committed epochs durable so a
node that dies can restart from disk and rejoin through recovery
(sections 4.3 and 5.3).  This package closes the same gap for the
reproduction: :mod:`repro.durability.journal` is a CRC-checked,
fsio-routed write-ahead journal of catalog DDL and committed deltas,
and :mod:`repro.durability.coldstart` replays checkpoint + journal tail
into a fresh cluster, reconciles against on-disk ROS containers via
scavenge, truncates past the durable floor, and rejoins every node
through the supervisor's recovery state machine.
"""

from __future__ import annotations

from .codec import (
    decode_catalog,
    decode_family,
    decode_projection,
    decode_table,
    encode_catalog,
    encode_family,
    encode_projection,
    encode_table,
)
from .journal import Journal, JournalRecord, JournalReplay
from .coldstart import ColdStartReport, replay_journal

__all__ = [
    "ColdStartReport",
    "Journal",
    "JournalRecord",
    "JournalReplay",
    "decode_catalog",
    "decode_family",
    "decode_projection",
    "decode_table",
    "encode_catalog",
    "encode_family",
    "encode_projection",
    "encode_table",
    "replay_journal",
]
