"""Cold start: rebuild a cluster from its journal and on-disk ROS.

Replay order (each step idempotent over what the previous recovered):

1. **Catalog** — decode the newest valid checkpoint's catalog, then
   apply DDL records past its LSN, yielding the final catalog; register
   every projection on every node's storage manager.
2. **Scavenge** — per node, the PR 3 machinery: delete ``.tmp``
   orphans, load every published container (quarantining corruption),
   resolve crash-interrupted mergeouts, re-attach delete vectors.
3. **Truncate to the floor** — the journal's durable floor is the
   epoch every node had fully drained to ROS at the last all-up mover
   cycle; anything newer on disk may be incomplete on *some* node, so
   every projection is truncated back to it (the cold-start analogue of
   recovery's truncate-to-LGE).
4. **Replay the tail** — commit records with epochs past the floor are
   re-applied (inserts through normal routing, deletes by materialized
   row multiset).  The journal itself was already cut to its last
   valid prefix when opened: a torn or bit-flipped record defines the
   recovery point, and every record after it is discarded.
5. **Rejoin** — every node is marked down and handed to the
   :class:`~repro.cluster.supervisor.ClusterSupervisor` in the
   SCAVENGED state; the PR 5 recovery state machine replays each node
   back to currency (trivially, from its own disk — the replay above
   restored LGE = latest queryable) and rejoins it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import DurabilityError
from ..monitor import METRICS
from ..trace import TRACER
from ..txn.epochs import INITIAL_EPOCH
from .codec import decode_catalog, decode_family, decode_table
from .journal import Journal, JournalRecord

if TYPE_CHECKING:
    from ..cluster.cluster import Cluster


@dataclass
class ColdStartReport:
    """What :func:`replay_journal` did to bring the cluster back."""

    floor: int = 0
    checkpoint_used: bool = False
    #: Journal records dropped by torn-tail/corruption truncation.
    truncated_records: int = 0
    ddl_replayed: int = 0
    commits_replayed: int = 0
    rows_reinserted: int = 0
    rows_redeleted: int = 0
    #: Rows discarded from on-disk containers past the durable floor.
    rows_truncated: int = 0
    containers_quarantined: int = 0
    rejoin_ticks: int = 0
    #: projection copies restored, for quick report introspection.
    projections: list[str] = field(default_factory=list)


def replay_journal(cluster: "Cluster", journal: Journal) -> ColdStartReport:
    """Replay ``journal`` into a freshly built (empty) ``cluster``.

    The cluster must have been constructed with the journal's genesis
    topology and with ``cluster.journal`` unset — replayed commits must
    not be re-journaled.  The caller attaches the journal afterwards.
    """
    if cluster.journal is not None:
        raise DurabilityError(
            "replay_journal needs the cluster journal detached; attach it "
            "after replay so replayed commits are not re-journaled"
        )
    replay = journal.last_replay
    if replay is None:
        raise DurabilityError("journal was not opened from disk (no replay state)")
    report = ColdStartReport(
        floor=replay.floor,
        checkpoint_used=replay.checkpoint is not None,
        truncated_records=replay.truncated_records,
    )
    trace = TRACER.start_trace(
        "cold_start",
        attrs={
            "records": len(replay.records),
            "floor": replay.floor,
            "checkpoint": replay.checkpoint_lsn,
        },
    )
    try:
        with TRACER.span("cold_start.catalog", category="recovery"):
            drop_lsn = _rebuild_catalog(cluster, replay, report)
        with TRACER.span("cold_start.scavenge", category="recovery"):
            for node in cluster.nodes:
                scavenge = node.manager.scavenge()
                report.containers_quarantined += len(scavenge.quarantined)
        if replay.checkpoint is not None:
            cluster.epochs.current_epoch = max(
                INITIAL_EPOCH, replay.checkpoint["current_epoch"]
            )
        with TRACER.span(
            "cold_start.truncate", category="recovery", floor=replay.floor
        ):
            for node in cluster.nodes:
                for copy in cluster.catalog.all_projections():
                    report.rows_truncated += node.manager.truncate_after_epoch(
                        copy.name, replay.floor
                    )
        with TRACER.span("cold_start.replay", category="recovery"):
            _replay_tail(cluster, replay, drop_lsn, report)
        _restore_epoch_marks(cluster, replay)
        with TRACER.span("cold_start.rejoin", category="recovery"):
            report.rejoin_ticks = _rejoin_all_nodes(cluster)
        report.projections = [
            copy.name for copy in cluster.catalog.all_projections()
        ]
        METRICS.inc("journal.replay.commits", report.commits_replayed)
        METRICS.inc("journal.replay.rows", report.rows_reinserted)
        return report
    finally:
        TRACER.end_trace(trace)


def _rebuild_catalog(cluster, replay, report) -> dict[str, int]:
    """Install the final catalog (checkpoint + DDL tail) and register
    every projection on every node.  Returns table -> LSN of its last
    ``drop_table`` record, so commit replay can skip epochs belonging
    to a dropped (possibly recreated) table."""
    catalog = cluster.catalog
    if replay.checkpoint is not None:
        decoded = decode_catalog(replay.checkpoint["catalog"])
        for name in sorted(decoded.tables):
            catalog.add_table(decoded.tables[name])
        for name in sorted(decoded.families):
            catalog.add_family(decoded.families[name])
    drop_lsn: dict[str, int] = {}
    for record in replay.records:
        if record.kind == "drop_table":
            drop_lsn[record.payload["name"]] = record.lsn
        if record.lsn <= replay.checkpoint_lsn:
            continue  # the checkpoint catalog already reflects it
        if record.kind == "create_table":
            catalog.add_table(decode_table(record.payload["table"]))
            report.ddl_replayed += 1
        elif record.kind == "add_family":
            catalog.add_family(decode_family(record.payload["family"]))
            report.ddl_replayed += 1
        elif record.kind == "drop_table":
            catalog.drop_table(record.payload["name"])
            report.ddl_replayed += 1
    for name in sorted(catalog.tables):
        if not catalog.families_for_table(name):
            # Torn DDL: the journal's valid prefix ends between a
            # table's create record and its projection family.  The
            # table has no storage anywhere; treat the whole CREATE as
            # never having happened.
            catalog.drop_table(name)
    for node in cluster.nodes:
        for name in sorted(catalog.families):
            family = catalog.families[name]
            table = catalog.table(family.primary.anchor_table)
            for copy in family.all_copies:
                node.manager.register_projection(copy, table)
    return drop_lsn


def _replay_tail(cluster, replay, drop_lsn, report) -> None:
    """Re-apply committed epochs past the durable floor, in LSN order."""
    for record in replay.records:
        if record.kind == "commit":
            _replay_commit(cluster, record, replay.floor, drop_lsn, report)
        elif record.kind == "restore":
            cluster.epochs.current_epoch = max(
                cluster.epochs.current_epoch, record.payload["current_epoch"]
            )


def _replay_commit(
    cluster, record: JournalRecord, floor: int, drop_lsn, report
) -> None:
    payload = record.payload
    epoch = payload["epoch"]
    # Advance the epoch clock past every journaled commit, replayed or
    # not — rows recovered from disk at ``epoch`` are only visible once
    # latest_queryable reaches it.
    cluster.epochs.current_epoch = max(cluster.epochs.current_epoch, epoch + 1)
    if epoch <= floor:
        # Fully in ROS on every node at the last all-up mover cycle;
        # scavenge already recovered it from disk.
        return
    for table_name, rows in sorted(payload["inserts"].items()):
        if _skip_table(cluster, table_name, record.lsn, drop_lsn):
            continue
        cluster.apply_insert(
            table_name,
            rows,
            epoch,
            direct_to_ros=payload["direct_to_ros"],
        )
        report.rows_reinserted += len(rows)
    for delete in payload["deletes"]:
        table_name = delete["table"]
        if _skip_table(cluster, table_name, record.lsn, drop_lsn):
            continue
        report.rows_redeleted += _replay_delete_rows(
            cluster,
            table_name,
            delete["rows"],
            epoch,
            payload["snapshot_epoch"],
        )
    report.commits_replayed += 1


def _skip_table(cluster, table_name, lsn, drop_lsn) -> bool:
    if table_name not in cluster.catalog.tables:
        return True
    return lsn < drop_lsn.get(table_name, -1)


def _replay_delete_rows(
    cluster, table_name, rows, commit_epoch, snapshot_epoch
) -> int:
    """Re-delete a journaled row multiset in every projection copy.

    The journal stores the materialized rows (predicates are arbitrary
    callables); each copy on each node consumes the multiset with a
    fresh budget, mirroring the narrow-projection path of
    ``Cluster._delete_in_projection``.
    """
    if not rows:
        return 0
    table = cluster.catalog.table(table_name)
    for family in cluster.catalog.families_for_table(table_name):
        for copy in family.all_copies:
            names = [
                name
                for name in copy.column_names
                if copy.prejoin is None
                or name not in copy.prejoin.carried_columns.values()
            ]
            names = [name for name in names if table.has_column(name)]
            budget = Counter(
                tuple(repr(row[name]) for name in names) for row in rows
            )
            for node_index in cluster.membership.up_nodes():
                remaining = Counter(budget)

                def take(row, remaining=remaining, names=names):
                    key = tuple(repr(row[name]) for name in names)
                    if remaining[key] > 0:
                        remaining[key] -= 1
                        return True
                    return False

                cluster.nodes[node_index].manager.delete_where(
                    copy.name, take, commit_epoch, snapshot_epoch
                )
    return len(rows)


def _restore_epoch_marks(cluster, replay) -> None:
    """Re-establish AHM and per-(node, projection) Last Good Epochs.

    Every copy's LGE is set to the latest queryable epoch: the replay
    above restored each node's full state (floor from disk, tail from
    the journal), so each node can rejoin from its own disk through
    recovery's LGE-current shortcut.  The claim is provisional until
    the next all-up mover cycle — which is exactly why the journal's
    floor (and checkpoints built on it) only advance at such a cycle.
    """
    if replay.floor > 0:
        # The floor is an epoch that fully committed (and drained);
        # even if its commit records were pruned, the clock must sit
        # past it for the disk-recovered rows to be queryable.
        cluster.epochs.current_epoch = max(
            cluster.epochs.current_epoch, replay.floor + 1
        )
    current = cluster.epochs.latest_queryable_epoch
    ahm = 0
    if replay.checkpoint is not None:
        ahm = min(replay.checkpoint["ahm"], current)
    cluster.epochs.ahm = max(ahm, 0)
    for node_index in range(cluster.node_count):
        for copy in cluster.catalog.all_projections():
            cluster.epochs.set_lge(node_index, copy.name, current)


def _rejoin_all_nodes(cluster) -> int:
    """Hand every node to the supervisor in SCAVENGED state and run
    the recovery state machine until the cluster converges."""
    from ..cluster.supervisor import SCAVENGED

    now = cluster.clock.now
    for node_index in range(cluster.node_count):
        cluster.membership.eject(node_index, "cold start")
        cluster.epochs.node_down(node_index)
        cluster.supervisor._transition(node_index, SCAVENGED, now)
    return cluster.supervisor.run_until_converged()
