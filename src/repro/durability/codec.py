"""JSON codec for catalog objects recorded in the journal.

The journal stores catalog DDL as plain JSON so a cold start can
rebuild :class:`~repro.core.catalog.Catalog` without importing pickled
code.  Every field round-trips by value; data types are encoded by
name and resolved through :func:`repro.types.type_from_name`.

One documented limitation: ``TableDefinition.partition_by`` is an
arbitrary Python callable and cannot be serialized.  The journal keeps
``partition_by_text`` for catalog display, but a reopened table is
unpartitioned — partition keys only influence how moveout groups rows
into containers (and ``drop_partition``), never which rows are
visible, so the differential oracles are unaffected.
"""

from __future__ import annotations

from ..core.catalog import Catalog
from ..core.schema import ColumnDef, TableDefinition
from ..errors import DurabilityError
from ..projections.projection import (
    PrejoinSpec,
    ProjectionColumn,
    ProjectionDefinition,
    ProjectionFamily,
)
from ..projections.segmentation import HashSegmentation, Replicated
from ..types import type_from_name


def encode_table(table: TableDefinition) -> dict:
    """Encode a table definition as a JSON-safe dict."""
    return {
        "name": table.name,
        "columns": [[column.name, column.dtype.name] for column in table.columns],
        "partition_by_text": table.partition_by_text,
        "primary_key": list(table.primary_key),
    }


def decode_table(payload: dict) -> TableDefinition:
    """Rebuild a table definition (without its partition callable)."""
    return TableDefinition(
        name=payload["name"],
        columns=[
            ColumnDef(name, type_from_name(dtype))
            for name, dtype in payload["columns"]
        ],
        partition_by=None,
        partition_by_text=payload.get("partition_by_text"),
        primary_key=tuple(payload.get("primary_key", ())),
    )


def _encode_segmentation(scheme) -> dict:
    if isinstance(scheme, Replicated):
        return {"kind": "replicated"}
    if isinstance(scheme, HashSegmentation):
        return {
            "kind": "hash",
            "columns": list(scheme.columns),
            "offset": scheme.offset,
        }
    raise DurabilityError(f"cannot journal segmentation scheme {scheme!r}")


def _decode_segmentation(payload: dict):
    if payload["kind"] == "replicated":
        return Replicated()
    if payload["kind"] == "hash":
        return HashSegmentation(tuple(payload["columns"]), payload["offset"])
    raise DurabilityError(f"unknown segmentation kind {payload['kind']!r}")


def encode_projection(projection: ProjectionDefinition) -> dict:
    """Encode one projection copy as a JSON-safe dict."""
    prejoin = None
    if projection.prejoin is not None:
        prejoin = {
            "dimension_table": projection.prejoin.dimension_table,
            "anchor_key": projection.prejoin.anchor_key,
            "dimension_key": projection.prejoin.dimension_key,
            "carried_columns": dict(projection.prejoin.carried_columns),
        }
    return {
        "name": projection.name,
        "anchor_table": projection.anchor_table,
        "columns": [
            [column.name, column.dtype.name, column.encoding]
            for column in projection.columns
        ],
        "sort_order": list(projection.sort_order),
        "segmentation": _encode_segmentation(projection.segmentation),
        "prejoin": prejoin,
        "buddy_offset": projection.buddy_offset,
        "comment": projection.comment,
    }


def decode_projection(payload: dict) -> ProjectionDefinition:
    """Rebuild one projection copy."""
    prejoin = None
    if payload.get("prejoin") is not None:
        spec = payload["prejoin"]
        prejoin = PrejoinSpec(
            dimension_table=spec["dimension_table"],
            anchor_key=spec["anchor_key"],
            dimension_key=spec["dimension_key"],
            carried_columns=dict(spec["carried_columns"]),
        )
    return ProjectionDefinition(
        name=payload["name"],
        anchor_table=payload["anchor_table"],
        columns=[
            ProjectionColumn(name, type_from_name(dtype), encoding)
            for name, dtype, encoding in payload["columns"]
        ],
        sort_order=list(payload["sort_order"]),
        segmentation=_decode_segmentation(payload["segmentation"]),
        prejoin=prejoin,
        buddy_offset=payload.get("buddy_offset", 0),
        comment=payload.get("comment", ""),
    )


def encode_family(family: ProjectionFamily) -> dict:
    """Encode a projection family (primary + buddies)."""
    return {
        "primary": encode_projection(family.primary),
        "buddies": [encode_projection(buddy) for buddy in family.buddies],
    }


def decode_family(payload: dict) -> ProjectionFamily:
    """Rebuild a projection family."""
    return ProjectionFamily(
        primary=decode_projection(payload["primary"]),
        buddies=[decode_projection(buddy) for buddy in payload["buddies"]],
    )


def encode_catalog(catalog: Catalog) -> dict:
    """Encode the whole catalog, for checkpoint records."""
    return {
        "tables": [encode_table(catalog.tables[name]) for name in sorted(catalog.tables)],
        "families": [
            encode_family(catalog.families[name]) for name in sorted(catalog.families)
        ],
    }


def decode_catalog(payload: dict) -> Catalog:
    """Rebuild a catalog from a checkpoint record."""
    catalog = Catalog()
    for table in payload["tables"]:
        catalog.add_table(decode_table(table))
    for family in payload["families"]:
        catalog.add_family(decode_family(family))
    return catalog
