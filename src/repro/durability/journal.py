"""The CRC-checked write-ahead journal.

Format.  The journal lives in ``<database>/journal/`` as numbered
segment files ``seg_000001.log`` plus checkpoint files
``ckpt_000001.json``.  Every record is one line, framed as::

    <crc32 hex, 8 chars> <canonical JSON body>\\n

where the body is ``{"kind": ..., "lsn": ..., "payload": ...}`` with
sorted keys.  A checkpoint file holds a single line in the same frame.

Atomicity.  An append rewrites the active segment's full contents to a
``.tmp`` sibling and publishes it with one ``os.replace`` — the same
stage/publish protocol ROS containers use (:mod:`repro.storage.fsio`),
so each append is all-or-nothing and a crash can never leave a
half-written record *behind* the publish point.  Torn tails and bit
flips that do reach a published segment are detected by the per-record
CRC at replay and truncated to the last valid prefix; everything after
the first damaged record is discarded, exactly like recovery truncates
a projection past its Last Good Epoch.

Bounded replay.  Segments rotate after ``segment_records`` records.  A
checkpoint snapshots the catalog, the durable floor epoch and the
epoch counters; at cold start replay begins from the newest valid
checkpoint, and sealed segments fully covered by it (no record past
its LSN, no commit past the floor) are pruned.

Record kinds: ``genesis`` (cluster topology, first record ever),
``create_table`` / ``add_family`` / ``drop_table`` (catalog DDL),
``commit`` (one committed epoch: inserts per table plus materialized
delete rows), ``floor`` (the durable floor advanced — every up node
has drained its WOS past this epoch), ``restore`` (a backup image was
adopted at some epoch).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

from .. import faults
from ..errors import DurabilityError
from ..monitor import METRICS
from ..storage import fsio

SEGMENT_PREFIX = "seg_"
SEGMENT_SUFFIX = ".log"
CHECKPOINT_PREFIX = "ckpt_"
CHECKPOINT_SUFFIX = ".json"

#: Records per segment before the journal rotates to a new file.
DEFAULT_SEGMENT_RECORDS = 64
#: Records appended between automatic checkpoints.
DEFAULT_CHECKPOINT_INTERVAL = 32
#: Old checkpoints retained (newest may be torn; keep a fallback).
CHECKPOINTS_RETAINED = 2


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    lsn: int
    kind: str
    payload: dict


@dataclass
class JournalReplay:
    """What :meth:`Journal.open` recovered from disk."""

    #: Newest valid checkpoint body, or ``None`` (replay from genesis).
    checkpoint: dict | None
    #: All records surviving CRC validation, in LSN order.
    records: list[JournalRecord]
    #: Durable floor: max of checkpoint floor and floor/restore records.
    floor: int
    #: Records dropped by torn-tail / corruption truncation.
    truncated_records: int
    #: Checkpoint files skipped because they failed validation.
    checkpoints_skipped: int

    @property
    def checkpoint_lsn(self) -> int:
        """LSN covered by the checkpoint (-1 when replaying from genesis)."""
        if self.checkpoint is None:
            return -1
        return self.checkpoint["lsn"]


def _frame(body: dict) -> str:
    text = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return f"{fsio.crc32(text.encode('utf-8')):08x} {text}\n"


def _parse_line(raw: bytes) -> dict | None:
    """Decode one framed line; ``None`` if torn or corrupted."""
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError:
        return None
    if not text.endswith("\n"):
        return None  # torn mid-record
    if len(text) < 10 or text[8] != " ":
        return None
    crc_hex, body_text = text[:8], text[9:-1]
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if fsio.crc32(body_text.encode("utf-8")) != expected:
        return None
    try:
        body = json.loads(body_text)
    except ValueError:
        return None
    if not isinstance(body, dict) or "lsn" not in body or "kind" not in body:
        return None
    return body


def _index_of(name: str, prefix: str, suffix: str) -> int | None:
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    stem = name[len(prefix):-len(suffix)]
    return int(stem) if stem.isdigit() else None


@dataclass
class _SegmentSummary:
    """Per-segment bookkeeping for pruning and ``v_monitor.journal``."""

    first_lsn: int = -1
    last_lsn: int = -1
    records: int = 0
    max_commit_epoch: int = 0

    def note(self, record: JournalRecord) -> None:
        if self.first_lsn < 0:
            self.first_lsn = record.lsn
        self.last_lsn = record.lsn
        self.records += 1
        if record.kind in ("commit", "restore"):
            self.max_commit_epoch = max(
                self.max_commit_epoch, record.payload.get("epoch", 0)
            )


class Journal:
    """Append-only, CRC-framed write-ahead journal over fsio.

    All appends funnel through :meth:`_append`, serialized by an
    internal lock (the commit path additionally holds the database's
    commit lock; DDL and tuple-mover maintenance may race it).
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ):
        self.directory = directory
        self.segment_records = segment_records
        self.checkpoint_interval = checkpoint_interval
        self.genesis: dict = {}
        #: Durable floor epoch: commits at or below it are fully in ROS
        #: on every node and need not be replayed.
        self.floor = 0
        self.checkpoint_lsn = -1
        self.last_replay: JournalReplay | None = None
        self._lock = threading.Lock()
        # concurrency: guarded-by(self._lock) — LSN counter, active
        # segment buffer, per-segment summaries and checkpoint index.
        self._next_lsn = 0
        self._active_index = 1
        self._active_lines: list[str] = []
        self._segments: dict[int, _SegmentSummary] = {}
        self._next_checkpoint_index = 1
        self._appends_since_checkpoint = 0

    # -- construction --------------------------------------------------

    @classmethod
    def exists(cls, directory: str) -> bool:
        """Whether ``directory`` already holds a journal."""
        if not os.path.isdir(directory):
            return False
        return any(
            _index_of(name, SEGMENT_PREFIX, SEGMENT_SUFFIX) is not None
            for name in os.listdir(directory)
        )

    @classmethod
    def create(
        cls,
        directory: str,
        genesis: dict,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> "Journal":
        """Start a fresh journal; its first record is the genesis."""
        if cls.exists(directory):
            raise DurabilityError(
                f"journal already exists at {directory!r}; "
                "use Database.open() to restart from it"
            )
        os.makedirs(directory, exist_ok=True)
        journal = cls(
            directory,
            segment_records=segment_records,
            checkpoint_interval=checkpoint_interval,
        )
        journal.genesis = dict(genesis)
        journal._append("genesis", dict(genesis))
        return journal

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> "Journal":
        """Reopen a journal from disk, validating every record.

        Damaged suffixes are truncated on disk (the segment is cut to
        its valid prefix; later segments are deleted) so that the next
        append extends a clean tail.  The recovered state is left in
        ``last_replay`` for the cold-start path.
        """
        if not cls.exists(directory):
            raise DurabilityError(f"no journal found at {directory!r}")
        journal = cls(
            directory,
            segment_records=segment_records,
            checkpoint_interval=checkpoint_interval,
        )
        journal.last_replay = journal._load()
        METRICS.inc("journal.cold_starts")
        METRICS.inc("journal.replay.records", len(journal.last_replay.records))
        METRICS.inc(
            "journal.replay.truncated", journal.last_replay.truncated_records
        )
        return journal

    # -- append path ---------------------------------------------------

    def log_ddl(self, kind: str, payload: dict) -> int:
        """Journal a catalog DDL statement (write-ahead of nothing —
        DDL is applied in memory by the caller; the journal makes it
        survive restart)."""
        return self._append(kind, payload)

    def log_commit(
        self,
        *,
        epoch: int,
        snapshot_epoch: int,
        inserts: dict,
        deletes: list,
        direct_to_ros: bool,
    ) -> int:
        """Journal one committed epoch *before* it is applied.

        ``deletes`` carries materialized row multisets (the rows the
        predicate selected at the snapshot), not the predicate itself —
        predicates are arbitrary callables and must not be required at
        replay time.
        """
        return self._append(
            "commit",
            {
                "epoch": epoch,
                "snapshot_epoch": snapshot_epoch,
                "direct_to_ros": direct_to_ros,
                "inserts": {table: list(rows) for table, rows in inserts.items()},
                "deletes": [
                    {"table": table, "rows": list(rows)} for table, rows in deletes
                ],
            },
        )

    def log_floor(self, epoch: int) -> int | None:
        """Record that every node's WOS is drained through ``epoch``."""
        if epoch <= self.floor:
            return None
        lsn = self._append("floor", {"epoch": epoch})
        self.floor = epoch
        return lsn

    def log_restore(self, *, epoch: int, current_epoch: int, entries: int) -> int:
        """Record that a backup image at ``epoch`` was adopted."""
        lsn = self._append(
            "restore",
            {"epoch": epoch, "current_epoch": current_epoch, "entries": entries},
        )
        self.floor = max(self.floor, epoch)
        return lsn

    def _append(self, kind: str, payload: dict) -> int:
        with self._lock:
            lsn = self._next_lsn
            line = _frame({"kind": kind, "lsn": lsn, "payload": payload})
            if len(self._active_lines) >= self.segment_records:
                self._active_index += 1
                self._active_lines = []
            self._active_lines.append(line)
            final = self._segment_path(self._active_index)
            data = "".join(self._active_lines).encode("utf-8")
            tmp = fsio.stage_file(final)
            fsio.write_bytes(tmp, data)
            faults.inject("journal.append.stage", files=[tmp])
            fsio.publish_file(tmp, final)
            # The record is durable from here on; fold it into the
            # in-memory state before the published-side fault point so
            # a "crash" there models an unacknowledged durable append.
            self._next_lsn = lsn + 1
            summary = self._segments.setdefault(self._active_index, _SegmentSummary())
            summary.note(JournalRecord(lsn, kind, payload))
            self._appends_since_checkpoint += 1
            METRICS.inc("journal.appends")
            METRICS.inc("journal.bytes_written", len(data))
            faults.inject("journal.append.publish", files=[final])
            return lsn

    # -- checkpointing -------------------------------------------------

    def should_checkpoint(self) -> bool:
        """Whether enough records accumulated to warrant a checkpoint."""
        return self._appends_since_checkpoint >= self.checkpoint_interval

    def write_checkpoint(
        self, *, floor: int, current_epoch: int, ahm: int, catalog: dict
    ) -> None:
        """Publish a checkpoint and prune segments it fully covers.

        Callers must guarantee ``floor`` is genuinely durable: every
        node is up and has drained its WOS through ``floor`` (the
        cluster only checkpoints right after an all-nodes moveout).
        """
        with self._lock:
            covered_lsn = self._next_lsn - 1
            floor = max(floor, self.floor)
            body = {
                "lsn": covered_lsn,
                "floor": floor,
                "current_epoch": current_epoch,
                "ahm": ahm,
                "catalog": catalog,
                "genesis": self.genesis,
            }
            final = self._checkpoint_path(self._next_checkpoint_index)
            line = _frame({"kind": "checkpoint", "lsn": covered_lsn, "payload": body})
            tmp = fsio.stage_file(final)
            fsio.write_bytes(tmp, line.encode("utf-8"))
            faults.inject("journal.checkpoint.stage", files=[tmp])
            fsio.publish_file(tmp, final)
            self._next_checkpoint_index += 1
            self.checkpoint_lsn = covered_lsn
            self.floor = floor
            self._appends_since_checkpoint = 0
            METRICS.inc("journal.checkpoints")
            faults.inject("journal.checkpoint.publish", files=[final])
            self._prune_segments()
            self._prune_checkpoints()

    def _prune_segments(self) -> None:
        for index in sorted(self._segments):
            if index == self._active_index:
                continue
            summary = self._segments[index]
            if summary.last_lsn > self.checkpoint_lsn:
                continue
            if summary.max_commit_epoch > self.floor:
                continue
            path = self._segment_path(index)
            if os.path.exists(path):
                os.remove(path)
            del self._segments[index]
            METRICS.inc("journal.segments_pruned")

    def _prune_checkpoints(self) -> None:
        stale = sorted(self._checkpoint_indexes())[:-CHECKPOINTS_RETAINED]
        for index in stale:
            os.remove(self._checkpoint_path(index))

    # -- replay --------------------------------------------------------

    def _load(self) -> JournalReplay:
        checkpoint, skipped = self._load_checkpoint()
        records, truncated = self._load_segments()
        if not records and checkpoint is None:
            raise DurabilityError(
                f"journal at {self.directory!r} has no valid records"
            )
        genesis = checkpoint["genesis"] if checkpoint else None
        if genesis is None:
            for record in records:
                if record.kind == "genesis":
                    genesis = record.payload
                    break
        if genesis is None:
            raise DurabilityError(
                f"journal at {self.directory!r} lost its genesis record"
            )
        self.genesis = dict(genesis)
        floor = checkpoint["floor"] if checkpoint else 0
        for record in records:
            if record.kind == "floor":
                floor = max(floor, record.payload["epoch"])
            elif record.kind == "restore":
                floor = max(floor, record.payload["epoch"])
        self.floor = floor
        self.checkpoint_lsn = checkpoint["lsn"] if checkpoint else -1
        last_lsn = max(
            [record.lsn for record in records] + [self.checkpoint_lsn]
        )
        self._next_lsn = last_lsn + 1
        # Deliberately NOT reset to 0: surviving un-checkpointed tail
        # records still count toward the next checkpoint trigger.
        self._appends_since_checkpoint = sum(
            1 for record in records if record.lsn > self.checkpoint_lsn
        )
        return JournalReplay(
            checkpoint=checkpoint,
            records=records,
            floor=floor,
            truncated_records=truncated,
            checkpoints_skipped=skipped,
        )

    def _load_checkpoint(self) -> tuple[dict | None, int]:
        skipped = 0
        indexes = sorted(self._checkpoint_indexes(), reverse=True)
        self._next_checkpoint_index = (indexes[0] + 1) if indexes else 1
        for index in indexes:
            with open(self._checkpoint_path(index), "rb") as handle:
                raw = handle.read()
            lines = raw.split(b"\n")
            body = _parse_line(lines[0] + b"\n") if lines and lines[0] else None
            if body is not None and body.get("kind") == "checkpoint":
                return body["payload"], skipped
            skipped += 1
        return None, skipped

    def _load_segments(self) -> tuple[list[JournalRecord], int]:
        indexes = sorted(self._segment_indexes())
        records: list[JournalRecord] = []
        truncated = 0
        damaged_at: int | None = None
        for position, index in enumerate(indexes):
            path = self._segment_path(index)
            with open(path, "rb") as handle:
                raw = handle.read()
            summary = _SegmentSummary()
            valid_bytes = 0
            segment_damaged = False
            offset = 0
            while offset < len(raw):
                newline = raw.find(b"\n", offset)
                if newline < 0:
                    # Unterminated tail: torn mid-record.
                    truncated += 1
                    segment_damaged = True
                    break
                line = raw[offset : newline + 1]
                body = _parse_line(line)
                if body is None:
                    truncated += 1 + raw[newline + 1 :].count(b"\n")
                    segment_damaged = True
                    break
                record = JournalRecord(body["lsn"], body["kind"], body["payload"])
                records.append(record)
                summary.note(record)
                valid_bytes += len(line)
                offset = newline + 1
            if summary.records:
                self._segments[index] = summary
            if segment_damaged:
                os.truncate(path, valid_bytes)
                damaged_at = position
                break
        if damaged_at is not None:
            # Everything after the damage is past the recovery point.
            for index in indexes[damaged_at + 1 :]:
                path = self._segment_path(index)
                with open(path, "rb") as handle:
                    truncated += handle.read().count(b"\n")
                os.remove(path)
                self._segments.pop(index, None)
        surviving = sorted(self._segments) or [1]
        self._active_index = surviving[-1]
        tail_path = self._segment_path(self._active_index)
        self._active_lines = []
        if os.path.exists(tail_path):
            with open(tail_path, "rb") as handle:
                for line in handle.read().splitlines(keepends=True):
                    self._active_lines.append(line.decode("utf-8"))
        return records, truncated

    # -- introspection -------------------------------------------------

    def monitor_rows(self) -> list[dict]:
        """Per-segment rows for ``v_monitor.journal``."""
        with self._lock:
            rows = []
            for index in sorted(self._segments):
                summary = self._segments[index]
                path = self._segment_path(index)
                rows.append(
                    {
                        "segment": os.path.basename(path),
                        "records": summary.records,
                        "bytes": os.path.getsize(path) if os.path.exists(path) else 0,
                        "first_lsn": summary.first_lsn,
                        "last_lsn": summary.last_lsn,
                        "is_active": index == self._active_index,
                        "checkpoint_lsn": self.checkpoint_lsn,
                        "floor_epoch": self.floor,
                    }
                )
            return rows

    def record_count(self) -> int:
        """Total records written so far (LSNs are dense from 0)."""
        return self._next_lsn

    def _segment_path(self, index: int) -> str:
        return os.path.join(
            self.directory, f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"
        )

    def _checkpoint_path(self, index: int) -> str:
        return os.path.join(
            self.directory, f"{CHECKPOINT_PREFIX}{index:06d}{CHECKPOINT_SUFFIX}"
        )

    def _segment_indexes(self) -> list[int]:
        return self._scan_indexes(SEGMENT_PREFIX, SEGMENT_SUFFIX)

    def _checkpoint_indexes(self) -> list[int]:
        return self._scan_indexes(CHECKPOINT_PREFIX, CHECKPOINT_SUFFIX)

    def _scan_indexes(self, prefix: str, suffix: str) -> list[int]:
        if not os.path.isdir(self.directory):
            return []
        found = []
        for name in os.listdir(self.directory):
            index = _index_of(name, prefix, suffix)
            if index is not None:
                found.append(index)
        return found
