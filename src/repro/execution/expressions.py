"""Scalar expressions with SQL NULL semantics.

Expressions evaluate vectorized over :class:`RowBlock` s.  Every
expression node can also *compile itself to a Python closure*
(:meth:`Expr.compiled`), removing per-row type/kind dispatch from the
inner loop — the spiritual equivalent of the paper's just-in-time
compilation of expression evaluation ("to avoid branching by compiling
the necessary assembly code on the fly", section 6.1), at the level
Python permits.

Three-valued logic is implemented throughout: any comparison or
arithmetic with NULL is NULL; AND/OR follow Kleene logic; predicates
treat NULL as not-passing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from .row_block import RowBlock

# ---------------------------------------------------------------------------
# base


class Expr:
    """Base class for scalar expression nodes."""

    def evaluate(self, block: RowBlock) -> list:
        """Evaluate over a block; returns one value per row."""
        return self.compiled()(block)

    def compiled(self):
        """Return a closure ``f(block) -> list`` specialized for this
        expression tree (cached)."""
        compiled = getattr(self, "_compiled", None)
        if compiled is None:
            compiled = self._compile()
            self._compiled = compiled
        return compiled

    def _compile(self):
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        """Names of all columns this expression reads."""
        raise NotImplementedError

    def evaluate_row(self, row: dict):
        """Evaluate against a single row dict (planner/constant use)."""
        block = RowBlock(
            columns={name: [value] for name, value in row.items()}, row_count=1
        )
        return self.evaluate(block)[0]

    # sugar for building trees in Python (examples / designer / tests)
    def __eq__(self, other):  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("<>", self, _wrap(other))

    def __lt__(self, other):
        return Comparison("<", self, _wrap(other))

    def __le__(self, other):
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other):
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other):
        return Comparison(">=", self, _wrap(other))

    def __add__(self, other):
        return Arithmetic("+", self, _wrap(other))

    def __sub__(self, other):
        return Arithmetic("-", self, _wrap(other))

    def __mul__(self, other):
        return Arithmetic("*", self, _wrap(other))

    def __truediv__(self, other):
        return Arithmetic("/", self, _wrap(other))

    def __hash__(self):
        return hash(repr(self))


def _wrap(value) -> "Expr":
    return value if isinstance(value, Expr) else Literal(value)


# ---------------------------------------------------------------------------
# leaves


class ColumnRef(Expr):
    """Reference to a column by name."""

    def __init__(self, name: str):
        self.name = name

    def _compile(self):
        name = self.name

        def run(block: RowBlock) -> list:
            return block.column(name)

        return run

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self):
        return self.name


class Literal(Expr):
    """A constant value."""

    def __init__(self, value):
        self.value = value

    def _compile(self):
        value = self.value

        def run(block: RowBlock) -> list:
            return [value] * block.row_count

        return run

    def referenced_columns(self) -> set[str]:
        return set()

    def __repr__(self):
        return repr(self.value)


# ---------------------------------------------------------------------------
# comparisons

_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Expr):
    """Binary comparison with NULL -> NULL semantics."""

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _COMPARATORS:
            raise ExecutionError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compile(self):
        compare = _COMPARATORS[self.op]
        left = self.left.compiled()
        right = self.right.compiled()

        def run(block: RowBlock) -> list:
            return [
                None if a is None or b is None else compare(a, b)
                for a, b in zip(left(block), right(block))
            ]

        return run

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Between(Expr):
    """``expr BETWEEN low AND high`` (inclusive)."""

    def __init__(self, value: Expr, low: Expr, high: Expr):
        self.value = value
        self.low = low
        self.high = high

    def _compile(self):
        value = self.value.compiled()
        low = self.low.compiled()
        high = self.high.compiled()

        def run(block: RowBlock) -> list:
            return [
                None if v is None or lo is None or hi is None else lo <= v <= hi
                for v, lo, hi in zip(value(block), low(block), high(block))
            ]

        return run

    def referenced_columns(self) -> set[str]:
        return (
            self.value.referenced_columns()
            | self.low.referenced_columns()
            | self.high.referenced_columns()
        )

    def __repr__(self):
        return f"({self.value!r} BETWEEN {self.low!r} AND {self.high!r})"


class InList(Expr):
    """``expr IN (v1, v2, ...)`` against constant values."""

    def __init__(self, value: Expr, options: list):
        self.value = value
        self.options = options

    def _compile(self):
        value = self.value.compiled()
        options = frozenset(self.options)

        def run(block: RowBlock) -> list:
            return [None if v is None else v in options for v in value(block)]

        return run

    def referenced_columns(self) -> set[str]:
        return self.value.referenced_columns()

    def __repr__(self):
        return f"({self.value!r} IN {sorted(map(repr, self.options))})"


class IsNull(Expr):
    """``expr IS [NOT] NULL``; never returns NULL itself."""

    def __init__(self, value: Expr, negated: bool = False):
        self.value = value
        self.negated = negated

    def _compile(self):
        value = self.value.compiled()
        negated = self.negated

        def run(block: RowBlock) -> list:
            if negated:
                return [v is not None for v in value(block)]
            return [v is None for v in value(block)]

        return run

    def referenced_columns(self) -> set[str]:
        return self.value.referenced_columns()

    def __repr__(self):
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.value!r} {middle})"


# ---------------------------------------------------------------------------
# boolean connectives (Kleene three-valued logic)


class And(Expr):
    """N-ary AND."""

    def __init__(self, *operands: Expr):
        if not operands:
            raise ExecutionError("AND needs operands")
        self.operands = list(operands)

    def _compile(self):
        compiled = [operand.compiled() for operand in self.operands]

        def run(block: RowBlock) -> list:
            result = compiled[0](block)
            for part in compiled[1:]:
                result = [_and3(a, b) for a, b in zip(result, part(block))]
            return result

        return run

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.referenced_columns()
        return out

    def __repr__(self):
        return "(" + " AND ".join(map(repr, self.operands)) + ")"


class Or(Expr):
    """N-ary OR."""

    def __init__(self, *operands: Expr):
        if not operands:
            raise ExecutionError("OR needs operands")
        self.operands = list(operands)

    def _compile(self):
        compiled = [operand.compiled() for operand in self.operands]

        def run(block: RowBlock) -> list:
            result = compiled[0](block)
            for part in compiled[1:]:
                result = [_or3(a, b) for a, b in zip(result, part(block))]
            return result

        return run

    def referenced_columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.referenced_columns()
        return out

    def __repr__(self):
        return "(" + " OR ".join(map(repr, self.operands)) + ")"


class Not(Expr):
    """Logical NOT (NULL stays NULL)."""

    def __init__(self, operand: Expr):
        self.operand = operand

    def _compile(self):
        operand = self.operand.compiled()

        def run(block: RowBlock) -> list:
            return [None if v is None else not v for v in operand(block)]

        return run

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self):
        return f"(NOT {self.operand!r})"


def _and3(a, b):
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _or3(a, b):
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


# ---------------------------------------------------------------------------
# arithmetic and functions


def _safe_div(a, b):
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return a / b


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _safe_div,
    "%": lambda a, b: a % b,
}


class Arithmetic(Expr):
    """Binary arithmetic with NULL propagation."""

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITHMETIC:
            raise ExecutionError(f"unknown arithmetic op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compile(self):
        apply = _ARITHMETIC[self.op]
        left = self.left.compiled()
        right = self.right.compiled()

        def run(block: RowBlock) -> list:
            return [
                None if a is None or b is None else apply(a, b)
                for a, b in zip(left(block), right(block))
            ]

        return run

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


def _date_part(part: str):
    from ..types import days_to_date

    def extract(days: int) -> int:
        return getattr(days_to_date(days), part)

    return extract


_SCALAR_FUNCTIONS = {  # concurrency: immutable
    "ABS": abs,
    "LENGTH": len,
    "UPPER": str.upper,
    "LOWER": str.lower,
    "FLOOR": lambda v: int(v // 1),
    "CEIL": lambda v: -int(-v // 1),
    "ROUND": round,
    "NEGATE": lambda v: -v,
    # date parts over DATE day numbers (the paper's partition
    # expressions are typically month/year extractions, section 3.5)
    "YEAR": _date_part("year"),
    "MONTH": _date_part("month"),
    "DAY": _date_part("day"),
}


class FunctionCall(Expr):
    """Unary scalar function with NULL propagation."""

    def __init__(self, name: str, operand: Expr):
        key = name.upper()
        if key not in _SCALAR_FUNCTIONS:
            raise ExecutionError(f"unknown function {name!r}")
        self.name = key
        self.operand = operand

    def _compile(self):
        apply = _SCALAR_FUNCTIONS[self.name]
        operand = self.operand.compiled()

        def run(block: RowBlock) -> list:
            return [None if v is None else apply(v) for v in operand(block)]

        return run

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self):
        return f"{self.name}({self.operand!r})"


class Like(Expr):
    """SQL LIKE with ``%`` and ``_`` wildcards (NULL input -> NULL)."""

    def __init__(self, value: Expr, pattern: str, negated: bool = False):
        import re

        self.value = value
        self.pattern = pattern
        self.negated = negated
        regex_parts = []
        for char in pattern:
            if char == "%":
                regex_parts.append(".*")
            elif char == "_":
                regex_parts.append(".")
            else:
                regex_parts.append(re.escape(char))
        self._regex = re.compile("^" + "".join(regex_parts) + "$", re.DOTALL)

    def _compile(self):
        regex = self._regex
        negated = self.negated
        value = self.value.compiled()

        def run(block: RowBlock) -> list:
            out = []
            for v in value(block):
                if v is None:
                    out.append(None)
                else:
                    matched = regex.match(v) is not None
                    out.append(not matched if negated else matched)
            return out

        return run

    def referenced_columns(self) -> set[str]:
        return self.value.referenced_columns()

    def __repr__(self):
        middle = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.value!r} {middle} {self.pattern!r})"


class CaseWhen(Expr):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    def __init__(self, branches: list[tuple[Expr, Expr]], default: Expr | None = None):
        self.branches = branches
        self.default = default or Literal(None)

    def _compile(self):
        compiled = [
            (condition.compiled(), value.compiled())
            for condition, value in self.branches
        ]
        default = self.default.compiled()

        def run(block: RowBlock) -> list:
            conditions = [(c(block), v(block)) for c, v in compiled]
            defaults = default(block)
            out = []
            for index in range(block.row_count):
                for condition_values, branch_values in conditions:
                    if condition_values[index] is True:
                        out.append(branch_values[index])
                        break
                else:
                    out.append(defaults[index])
            return out

        return run

    def referenced_columns(self) -> set[str]:
        out = self.default.referenced_columns()
        for condition, value in self.branches:
            out |= condition.referenced_columns() | value.referenced_columns()
        return out

    def __repr__(self):
        parts = " ".join(
            f"WHEN {condition!r} THEN {value!r}"
            for condition, value in self.branches
        )
        return f"(CASE {parts} ELSE {self.default!r} END)"


# ---------------------------------------------------------------------------
# tree rewriting


def substitute_columns(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Return a copy of ``expr`` with column names rewritten per
    ``mapping`` (used to translate aliased output names back to stored
    column names when pushing predicates into scans)."""
    if isinstance(expr, ColumnRef):
        return ColumnRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op,
            substitute_columns(expr.left, mapping),
            substitute_columns(expr.right, mapping),
        )
    if isinstance(expr, Between):
        return Between(
            substitute_columns(expr.value, mapping),
            substitute_columns(expr.low, mapping),
            substitute_columns(expr.high, mapping),
        )
    if isinstance(expr, InList):
        return InList(substitute_columns(expr.value, mapping), expr.options)
    if isinstance(expr, IsNull):
        return IsNull(substitute_columns(expr.value, mapping), expr.negated)
    if isinstance(expr, And):
        return And(*(substitute_columns(op, mapping) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(*(substitute_columns(op, mapping) for op in expr.operands))
    if isinstance(expr, Not):
        return Not(substitute_columns(expr.operand, mapping))
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, substitute_columns(expr.operand, mapping))
    if isinstance(expr, Like):
        return Like(substitute_columns(expr.value, mapping), expr.pattern, expr.negated)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            [
                (
                    substitute_columns(condition, mapping),
                    substitute_columns(value, mapping),
                )
                for condition, value in expr.branches
            ],
            substitute_columns(expr.default, mapping),
        )
    raise ExecutionError(f"cannot substitute into {type(expr).__name__}")


# ---------------------------------------------------------------------------
# predicate analysis helpers (used by Scan push-down and the optimizer)


def column_range_from_predicate(expr: Expr | None) -> dict[str, tuple]:
    """Extract per-column (low, high) bounds from a conjunctive
    predicate, for ROS container / block pruning.

    Understands ``col <op> literal`` (and the mirrored form), BETWEEN,
    and conjunctions thereof.  Anything else contributes no bound.
    """
    bounds: dict[str, tuple] = {}
    if expr is None:
        return bounds

    def tighten(column: str, low, high):
        current_low, current_high = bounds.get(column, (None, None))
        if low is not None and (current_low is None or low > current_low):
            current_low = low
        if high is not None and (current_high is None or high < current_high):
            current_high = high
        bounds[column] = (current_low, current_high)

    def walk(node: Expr):
        if isinstance(node, And):
            for operand in node.operands:
                walk(operand)
            return
        if isinstance(node, Between) and isinstance(node.value, ColumnRef):
            if isinstance(node.low, Literal) and isinstance(node.high, Literal):
                tighten(node.value.name, node.low.value, node.high.value)
            return
        if isinstance(node, Comparison):
            column, op, literal = None, node.op, None
            if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
                column, literal = node.left.name, node.right.value
            elif isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
                column, literal = node.right.name, node.left.value
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if column is None or literal is None:
                return
            if op == "=":
                tighten(column, literal, literal)
            elif op in ("<", "<="):
                tighten(column, None, literal)
            elif op in (">", ">="):
                tighten(column, literal, None)

    walk(expr)
    return bounds
