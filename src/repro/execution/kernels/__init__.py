"""Vectorized batch kernels: operate-on-compressed execution (section 6.1).

    The EE's implementation is heavily optimized to reduce the number
    of function calls [...] Vertica operates on the encoded data
    whenever possible.  (section 6.1)

This package is the kernel side of the two-engine execution model:

* :mod:`.vectors` — columnar vectors that keep a block's *encoded
  representation* (RLE runs, dictionary codes) alive across operators
  while still looking like ordinary Python sequences, so any operator
  that was never taught about kernels transparently materializes;
* :mod:`.selection` — selection bitmaps/position-ranges describing the
  rows a predicate kept, composable without touching data columns;
* :mod:`.predicates` — a compiler from the expression tree to
  vectorized predicate kernels (dictionary comparisons test each
  dictionary entry once, RLE predicates test each run once, sorted
  columns binary-search) returning ``None`` for anything unsupported;
* :mod:`.aggregate` — GroupBy/aggregate kernels (RLE run arithmetic,
  dictionary-keyed accumulation, bulk folds over plain columns).

Every kernel has a row-engine twin: when a predicate or aggregate
shape is not kernelizable the operator falls back to the existing
per-row path, and ``REPRO_FORCE_ROW_ENGINE=1`` forces that fallback
globally — the hook the kernel-vs-row differential harness uses to run
the same query through both engines and demand identical answers.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .selection import Selection
from .vectors import ColumnVector, DictVector, PlainVector, RleVector, as_list

#: Environment variable that disables every kernel path when set to a
#: non-empty value other than "0".
FORCE_ROW_ENV = "REPRO_FORCE_ROW_ENGINE"


def kernels_enabled() -> bool:
    """Whether operators may use kernel paths (checked per operator run)."""
    return os.environ.get(FORCE_ROW_ENV, "") in ("", "0")


@contextmanager
def force_row_engine() -> Iterator[None]:
    """Force the row engine within a ``with`` block (tests/harness)."""
    previous = os.environ.get(FORCE_ROW_ENV)
    os.environ[FORCE_ROW_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[FORCE_ROW_ENV]
        else:
            os.environ[FORCE_ROW_ENV] = previous


__all__ = [
    "FORCE_ROW_ENV",
    "ColumnVector",
    "DictVector",
    "PlainVector",
    "RleVector",
    "Selection",
    "as_list",
    "force_row_engine",
    "kernels_enabled",
]
