"""Column vectors: encoded columnar data with a plain-sequence façade.

A :class:`ColumnVector` carries one block-range of one column in its
*encoded representation* — RLE runs or block-dictionary codes — plus a
lazily-built, cached materialization.  Vectors implement the read-only
sequence protocol (``len``, indexing, slicing, iteration), so they can
sit inside a :class:`repro.execution.row_block.RowBlock` and flow
through operators that know nothing about kernels: the first per-row
access simply materializes the values.  Kernel-aware operators instead
dispatch on the vector kind and work on runs/codes directly.

NULL handling contract: :class:`RleVector` and :class:`DictVector`
never contain NULLs — storage blocks with NULLs decode to a
:class:`PlainVector` (the presence bitmap's positions do not line up
with run/code positions, so the encoded form is not usable once NULLs
enter the picture).  ``null_count`` is therefore exact on every vector.
"""

from __future__ import annotations


class ColumnVector:
    """Base class: a fixed-length, read-only column of values."""

    __slots__ = ("row_count", "null_count", "_values")

    #: Encoded-representation kind: "plain" | "rle" | "dict".
    kind = "plain"

    def __init__(self, row_count: int, null_count: int):
        self.row_count = row_count
        self.null_count = null_count
        self._values: list | None = None

    def values(self) -> list:
        """The materialized value list (decoded once, then cached)."""
        values = self._values
        if values is None:
            values = self._values = self._materialize()
        return values

    def _materialize(self) -> list:
        raise NotImplementedError

    # -- sequence protocol (transparent fallback for row operators) ------

    def __len__(self) -> int:
        return self.row_count

    def __iter__(self):
        return iter(self.values())

    def __getitem__(self, index):
        return self.values()[index]

    def __contains__(self, value) -> bool:
        return value in self.values()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rows={self.row_count})"


class PlainVector(ColumnVector):
    """An already-decoded value list, annotated with its NULL count."""

    __slots__ = ()

    kind = "plain"

    def __init__(self, values: list, null_count: int):
        super().__init__(len(values), null_count)
        self._values = values

    def _materialize(self) -> list:  # pragma: no cover - set in __init__
        return self._values


class RleVector(ColumnVector):
    """A column held as ``(value, run_length)`` pairs (no NULLs)."""

    __slots__ = ("runs",)

    kind = "rle"

    def __init__(self, runs: list[tuple], row_count: int | None = None):
        if row_count is None:
            row_count = sum(length for _, length in runs)
        super().__init__(row_count, 0)
        self.runs = runs

    def _materialize(self) -> list:
        out: list = []
        for value, length in self.runs:
            out.extend([value] * length)
        return out


class DictVector(ColumnVector):
    """A column held as dictionary codes plus the entry list (no NULLs).

    The dictionary is block-local (section 3.4.1), so a vector never
    spans storage blocks: batches are cut at block boundaries.
    """

    __slots__ = ("codes", "entries")

    kind = "dict"

    def __init__(self, codes: list[int], entries: list):
        super().__init__(len(codes), 0)
        self.codes = codes
        self.entries = entries

    def _materialize(self) -> list:
        entries = self.entries
        return [entries[code] for code in self.codes]


def as_list(column) -> list:
    """Materialize ``column`` (vector or plain list) as a plain list.

    Row-path code that indexes per row calls this first so the inner
    loop runs over a real list instead of paying a method call per
    element on a vector.
    """
    if isinstance(column, ColumnVector):
        return column.values()
    return column


def null_count_of(column) -> int | None:
    """Exact NULL count for vectors; None (unknown) for plain lists."""
    if isinstance(column, ColumnVector):
        return column.null_count
    return None
