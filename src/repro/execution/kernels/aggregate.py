"""GroupBy/aggregate kernels: RLE run arithmetic and dictionary keys.

    Vertica's EE [...] operates directly on encoded data: a COUNT over
    an RLE run is the run length, a SUM is value x length.  (section 6.1)

:func:`absorb_block_kernel` is the batch twin of
``_AggregationCore.absorb_block``: it folds one block into the group
hash table without the per-row ``tuple(...)`` key build when the block's
structure allows it, and reports ``False`` (fold nothing) when it does
not so the caller can run the row path instead.

Kernelized shapes, tried in order:

* **global aggregates** (no keys) — each accumulator folds the whole
  column at once: RLE columns via ``add_run`` (O(runs)), dictionary
  columns via a code histogram, plain columns via ``add_bulk`` (C-speed
  ``sum``/``min``/``max``);
* **run-structured keys** — all key columns RLE, or the block sorted by
  a permutation of the keys: adjacent equal keys collapse to one hash
  probe and one bulk fold per run;
* **single dictionary key** — rows bucketed by dictionary *code*
  (integers), the key value looked up once per distinct code.

Anything else (expression keys, DISTINCT, user-defined aggregates,
unstructured multi-column keys) returns ``False``; correctness never
depends on the kernel path firing.
"""

from __future__ import annotations

from itertools import groupby as _runs_of

from ..expressions import ColumnRef
from .vectors import DictVector, RleVector, as_list, null_count_of


def groupby_kernel_supported(core) -> bool:
    """Whether ``core``'s shape is in the kernel dialect at all.

    Keys must be plain column references and every aggregate a built-in
    over a column (or COUNT(*)), without DISTINCT — the same spec the
    paper's single-instruction aggregation loops assume.
    """
    if not all(isinstance(expr, ColumnRef) for expr in core.key_exprs):
        return False
    for spec in core.specs:
        if spec.distinct or spec.is_user_defined:
            return False
        if spec.arg is not None and not isinstance(spec.arg, ColumnRef):
            return False
    return True


def absorb_block_kernel(core, groups: dict, block) -> bool:
    """Fold ``block`` into ``groups`` via batch kernels.

    Returns True when the block was fully absorbed; False means the
    block's structure has no kernel shape and the caller must fold it
    through the row path.  Assumes :func:`groupby_kernel_supported`.
    """
    row_count = block.row_count
    if row_count == 0:
        return True
    arg_columns = [
        block.column(spec.arg.name) if spec.arg is not None else None
        for spec in core.specs
    ]
    if not core.key_exprs:
        accumulators = groups.get(())
        if accumulators is None:
            accumulators = groups[()] = core.new_accumulators()
        _fold_whole_columns(accumulators, arg_columns, row_count)
        return True
    key_columns = [block.column(expr.name) for expr in core.key_exprs]
    runs = _key_runs(block, core.key_exprs, key_columns)
    if runs is not None:
        arg_values = [
            as_list(column) if column is not None else None
            for column in arg_columns
        ]
        for key, start, stop in runs:
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = groups[key] = core.new_accumulators()
            length = stop - start
            for accumulator, values in zip(accumulators, arg_values):
                if values is None:
                    accumulator.add_count_star(length)
                else:
                    accumulator.add_bulk(values[start:stop])
        return True
    if len(key_columns) == 1 and isinstance(key_columns[0], DictVector):
        _absorb_dict_key(core, groups, key_columns[0], arg_columns)
        return True
    return False


# -- internals -------------------------------------------------------------


def _fold_whole_columns(accumulators, arg_columns, row_count: int) -> None:
    """Global aggregate: fold each argument column in one shot."""
    for accumulator, column in zip(accumulators, arg_columns):
        if column is None:
            accumulator.add_count_star(row_count)
        elif isinstance(column, RleVector):
            for value, length in column.runs:
                accumulator.add_run(value, length)
        elif isinstance(column, DictVector):
            entries = column.entries
            histogram: dict[int, int] = {}
            for code in column.codes:
                histogram[code] = histogram.get(code, 0) + 1
            for code, count in histogram.items():
                accumulator.add_run(entries[code], count)
        else:
            accumulator.add_bulk(as_list(column), null_count_of(column))


def _key_runs(block, key_exprs, key_columns):
    """Iterator of ``(key_tuple, start, stop)`` runs, or None.

    Correctness does not require sortedness (the hash table tolerates a
    key recurring), but a run structure is only *profitable* when equal
    keys are adjacent: every key column RLE, or the block sorted by a
    permutation of the keys.
    """
    all_rle = all(isinstance(column, RleVector) for column in key_columns)
    if len(key_columns) == 1 and isinstance(key_columns[0], RleVector):
        def single_runs():
            position = 0
            for value, length in key_columns[0].runs:
                yield (value,), position, position + length
                position += length

        return single_runs()
    if not all_rle:
        sorted_by = getattr(block, "sorted_by", None) or ()
        key_names = {expr.name for expr in key_exprs}
        if key_names != set(sorted_by[: len(key_names)]):
            return None

    def merged_runs():
        value_lists = [as_list(column) for column in key_columns]
        position = 0
        for key, group in _runs_of(zip(*value_lists)):
            length = sum(1 for _ in group)
            yield key, position, position + length
            position += length

    return merged_runs()


def _absorb_dict_key(core, groups: dict, key, arg_columns) -> None:
    """Single dictionary-coded key: bucket rows by integer code."""
    entries = key.entries
    if all(column is None for column in arg_columns):
        # pure COUNT(*): a code histogram is the whole answer.
        histogram: dict[int, int] = {}
        for code in key.codes:
            histogram[code] = histogram.get(code, 0) + 1
        for code, count in histogram.items():
            accumulators = groups.get((entries[code],))
            if accumulators is None:
                accumulators = groups[(entries[code],)] = core.new_accumulators()
            for accumulator in accumulators:
                accumulator.add_count_star(count)
        return
    buckets: dict[int, list[int]] = {}
    for position, code in enumerate(key.codes):
        bucket = buckets.get(code)
        if bucket is None:
            bucket = buckets[code] = []
        bucket.append(position)
    for code, positions in buckets.items():
        accumulators = groups.get((entries[code],))
        if accumulators is None:
            accumulators = groups[(entries[code],)] = core.new_accumulators()
        count = len(positions)
        for accumulator, column in zip(accumulators, arg_columns):
            if column is None:
                accumulator.add_count_star(count)
            else:
                values = as_list(column)
                accumulator.add_bulk(list(map(values.__getitem__, positions)))
