"""Selections: which rows of a block a predicate kept.

A :class:`Selection` is the kernel engine's answer to "which rows
passed", decoupled from the data columns so late materialization works:
Filter computes a selection from only the predicate's columns, and the
remaining output columns are touched (and decoded) only if the
selection is non-empty.

Two physical representations, chosen by how the selection was built:

* a **mask** — one bool per row (general predicates);
* **position ranges** — sorted, disjoint ``[start, stop)`` intervals
  (RLE-run predicates and binary-searched sorted columns), which keep
  run structure exploitable downstream and compose in O(ranges).

Selections are *definite*: they record rows where the predicate is
TRUE (SQL three-valued logic resolved at the leaves — NULL never
passes).  ``invert`` is therefore only used where its complement is
also definite (IS NULL tests, bitmap algebra), never to implement NOT
over a three-valued predicate; the predicate compiler pushes NOT down
to the leaves instead.
"""

from __future__ import annotations

from itertools import compress

from .vectors import ColumnVector, DictVector, RleVector


class Selection:
    """An immutable set of kept row positions within one block."""

    __slots__ = ("row_count", "count", "_mask", "_ranges")

    def __init__(self, row_count: int, mask=None, ranges=None, count=None):
        self.row_count = row_count
        self._mask = mask
        self._ranges = ranges
        if count is None:
            if mask is not None:
                count = sum(mask)
            else:
                count = sum(stop - start for start, stop in ranges)
        self.count = count

    # -- constructors ----------------------------------------------------

    @classmethod
    def all_rows(cls, row_count: int) -> "Selection":
        """Every row kept."""
        ranges = [(0, row_count)] if row_count else []
        return cls(row_count, ranges=ranges, count=row_count)

    @classmethod
    def none(cls, row_count: int) -> "Selection":
        """No row kept."""
        return cls(row_count, ranges=[], count=0)

    @classmethod
    def from_mask(cls, mask: list) -> "Selection":
        """From one bool per row."""
        return cls(len(mask), mask=mask)

    @classmethod
    def from_ranges(cls, ranges: list[tuple], row_count: int) -> "Selection":
        """From sorted, disjoint ``[start, stop)`` intervals (merged here
        so callers may hand adjacent pieces)."""
        merged: list[tuple] = []
        for start, stop in ranges:
            if stop <= start:
                continue
            if merged and start <= merged[-1][1]:
                previous = merged[-1]
                merged[-1] = (previous[0], max(previous[1], stop))
            else:
                merged.append((start, stop))
        return cls(row_count, ranges=merged)

    # -- views -----------------------------------------------------------

    @property
    def is_all(self) -> bool:
        return self.count == self.row_count

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def mask(self) -> list:
        """One bool per row (materialized from ranges when needed)."""
        if self._mask is not None:
            return self._mask
        mask = [False] * self.row_count
        for start, stop in self._ranges:
            mask[start:stop] = [True] * (stop - start)
        return mask

    def ranges(self) -> list[tuple] | None:
        """The interval list, or None when held as a mask."""
        return self._ranges

    def positions(self) -> list[int]:
        """Kept row positions, ascending."""
        if self._ranges is not None:
            out: list[int] = []
            for start, stop in self._ranges:
                out.extend(range(start, stop))
            return out
        return [index for index, flag in enumerate(self.mask()) if flag]

    # -- algebra ---------------------------------------------------------

    def intersect(self, other: "Selection") -> "Selection":
        """Rows kept by both (conjunction)."""
        if self.is_empty or other.is_all:
            return self
        if other.is_empty or self.is_all:
            return other
        if self._ranges is not None and other._ranges is not None:
            return Selection.from_ranges(
                _intersect_ranges(self._ranges, other._ranges), self.row_count
            )
        mask = [a and b for a, b in zip(self.mask(), other.mask())]
        return Selection.from_mask(mask)

    def union(self, other: "Selection") -> "Selection":
        """Rows kept by either (disjunction)."""
        if self.is_all or other.is_empty:
            return self
        if other.is_all or self.is_empty:
            return other
        if self._ranges is not None and other._ranges is not None:
            merged = sorted(self._ranges + other._ranges)
            return Selection.from_ranges(merged, self.row_count)
        mask = [a or b for a, b in zip(self.mask(), other.mask())]
        return Selection.from_mask(mask)

    def invert(self) -> "Selection":
        """The complementary row set (bitmap algebra; see module note)."""
        if self._ranges is not None:
            out: list[tuple] = []
            cursor = 0
            for start, stop in self._ranges:
                if start > cursor:
                    out.append((cursor, start))
                cursor = stop
            if cursor < self.row_count:
                out.append((cursor, self.row_count))
            return Selection.from_ranges(out, self.row_count)
        return Selection.from_mask([not flag for flag in self.mask()])

    # -- application -----------------------------------------------------

    def apply(self, column):
        """Filter one column (vector or list) down to the kept rows.

        Encoded representations survive where the math allows: ranges
        slice RLE runs run-by-run and dictionary vectors keep their
        dictionary with compressed code lists.
        """
        if self.is_all:
            return column
        if self.is_empty:
            return []
        if self._ranges is not None:
            if isinstance(column, DictVector):
                codes = column.codes
                kept: list = []
                for start, stop in self._ranges:
                    kept.extend(codes[start:stop])
                return DictVector(kept, column.entries)
            if isinstance(column, RleVector):
                return RleVector(
                    _slice_runs(column.runs, self._ranges), self.count
                )
            values = column.values() if isinstance(column, ColumnVector) else column
            out: list = []
            for start, stop in self._ranges:
                out.extend(values[start:stop])
            return out
        mask = self._mask
        if isinstance(column, DictVector):
            return DictVector(list(compress(column.codes, mask)), column.entries)
        values = column.values() if isinstance(column, ColumnVector) else column
        return list(compress(values, mask))

    def __repr__(self) -> str:
        shape = "ranges" if self._ranges is not None else "mask"
        return f"Selection({self.count}/{self.row_count} {shape})"


def _intersect_ranges(left: list[tuple], right: list[tuple]) -> list[tuple]:
    """Interval intersection of two sorted disjoint interval lists."""
    out: list[tuple] = []
    i = j = 0
    while i < len(left) and j < len(right):
        start = max(left[i][0], right[j][0])
        stop = min(left[i][1], right[j][1])
        if start < stop:
            out.append((start, stop))
        if left[i][1] <= right[j][1]:
            i += 1
        else:
            j += 1
    return out


def _slice_runs(runs: list[tuple], ranges: list[tuple]) -> list[tuple]:
    """Restrict ``runs`` to the row positions covered by ``ranges``."""
    out: list[tuple] = []
    boundaries: list[tuple] = []  # (run_start, run_stop, value)
    position = 0
    for value, length in runs:
        boundaries.append((position, position + length, value))
        position += length
    j = 0
    for start, stop in ranges:
        while j < len(boundaries) and boundaries[j][1] <= start:
            j += 1
        k = j
        while k < len(boundaries) and boundaries[k][0] < stop:
            run_start, run_stop, value = boundaries[k]
            kept = min(run_stop, stop) - max(run_start, start)
            if kept > 0:
                if out and out[-1][0] == value:
                    out[-1] = (value, out[-1][1] + kept)
                else:
                    out.append((value, kept))
            k += 1
    return out
