"""Compiling expression trees into vectorized predicate kernels.

:func:`compile_kernel_predicate` turns a predicate :class:`Expr` into a
:class:`KernelPredicate` — a function from a block's columns to a
:class:`Selection` of the rows where the predicate is TRUE — or returns
``None`` when any part of the tree is outside the kernel dialect, in
which case the operator falls back to the row engine.

What the kernels exploit, per column representation:

* **dictionary vectors** — the scalar test runs once per dictionary
  entry (at most 4096 tests per block), then rows are selected by code
  lookup (section 6.1's "compares run length encoded data without
  decompressing");
* **RLE vectors** — the test runs once per run, emitting position
  ranges, so a block of K runs costs O(K) regardless of row count;
* **sorted plain columns** — comparisons and BETWEEN against the
  block's leading sort column binary-search the value list into a
  handful of position ranges (the paper's "applies predicates in the
  most advantageous manner possible");
* anything else — a straight vectorized mask.

Three-valued logic: a Selection records rows where the predicate is
definitely TRUE.  NOT is therefore *pushed to the leaves* (De Morgan is
sound in Kleene logic) and each leaf bakes negation into its scalar
test over non-NULL values; NULL rows never enter a selection, matching
the row engine's "NULL does not pass" semantics exactly.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from ..expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from .selection import Selection
from .vectors import DictVector, RleVector, as_list, null_count_of

#: Comparison op under logical negation (sound because the leaf only
#: ever evaluates non-NULL values; NULL is excluded separately).
_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: Comparison op mirrored across its operands (literal <op> column).
_MIRRORED_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}

_SCALAR_TESTS = {
    "=": lambda lit: lambda v: v == lit,
    "<>": lambda lit: lambda v: v != lit,
    "<": lambda lit: lambda v: v < lit,
    "<=": lambda lit: lambda v: v <= lit,
    ">": lambda lit: lambda v: v > lit,
    ">=": lambda lit: lambda v: v >= lit,
}


class KernelPredicate:
    """A compiled vectorized predicate.

    Call with ``(columns, row_count, sorted_by)`` where ``columns``
    maps the predicate's column names to vectors/lists, and
    ``sorted_by`` names the columns the block is sorted by (ascending,
    major first; empty when unknown).  Returns the TRUE-row Selection.
    """

    __slots__ = ("columns", "_evaluate")

    def __init__(self, columns: frozenset, evaluate):
        self.columns = columns
        self._evaluate = evaluate

    def __call__(self, columns, row_count, sorted_by=()) -> Selection:
        return self._evaluate(columns, row_count, sorted_by)


def compile_kernel_predicate(expr: Expr) -> KernelPredicate | None:
    """Compile ``expr`` to a kernel, or None if unsupported (cached)."""
    cached = getattr(expr, "_kernel_predicate_cache", None)
    if cached is not None:
        return cached[0]
    compiled = _compile(expr, negated=False)
    if compiled is None:
        predicate = None
    else:
        evaluate, columns = compiled
        predicate = KernelPredicate(frozenset(columns), evaluate)
    try:
        expr._kernel_predicate_cache = (predicate,)
    except AttributeError:  # pragma: no cover - exotic Expr subclass
        pass
    return predicate


def kernel_predicate_supported(expr: Expr | None) -> bool:
    """Whether the kernel engine can evaluate ``expr`` (EXPLAIN hook)."""
    if expr is None:
        return True
    return compile_kernel_predicate(expr) is not None


# -- compilation -----------------------------------------------------------


def _compile(expr: Expr, negated: bool):
    """Return ``(evaluate, column_names)`` or None if unsupported."""
    if isinstance(expr, Not):
        return _compile(expr.operand, not negated)
    if isinstance(expr, (And, Or)):
        # De Morgan under negation: NOT(a AND b) == NOT a OR NOT b.
        conjunction = isinstance(expr, And) != negated
        parts = [_compile(operand, negated) for operand in expr.operands]
        if any(part is None for part in parts):
            return None
        evaluators = [evaluate for evaluate, _ in parts]
        columns: set[str] = set()
        for _, names in parts:
            columns |= names

        if conjunction:
            def evaluate(block_columns, row_count, sorted_by):
                result = evaluators[0](block_columns, row_count, sorted_by)
                for child in evaluators[1:]:
                    if result.is_empty:
                        return result
                    result = result.intersect(
                        child(block_columns, row_count, sorted_by)
                    )
                return result
        else:
            def evaluate(block_columns, row_count, sorted_by):
                result = evaluators[0](block_columns, row_count, sorted_by)
                for child in evaluators[1:]:
                    if result.is_all:
                        return result
                    result = result.union(
                        child(block_columns, row_count, sorted_by)
                    )
                return result

        return evaluate, columns
    if isinstance(expr, Literal):
        # WHERE TRUE / WHERE FALSE / WHERE NULL as a whole predicate.
        value = expr.value
        if value is None:
            keep_all = False
        else:
            keep_all = bool(value) != negated
        if keep_all:
            return (lambda _c, row_count, _s: Selection.all_rows(row_count)), set()
        return (lambda _c, row_count, _s: Selection.none(row_count)), set()
    if isinstance(expr, Comparison):
        return _compile_comparison(expr, negated)
    if isinstance(expr, Between):
        return _compile_between(expr, negated)
    if isinstance(expr, InList):
        return _compile_in_list(expr, negated)
    if isinstance(expr, IsNull):
        return _compile_is_null(expr, negated)
    if isinstance(expr, Like):
        return _compile_like(expr, negated)
    return None


def _compile_comparison(expr: Comparison, negated: bool):
    op = expr.op
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        name, literal = expr.left.name, expr.right.value
    elif isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        name, literal = expr.right.name, expr.left.value
        op = _MIRRORED_OP[op]
    else:
        return None
    if literal is None:
        # comparison with NULL is NULL either way: nothing passes.
        return _const_none(), {name}
    if negated:
        op = _NEGATED_OP[op]
    test = _SCALAR_TESTS[op](literal)

    def sorted_ranges(values, row_count):
        low = bisect_left(values, literal)
        high = bisect_right(values, literal)
        if op == "=":
            return [(low, high)]
        if op == "<>":
            return [(0, low), (high, row_count)]
        if op == "<":
            return [(0, low)]
        if op == "<=":
            return [(0, high)]
        if op == ">":
            return [(high, row_count)]
        return [(low, row_count)]  # ">="

    return _make_leaf(name, test, sorted_ranges)


def _compile_between(expr: Between, negated: bool):
    if not (
        isinstance(expr.value, ColumnRef)
        and isinstance(expr.low, Literal)
        and isinstance(expr.high, Literal)
    ):
        return None
    name = expr.value.name
    low, high = expr.low.value, expr.high.value
    if low is None or high is None:
        return _const_none(), {name}
    if negated:
        def test(v, low=low, high=high):
            return v < low or v > high

        def sorted_ranges(values, row_count):
            return [
                (0, bisect_left(values, low)),
                (bisect_right(values, high), row_count),
            ]
    else:
        def test(v, low=low, high=high):
            return low <= v <= high

        def sorted_ranges(values, row_count):
            return [(bisect_left(values, low), bisect_right(values, high))]

    return _make_leaf(name, test, sorted_ranges)


def _compile_in_list(expr: InList, negated: bool):
    if not isinstance(expr.value, ColumnRef):
        return None
    name = expr.value.name
    options = list(expr.options)
    has_null_option = any(option is None for option in options)
    if negated and has_null_option:
        # v NOT IN (..., NULL) is never TRUE: FALSE on a match, NULL
        # otherwise.
        return _const_none(), {name}
    choices = frozenset(option for option in options if option is not None)
    if not choices and not negated:
        return _const_none(), {name}
    if negated:
        def test(v, choices=choices):
            return v not in choices
    else:
        def test(v, choices=choices):
            return v in choices

    return _make_leaf(name, test, None)


def _compile_is_null(expr: IsNull, negated: bool):
    if not isinstance(expr.value, ColumnRef):
        return None
    name = expr.value.name
    # IS [NOT] NULL is two-valued, so outer NOT simply flips it.
    want_null = expr.negated == negated

    def evaluate(columns, row_count, _sorted_by):
        column = columns[name]
        nulls = null_count_of(column)
        if nulls == 0:
            if want_null:
                return Selection.none(row_count)
            return Selection.all_rows(row_count)
        values = as_list(column)
        if want_null:
            return Selection.from_mask([value is None for value in values])
        return Selection.from_mask([value is not None for value in values])

    return evaluate, {name}


def _compile_like(expr: Like, negated: bool):
    if not isinstance(expr.value, ColumnRef):
        return None
    name = expr.value.name
    regex = expr._regex
    want_match = expr.negated == negated  # double negation cancels

    def test(v, regex=regex, want=want_match):
        return (regex.match(v) is not None) is want

    return _make_leaf(name, test, None)


def _const_none():
    return lambda _c, row_count, _s: Selection.none(row_count)


def _make_leaf(name: str, test, sorted_ranges):
    """Leaf evaluator dispatching on the column's representation."""

    def evaluate(columns, row_count, sorted_by):
        column = columns[name]
        if isinstance(column, DictVector):
            # test once per dictionary entry, select rows by code.
            truth = [entry is not None and test(entry) for entry in column.entries]
            if not any(truth):
                return Selection.none(row_count)
            if all(truth):
                return Selection.all_rows(row_count)
            return Selection.from_mask([truth[code] for code in column.codes])
        if isinstance(column, RleVector):
            # test once per run, emit position ranges.
            ranges = []
            position = 0
            for value, length in column.runs:
                if value is not None and test(value):
                    ranges.append((position, position + length))
                position += length
            return Selection.from_ranges(ranges, row_count)
        if (
            sorted_ranges is not None
            and sorted_by
            and sorted_by[0] == name
            and null_count_of(column) == 0
        ):
            # block sorted ascending by this column: binary search.
            return Selection.from_ranges(
                sorted_ranges(as_list(column), row_count), row_count
            )
        values = as_list(column)
        return Selection.from_mask(
            [value is not None and test(value) for value in values]
        )

    return evaluate, {name}
