"""Sort operator with disk externalization.

    Sort: Sorts incoming data, externalizing if needed.  (section 6.1)

When buffered rows exceed the operator's memory budget, sorted runs are
spilled to temp files and merged with a k-way heap merge at the end —
the classic external merge sort.  NULLs order first, matching the
storage sort order convention.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ...types import sort_key
from ..expressions import Expr
from ..resource import ResourcePool, SpillFile
from ..row_block import VECTOR_SIZE, RowBlock
from .base import Operator


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY term."""

    expr: Expr
    ascending: bool = True

    def describe(self) -> str:
        return f"{self.expr!r} {'ASC' if self.ascending else 'DESC'}"


class _Reversed:
    """Key wrapper inverting comparison order for DESC terms."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


def make_row_key(keys: list[SortKey], column_names_hint=None):
    """Build a key function row-dict -> ordering tuple."""

    def row_key(row: dict):
        parts = []
        for key in keys:
            value = sort_key(key.expr.evaluate_row(row))
            parts.append(value if key.ascending else _Reversed(value))
        return tuple(parts)

    return row_key


class SortOperator(Operator):
    """Full sort (optionally top-K when a limit hint is supplied)."""

    op_name = "Sort"

    def __init__(
        self,
        child: Operator,
        keys: list[SortKey],
        pool: ResourcePool | None = None,
        max_buffered_rows: int | None = None,
        limit_hint: int | None = None,
    ):
        super().__init__([child])
        self.keys = keys
        self.pool = pool
        self.max_buffered_rows = max_buffered_rows
        self.limit_hint = limit_hint
        self.spilled_runs = 0

    def _budget(self) -> int | None:
        if self.max_buffered_rows is not None:
            return self.max_buffered_rows
        if self.pool is not None:
            return self.pool.operator_budget()
        return None

    def _key_columns(self, block: RowBlock) -> list[list]:
        out = []
        for key in self.keys:
            values = [sort_key(v) for v in key.expr.evaluate(block)]
            if not key.ascending:
                values = [_Reversed(v) for v in values]
            out.append(values)
        return out

    def _produce(self):
        budget = self._budget()
        buffered: list[tuple[tuple, dict]] = []
        runs: list[SpillFile] = []
        column_names: list[str] | None = None
        for block in self.children[0].blocks():
            if column_names is None:
                column_names = block.column_names
            key_columns = self._key_columns(block)
            rows = block.to_rows()
            for index, row in enumerate(rows):
                buffered.append(
                    (tuple(column[index] for column in key_columns), row)
                )
            if budget is not None and len(buffered) > budget:
                runs.append(self._spill_run(buffered))
                buffered = []
        if not runs:
            buffered.sort(key=lambda item: item[0])
            if self.limit_hint is not None:
                buffered = buffered[: self.limit_hint]
            yield from self._emit([row for _, row in buffered], column_names)
            return
        if buffered:
            runs.append(self._spill_run(buffered))

        def run_stream(spill: SpillFile):
            for batch in spill.read_batches():
                yield from batch

        merged = heapq.merge(
            *(run_stream(run) for run in runs), key=lambda item: item[0]
        )
        emitted = 0
        pending: list[dict] = []
        for _, row in merged:
            pending.append(row)
            emitted += 1
            if len(pending) >= VECTOR_SIZE:
                yield RowBlock.from_rows(pending, column_names)
                pending = []
            if self.limit_hint is not None and emitted >= self.limit_hint:
                break
        if pending:
            yield RowBlock.from_rows(pending, column_names)
        for run in runs:
            run.close()

    def _spill_run(self, buffered) -> SpillFile:
        buffered.sort(key=lambda item: item[0])
        spill = SpillFile()
        for start in range(0, len(buffered), VECTOR_SIZE):
            spill.write_batch(buffered[start : start + VECTOR_SIZE])
        self.spilled_runs += 1
        if self.pool is not None:
            self.pool.note_spill()
        return spill

    def _emit(self, rows: list[dict], column_names):
        if column_names is None:
            return
        for start in range(0, len(rows), VECTOR_SIZE):
            yield RowBlock.from_rows(rows[start : start + VECTOR_SIZE], column_names)

    def label(self) -> str:
        keys = ", ".join(key.describe() for key in self.keys)
        spill = f" runs={self.spilled_runs}" if self.spilled_runs else ""
        return f"Sort({keys}{spill})"
