"""Execution engine operators (section 6.1)."""

from .analytic import AnalyticOperator, WindowSpec
from .base import Operator, RowSource, SourceBlocks
from .exchange import Exchange, RecvOperator, SendOperator
from .groupby import (
    GroupByHashOperator,
    GroupByPipelinedOperator,
    PrepassGroupByOperator,
    merge_specs,
)
from .join import HashJoinOperator, JoinType, MergeJoinOperator
from .scan import ScanOperator
from .simple import (
    DistinctOperator,
    ExprEvalOperator,
    FilterOperator,
    LimitOperator,
    UnionAllOperator,
)
from .sort import SortKey, SortOperator
from .union import ParallelUnionOperator, StorageUnionOperator

__all__ = [
    "AnalyticOperator",
    "WindowSpec",
    "Operator",
    "RowSource",
    "SourceBlocks",
    "Exchange",
    "RecvOperator",
    "SendOperator",
    "GroupByHashOperator",
    "GroupByPipelinedOperator",
    "PrepassGroupByOperator",
    "merge_specs",
    "HashJoinOperator",
    "JoinType",
    "MergeJoinOperator",
    "ScanOperator",
    "DistinctOperator",
    "ExprEvalOperator",
    "FilterOperator",
    "LimitOperator",
    "UnionAllOperator",
    "SortKey",
    "SortOperator",
    "ParallelUnionOperator",
    "StorageUnionOperator",
]
