"""Send/Recv operators and the simulated interconnect.

    Send/Recv: Sends tuples from one node to another.  Both broadcast
    and sending to nodes based on segmentation expression evaluation is
    supported.  Each Send and Recv pair is capable of retaining the
    sortedness of the input stream.  (section 6.1)

The :class:`Exchange` stands in for the cluster interconnect: named
channels of row batches with byte accounting, so benches can report
network volume (the paper's design goal of not letting the interconnect
become the bottleneck is observable as resegment-vs-broadcast byte
counts in the optimizer ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import ExecutionError
from ...hashing import hash_row
from ...trace import TRACER
from ..expressions import Expr
from ..row_block import RowBlock
from .base import Operator


def _approx_block_bytes(block: RowBlock) -> int:
    """Cheap, deterministic byte estimate for network accounting."""
    total = 0
    for values in block.columns.values():
        for value in values:
            if value is None:
                total += 1
            elif isinstance(value, str):
                total += len(value) + 1
            else:
                total += 8
    return total


@dataclass
class Exchange:
    """A set of per-destination channels between plan fragments."""

    destinations: int
    channels: dict[int, list[RowBlock]] = field(default_factory=dict)
    bytes_sent: int = 0
    blocks_sent: int = 0
    rows_sent: int = 0

    def __post_init__(self):
        for destination in range(self.destinations):
            self.channels[destination] = []

    def push(self, destination: int, block: RowBlock) -> None:
        """Send one block to one destination."""
        if destination not in self.channels:
            raise ExecutionError(f"unknown destination {destination}")
        self.channels[destination].append(block)
        self.bytes_sent += _approx_block_bytes(block)
        self.blocks_sent += 1
        self.rows_sent += block.row_count

    def drain(self, destination: int) -> list[RowBlock]:
        """All blocks queued for one destination."""
        blocks = self.channels[destination]
        self.channels[destination] = []
        return blocks


class SendOperator(Operator):
    """Routes its child's output into an exchange.

    ``segment_exprs`` routes each row by hash of the given expressions
    (the segmentation-based path); ``broadcast=True`` copies every
    block to every destination.  As an operator it yields nothing —
    data continues on the Recv side.
    """

    op_name = "Send"

    def __init__(
        self,
        child: Operator,
        exchange: Exchange,
        segment_exprs: list[Expr] | None = None,
        broadcast: bool = False,
        failure_probe=None,
    ):
        super().__init__([child])
        if broadcast == (segment_exprs is not None):
            raise ExecutionError("Send needs exactly one of broadcast/segment_exprs")
        self.exchange = exchange
        self.segment_exprs = segment_exprs
        self.broadcast = broadcast
        #: Zero-argument callable consulted per drained block; the
        #: distributed executor wires one that raises
        #: :class:`repro.errors.NodeDownError` when the node hosting
        #: this sender's fragment dies mid-exchange.
        self.failure_probe = failure_probe
        self._ran = False
        #: Cross-node trace propagation, stamped by the distributed
        #: executor at plan-build time: the handle names the span that
        #: requested this fragment, ``trace_node`` is the simulated
        #: node hosting it.  ``trace_span_id`` records the live span
        #: this operator opened, so the post-hoc plan walk nests the
        #: fragment's operator spans under it instead of re-emitting.
        self.trace_parent = None
        self.trace_node: int | None = None
        self.trace_span_id: int | None = None

    def run(self) -> None:
        """Drain the child into the exchange (idempotent: several Recv
        destinations may trigger the same sender)."""
        if self._ran:
            return
        self._ran = True
        sent_before = self.exchange.rows_sent
        bytes_before = self.exchange.bytes_sent
        cm = TRACER.span_from(
            self.trace_parent,
            "exchange.send",
            category="exchange",
            node_index=self.trace_node,
            broadcast=self.broadcast,
        )
        with cm as span:
            if span is not None:
                self.trace_span_id = span.span_id
            self._route()
            cm.annotate(
                rows_sent=self.exchange.rows_sent - sent_before,
                bytes_sent=self.exchange.bytes_sent - bytes_before,
            )

    def _route(self) -> None:
        destinations = self.exchange.destinations
        if self.broadcast:
            for block in self.children[0].blocks():
                if self.failure_probe is not None:
                    self.failure_probe()
                for destination in range(destinations):
                    self.exchange.push(destination, block)
            return
        runs = [expr.compiled() for expr in self.segment_exprs]
        for block in self.children[0].blocks():
            if self.failure_probe is not None:
                self.failure_probe()
            key_columns = [run(block) for run in runs]
            buckets: dict[int, list[int]] = {}
            for index in range(block.row_count):
                values = [column[index] for column in key_columns]
                destination = hash_row(values) % destinations
                buckets.setdefault(destination, []).append(index)
            # per-destination row selection preserves input order, so a
            # sorted input stream stays sorted per channel.
            for destination, indexes in sorted(buckets.items()):
                self.exchange.push(destination, block.select_rows(indexes))

    def _produce(self):
        self.run()
        return iter(())

    def label(self) -> str:
        if self.broadcast:
            return "Send(broadcast)"
        keys = ", ".join(repr(expr) for expr in self.segment_exprs)
        return f"Send(segment by {keys})"


class RecvOperator(Operator):
    """Yields the blocks queued for one destination of an exchange.

    ``senders`` lists the Send operators feeding the exchange; Recv
    runs them on first pull (simulating the upstream fragments having
    executed on their nodes).
    """

    op_name = "Recv"

    def __init__(
        self,
        exchange: Exchange,
        destination: int,
        senders: list[SendOperator] | None = None,
    ):
        super().__init__(list(senders or []))
        self.exchange = exchange
        self.destination = destination
        #: Cross-node propagation, stamped by the executor (see
        #: :class:`SendOperator`).  The Recv side of the exchange runs
        #: on the destination's node; its span covers running the
        #: senders and draining the channel, and closes before any
        #: block is yielded so an abandoned pull cannot leak it.
        self.trace_parent = None
        self.trace_node: int | None = None
        self.trace_span_id: int | None = None

    def _produce(self):
        cm = TRACER.span_from(
            self.trace_parent,
            "exchange.recv",
            category="exchange",
            node_index=self.trace_node,
            destination=self.destination,
        )
        with cm as span:
            if span is not None:
                self.trace_span_id = span.span_id
            for sender in self.children:
                if isinstance(sender, SendOperator):
                    sender.run()
            blocks = self.exchange.drain(self.destination)
            cm.annotate(
                blocks_received=len(blocks),
                rows_received=sum(b.row_count for b in blocks),
            )
        for block in blocks:
            if block.row_count:
                yield block

    def label(self) -> str:
        return f"Recv(dest={self.destination})"
