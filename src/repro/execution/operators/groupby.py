"""GroupBy operators: hash, pipelined (one-pass), and prepass.

    GroupBy: Groups and aggregates data.  We have several different
    hash based algorithms [...] Vertica also implements classic
    pipelined (one-pass) aggregates.  (section 6.1)

Three physical algorithms:

* :class:`GroupByHashOperator` — general hash aggregation, with
  partition-and-spill externalization when the group count exceeds the
  operator's memory budget;
* :class:`GroupByPipelinedOperator` — one-pass aggregation requiring
  input sorted on the group keys (the payoff of sorted projections:
  constant memory, streaming output);
* :class:`PrepassGroupByOperator` — the paper's L1-cache-sized
  pre-aggregation: bounded hash table flushed when full, merged by a
  downstream GroupBy, with the runtime shutoff that stops prepassing
  when it is not actually reducing row counts.

Partials everywhere share one schema: the group key columns plus one
column per aggregate (COUNT partials are counts, merged downstream by
SUM).  That uniformity is what lets hash aggregation externalize and
prepass outputs flow into an ordinary merge-mode GroupBy.
"""

from __future__ import annotations

from ...errors import ExecutionError
from ...lint import sanitizer
from ...monitor import METRICS
from ..aggregates import AggregateSpec, make_accumulator
from ..expressions import ColumnRef, Expr
from ..kernels import kernels_enabled
from ..kernels.aggregate import absorb_block_kernel, groupby_kernel_supported
from ..kernels.vectors import as_list
from ..resource import ResourcePool, SpillFile
from ..row_block import VECTOR_SIZE, RowBlock
from .base import Operator


def _group_output_block(
    items: list[tuple[tuple, list]],
    key_names: list[str],
    specs: list[AggregateSpec],
) -> RowBlock:
    """Build an output block from (key, accumulators) pairs."""
    columns: dict[str, list] = {name: [] for name in key_names}
    for spec in specs:
        columns[spec.output_name] = []
    for key, accumulators in items:
        for name, value in zip(key_names, key):
            columns[name].append(value)
        for spec, accumulator in zip(specs, accumulators):
            columns[spec.output_name].append(accumulator.final())
    return RowBlock(columns=columns, row_count=len(items))


def merge_specs(specs: list[AggregateSpec]) -> list[AggregateSpec]:
    """Specs for the merge stage: fold partials by their merge function,
    reading from the partial column of the same output name."""
    merged = []
    for spec in specs:
        if not spec.mergeable:
            raise ExecutionError(f"{spec.describe()} has no mergeable partial")
        merged.append(
            AggregateSpec(spec.merge_func, ColumnRef(spec.output_name), spec.output_name)
        )
    return merged


class _AggregationCore:
    """Shared accumulate-into-hash-table logic."""

    def __init__(
        self,
        key_exprs: list[Expr],
        key_names: list[str],
        specs: list[AggregateSpec],
    ):
        if len(key_exprs) != len(key_names):
            raise ExecutionError("group key exprs and names must align")
        self.key_exprs = key_exprs
        self.key_names = key_names
        self.specs = specs
        self._key_runs = [expr.compiled() for expr in key_exprs]
        self._arg_runs = [
            spec.arg.compiled() if spec.arg is not None else None for spec in specs
        ]
        #: Whether this core's shape is in the kernel dialect at all
        #: (per-block structure still decides whether a kernel fires).
        self.kernel_supported = groupby_kernel_supported(self)

    def new_accumulators(self):
        return [make_accumulator(spec) for spec in self.specs]

    def key_columns(self, block: RowBlock) -> list[list]:
        return [as_list(run(block)) for run in self._key_runs]

    def absorb_block(self, groups: dict, block: RowBlock) -> bool:
        """Fold one block into the group hash table.

        Returns True when a batch kernel absorbed the block, False when
        the per-row path did (the operator's execution-mode counters).
        """
        if self.kernel_supported and kernels_enabled():
            if absorb_block_kernel(self, groups, block):
                return True
        key_columns = self.key_columns(block)
        arg_columns = [
            as_list(run(block)) if run is not None else None
            for run in self._arg_runs
        ]
        count = block.row_count
        if not self.key_exprs:
            accumulators = groups.get(())
            if accumulators is None:
                accumulators = groups[()] = self.new_accumulators()
            self._fold_range(accumulators, arg_columns, count)
            return False
        for index in range(count):
            key = tuple(column[index] for column in key_columns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = groups[key] = self.new_accumulators()
            self._fold_one(accumulators, arg_columns, index)
        return False

    def _fold_one(self, accumulators, arg_columns, index: int) -> None:
        for accumulator, args in zip(accumulators, arg_columns):
            if args is None:
                accumulator.add_count_star()
            else:
                accumulator.add(args[index])

    def _fold_range(self, accumulators, arg_columns, count: int) -> None:
        for accumulator, args in zip(accumulators, arg_columns):
            if args is None:
                accumulator.add_count_star(count)
            else:
                for index in range(count):
                    accumulator.add(args[index])

    def to_partial_block(self, block: RowBlock) -> RowBlock:
        """Map raw rows 1:1 into the partial schema (no aggregation)."""
        key_columns = self.key_columns(block)
        arg_columns = [
            run(block) if run is not None else None for run in self._arg_runs
        ]
        columns: dict[str, list] = {}
        for name, values in zip(self.key_names, key_columns):
            columns[name] = values
        for spec, args in zip(self.specs, arg_columns):
            if spec.func == "COUNT" and args is None:
                columns[spec.output_name] = [1] * block.row_count
            elif spec.func == "COUNT":
                columns[spec.output_name] = [
                    0 if value is None else 1 for value in args
                ]
            else:
                columns[spec.output_name] = list(args)
        return RowBlock(columns=columns, row_count=block.row_count)


class GroupByHashOperator(Operator):
    """Hash aggregation with partitioned spill externalization.

    ``merge_partials`` makes the operator consume partial rows (from a
    prepass or a Send/Recv of partials) instead of raw rows.
    """

    op_name = "GroupByHash"

    #: Number of spill partitions when externalizing.
    SPILL_PARTITIONS = 8

    def __init__(
        self,
        child: Operator,
        key_exprs: list[Expr],
        key_names: list[str],
        aggregates: list[AggregateSpec],
        pool: ResourcePool | None = None,
        max_groups: int | None = None,
        merge_partials: bool = False,
    ):
        super().__init__([child])
        self.merge_partials = merge_partials
        self.output_specs = aggregates
        if merge_partials:
            core_specs = merge_specs(aggregates)
            core_keys = [ColumnRef(name) for name in key_names]
        else:
            core_specs = aggregates
            core_keys = key_exprs
        self.core = _AggregationCore(core_keys, key_names, core_specs)
        self.pool = pool
        self.max_groups = max_groups
        self.spilled = False

    def _budget(self) -> int | None:
        if self.max_groups is not None:
            return self.max_groups
        if self.pool is not None:
            return self.pool.operator_budget()
        return None

    def _produce(self):
        budget = self._budget()
        groups: dict = {}
        spill_files: list[SpillFile] | None = None
        partial_core: _AggregationCore | None = None
        rows_absorbed = 0
        for block in self.children[0].blocks():
            if spill_files is None:
                if self.core.absorb_block(groups, block):
                    self.kernel_blocks += 1
                    METRICS.inc("executor.kernel_blocks")
                else:
                    self.row_blocks += 1
                    METRICS.inc("executor.row_fallback_blocks")
                rows_absorbed += block.row_count
                if budget is not None and len(groups) > budget:
                    if not all(spec.mergeable for spec in self.core.specs):
                        raise ExecutionError(
                            "group-by spill requires mergeable aggregates; "
                            "raise the memory budget for AVG/DISTINCT queries"
                        )
                    self.spilled = True
                    if self.pool is not None:
                        self.pool.note_spill()
                    spill_files = [SpillFile() for _ in range(self.SPILL_PARTITIONS)]
                    partial_core = _AggregationCore(
                        [ColumnRef(name) for name in self.core.key_names],
                        self.core.key_names,
                        merge_specs(self.core.specs)
                        if not self.merge_partials
                        else self.core.specs,
                    )
                    flushed = _group_output_block(
                        list(groups.items()), self.core.key_names, self.core.specs
                    )
                    groups = {}
                    self._spill_partials(flushed, partial_core, spill_files)
            else:
                partial = (
                    block
                    if self.merge_partials
                    else self.core.to_partial_block(block)
                )
                self._spill_partials(partial, partial_core, spill_files)
        if spill_files is None:
            if sanitizer.enabled() and not self.merge_partials:
                self._check_conservation(groups, rows_absorbed)
            yield from self._emit(groups, self.core)
        else:
            for spill in spill_files:
                partition_groups: dict = {}
                schema = partial_core.key_names + [
                    spec.output_name for spec in partial_core.specs
                ]
                for rows in spill.read_batches():
                    partial_block = RowBlock.from_rows(rows, schema)
                    partial_core.absorb_block(partition_groups, partial_block)
                spill.close()
                yield from self._emit(partition_groups, partial_core)

    def _check_conservation(self, groups: dict, rows_absorbed: int) -> None:
        """Sanitizer: COUNT(*) totals across groups must equal rows in
        (whichever engine — run arithmetic, dictionary histograms, or
        per-row folds — absorbed each block)."""
        star = next(
            (
                index
                for index, spec in enumerate(self.core.specs)
                if spec.func == "COUNT"
                and spec.arg is None
                and not spec.distinct
            ),
            None,
        )
        if star is None:
            return
        total = sum(
            accumulators[star].count for accumulators in groups.values()
        )
        sanitizer.check_groupby_conservation(rows_absorbed, total)

    def _spill_partials(
        self, block: RowBlock, partial_core: _AggregationCore, spill_files
    ) -> None:
        key_columns = partial_core.key_columns(block)
        rows = block.to_rows()
        buckets: list[list] = [[] for _ in spill_files]
        for index, row in enumerate(rows):
            key = tuple(column[index] for column in key_columns)
            buckets[hash(key) % len(spill_files)].append(row)
        for spill, bucket in zip(spill_files, buckets):
            if bucket:
                spill.write_batch(bucket)

    def _emit(self, groups: dict, core: _AggregationCore):
        items = list(groups.items())
        for start in range(0, len(items), VECTOR_SIZE):
            yield _group_output_block(
                items[start : start + VECTOR_SIZE], core.key_names, core.specs
            )
        if not items and not core.key_exprs and not self.spilled:
            # a global aggregate over empty input still yields one row
            yield _group_output_block(
                [((), core.new_accumulators())], core.key_names, core.specs
            )

    def label(self) -> str:
        keys = ", ".join(self.core.key_names) or "<global>"
        aggs = ", ".join(spec.describe() for spec in self.output_specs)
        mode = " merge" if self.merge_partials else ""
        return f"GroupByHash(keys=[{keys}] aggs=[{aggs}]{mode})"


class GroupByPipelinedOperator(Operator):
    """One-pass aggregation over input sorted by the group keys.

    Emits each group as soon as the key changes; constant memory and
    preserves sortedness — this is the algorithm sorted projections
    unlock ("stream aggregation" in section 6.2's technique list).
    """

    op_name = "GroupByPipelined"

    def __init__(
        self,
        child: Operator,
        key_exprs: list[Expr],
        key_names: list[str],
        aggregates: list[AggregateSpec],
        merge_partials: bool = False,
    ):
        super().__init__([child])
        self.merge_partials = merge_partials
        self.output_specs = aggregates
        if merge_partials:
            self.core = _AggregationCore(
                [ColumnRef(name) for name in key_names],
                key_names,
                merge_specs(aggregates),
            )
        else:
            self.core = _AggregationCore(key_exprs, key_names, aggregates)

    def _produce(self):
        current_key = None
        accumulators = None
        pending: list[tuple[tuple, list]] = []
        for block in self.children[0].blocks():
            key_columns = self.core.key_columns(block)
            arg_columns = [
                as_list(run(block)) if run is not None else None
                for run in self.core._arg_runs
            ]
            for index in range(block.row_count):
                key = tuple(column[index] for column in key_columns)
                if key != current_key or accumulators is None:
                    if accumulators is not None:
                        pending.append((current_key, accumulators))
                        if len(pending) >= VECTOR_SIZE:
                            yield _group_output_block(
                                pending, self.core.key_names, self.core.specs
                            )
                            pending = []
                    current_key = key
                    accumulators = self.core.new_accumulators()
                self.core._fold_one(accumulators, arg_columns, index)
        if accumulators is not None:
            pending.append((current_key, accumulators))
        if pending:
            yield _group_output_block(pending, self.core.key_names, self.core.specs)
        elif not self.core.key_exprs:
            yield _group_output_block(
                [((), self.core.new_accumulators())],
                self.core.key_names,
                self.core.specs,
            )

    def label(self) -> str:
        keys = ", ".join(self.core.key_names) or "<global>"
        aggs = ", ".join(spec.describe() for spec in self.output_specs)
        return f"GroupByPipelined(keys=[{keys}] aggs=[{aggs}])"


class PrepassGroupByOperator(Operator):
    """L1-sized partial aggregation with adaptive shutoff.

    Output rows are *partials*; a downstream GroupBy with
    ``merge_partials=True`` folds them together.  Only mergeable
    aggregates may be prepassed — the planner checks before placing one.
    """

    op_name = "PrepassGroupBy"

    #: Default bound on the in-flight table ("L1 cache sized").
    DEFAULT_TABLE_SIZE = 1024
    #: After this many input rows, evaluate whether to shut off.
    SHUTOFF_CHECK_ROWS = 8192
    #: Shut off when output/input exceeds this ratio.
    SHUTOFF_RATIO = 0.9

    def __init__(
        self,
        child: Operator,
        key_exprs: list[Expr],
        key_names: list[str],
        aggregates: list[AggregateSpec],
        table_size: int | None = None,
    ):
        super().__init__([child])
        for spec in aggregates:
            if not spec.mergeable:
                raise ExecutionError(
                    f"aggregate {spec.describe()} cannot be prepassed"
                )
        self.core = _AggregationCore(key_exprs, key_names, aggregates)
        self.table_size = table_size or self.DEFAULT_TABLE_SIZE
        self.shut_off = False
        self.rows_in = 0
        self.rows_out_partial = 0

    def _produce(self):
        groups: dict = {}
        for block in self.children[0].blocks():
            self.rows_in += block.row_count
            if self.shut_off:
                partial = self.core.to_partial_block(block)
                self.rows_out_partial += partial.row_count
                yield partial
                continue
            if self.core.absorb_block(groups, block):
                self.kernel_blocks += 1
                METRICS.inc("executor.kernel_blocks")
            else:
                self.row_blocks += 1
                METRICS.inc("executor.row_fallback_blocks")
            if len(groups) >= self.table_size:
                yield from self._flush(groups)
                groups = {}
            if (
                self.rows_in >= self.SHUTOFF_CHECK_ROWS
                and self.rows_out_partial > self.SHUTOFF_RATIO * self.rows_in
            ):
                # Not reducing: emit the current table and become a
                # passthrough (the paper's runtime decision to stop).
                if groups:
                    yield from self._flush(groups)
                    groups = {}
                self.shut_off = True
        if groups:
            yield from self._flush(groups)

    def _flush(self, groups: dict):
        items = list(groups.items())
        self.rows_out_partial += len(items)
        for start in range(0, len(items), VECTOR_SIZE):
            yield _group_output_block(
                items[start : start + VECTOR_SIZE],
                self.core.key_names,
                self.core.specs,
            )

    def label(self) -> str:
        keys = ", ".join(self.core.key_names) or "<global>"
        state = " [shutoff]" if self.shut_off else ""
        return f"PrepassGroupBy(keys=[{keys}] table={self.table_size}{state})"
