"""Operator base class: the pull-model, vectorized plan node.

    Vertica's operators use a pull processing model: the most
    downstream operator requests rows from the next operator upstream
    in the processing pipeline.  (section 6.1)

Operators are Python iterators of :class:`RowBlock` s.  Each tracks the
rows it produced, which the benches use to show effects like SIP and
prepass aggregation reducing pipeline volume.
"""

from __future__ import annotations

from time import perf_counter

from ..row_block import RowBlock


class Operator:
    """A node in the physical plan tree."""

    #: Short name used in EXPLAIN output ("Scan", "GroupByHash", ...).
    op_name = "Operator"

    def __init__(self, children: list["Operator"] | None = None):
        self.children = list(children or [])
        self.rows_produced = 0
        self.blocks_produced = 0
        #: Times this operator was pulled (next() calls answered),
        #: including the final exhausted pull.
        self.pulls = 0
        #: Inclusive wall time spent producing, children included; the
        #: profiler derives per-operator self time by subtracting the
        #: children's inclusive totals.
        self.wall_seconds = 0.0
        #: Blocks this operator processed via batch kernels vs the
        #: per-row fallback.  Operators that have kernel paths bump
        #: these per input block; everything else leaves both at 0 and
        #: reports execution mode "-".
        self.kernel_blocks = 0
        self.row_blocks = 0
        #: Cooperative cancellation hook (section 7 workload
        #: management): when set by the executor, every pull first
        #: calls ``cancel_token.check()``, which raises
        #: :class:`repro.errors.QueryCancelledError` (or its timeout
        #: subclass) once the statement is cancelled.  Checked per
        #: *block*, never per row, so the enabled cost is one attribute
        #: read and a method call per few thousand rows.
        self.cancel_token = None

    # -- data flow -------------------------------------------------------

    def blocks(self):
        """Generator of output RowBlocks; subclasses implement
        :meth:`_produce` and get accounting (rows, blocks, pulls,
        wall time) for free.  Cancellation is observed here, between
        blocks: a cancelled statement stops pulling at the next block
        boundary no matter which operator the plan is currently inside."""
        source = self._produce()
        token = self.cancel_token
        while True:
            if token is not None:
                token.check()
            self.pulls += 1
            started = perf_counter()
            try:
                block = next(source)
            except StopIteration:
                self.wall_seconds += perf_counter() - started
                return
            self.wall_seconds += perf_counter() - started
            self.rows_produced += block.row_count
            self.blocks_produced += 1
            yield block

    def _produce(self):
        raise NotImplementedError

    def __iter__(self):
        return self.blocks()

    def rows(self):
        """Materialize the operator's full output as row dicts."""
        out: list[dict] = []
        for block in self.blocks():
            out.extend(block.to_rows())
        return out

    def execution_mode(self) -> str:
        """How this operator processed its blocks: "kernel" when every
        block went through a batch kernel, "row" when every block fell
        back to per-row evaluation, "mixed" for some of each, and "-"
        for operators without a kernel/row distinction."""
        if self.kernel_blocks and self.row_blocks:
            return "mixed"
        if self.kernel_blocks:
            return "kernel"
        if self.row_blocks:
            return "row"
        return "-"

    # -- plan display ------------------------------------------------------

    def label(self) -> str:
        """One-line description for EXPLAIN trees."""
        return self.op_name

    def explain(self, indent: int = 0, _seen: set[int] | None = None) -> str:
        """Render the plan subtree (Figure 3 bench uses this).

        Physical plans are DAGs, not trees: a resegment join shares
        each Send across every Recv destination.  A shared subtree is
        rendered once; revisits print the operator's label tagged
        ``[shared]`` without recursing, so the rendering (and anything
        counting its lines) never double-represents work.
        """
        seen = set() if _seen is None else _seen
        if id(self) in seen:
            return " " * indent + self.label() + " [shared]"
        seen.add(id(self))
        lines = [" " * indent + self.label()]
        for child in self.children:
            lines.append(child.explain(indent + 2, seen))
        return "\n".join(lines)

    def walk(self, _seen: set[int] | None = None):
        """Yield every operator in the subtree, preorder.

        Each operator is yielded exactly once even when the plan is a
        DAG (shared Send operators under several Recvs); summing
        counters over ``walk()`` therefore never double-counts.
        """
        seen = set() if _seen is None else _seen
        if id(self) in seen:
            return
        seen.add(id(self))
        yield self
        for child in self.children:
            yield from child.walk(seen)


class SourceBlocks(Operator):
    """Adapter feeding a precomputed list/iterator of blocks into a
    plan (tests, Send/Recv endpoints, subquery results)."""

    op_name = "Source"

    def __init__(self, blocks_iterable, column_names: list[str] | None = None):
        super().__init__()
        self._blocks = blocks_iterable
        self._columns = column_names

    def _produce(self):
        for block in self._blocks:
            yield block

    def label(self) -> str:
        return "Source"


class RowSource(Operator):
    """Adapter feeding row dicts into a plan as vector-sized blocks."""

    op_name = "RowSource"

    def __init__(self, rows: list[dict], column_names: list[str], block_rows: int = 4096):
        super().__init__()
        self._rows = rows
        self._column_names = column_names
        self._block_rows = block_rows

    def _produce(self):
        for start in range(0, len(self._rows), self._block_rows):
            chunk = self._rows[start : start + self._block_rows]
            yield RowBlock.from_rows(chunk, self._column_names)

    def label(self) -> str:
        return f"RowSource({len(self._rows)} rows)"
