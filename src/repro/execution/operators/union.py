"""StorageUnion and ParallelUnion (Figure 3's parallelism operators).

    The StorageUnion dispatches threads for processing data on a set of
    ROS containers.  The StorageUnion also locally resegments the data
    for the above GroupBys.  The ParallelUnion dispatches threads for
    processing the GroupBys And Filters in parallel.  (section 6.1 /
    Figure 3)

Python's GIL makes real CPU parallelism impossible, so these operators
implement the *plan structure* — partitioning work across pipelines,
local resegmentation so each pipeline computes complete groups, and
combination of pipeline outputs — with an optional thread pool that
demonstrates concurrency without claiming speedups (DESIGN.md §2).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ...hashing import hash_row
from ..expressions import Expr
from ..row_block import RowBlock
from .base import Operator


class StorageUnionOperator(Operator):
    """Combines several source pipelines (e.g. one per ROS region) and
    optionally resegments rows across ``fanout`` local pipelines.

    Use :meth:`pipeline_source` to get the operator feeding pipeline
    ``i``; all pipelines share the underlying scan work, which runs
    once on first demand.
    """

    op_name = "StorageUnion"

    def __init__(
        self,
        sources: list[Operator],
        resegment_exprs: list[Expr] | None = None,
        fanout: int = 1,
    ):
        super().__init__(sources)
        self.resegment_exprs = resegment_exprs
        self.fanout = fanout if resegment_exprs else 1
        self._buckets: list[list[RowBlock]] | None = None

    def _materialize(self) -> None:
        if self._buckets is not None:
            return
        buckets: list[list[RowBlock]] = [[] for _ in range(self.fanout)]
        runs = (
            [expr.compiled() for expr in self.resegment_exprs]
            if self.resegment_exprs
            else None
        )
        for source in self.children:
            for block in source.blocks():
                if runs is None or self.fanout == 1:
                    buckets[0].append(block)
                    continue
                key_columns = [run(block) for run in runs]
                indexes: list[list[int]] = [[] for _ in range(self.fanout)]
                for index in range(block.row_count):
                    values = [column[index] for column in key_columns]
                    indexes[hash_row(values) % self.fanout].append(index)
                for pipeline, keep in enumerate(indexes):
                    if keep:
                        buckets[pipeline].append(block.select_rows(keep))
        self._buckets = buckets

    def pipeline_source(self, pipeline: int) -> Operator:
        """Operator feeding local pipeline ``pipeline``."""
        union = self

        class _PipelineSource(Operator):
            op_name = "StorageUnionPipe"

            def _produce(self):
                union._materialize()
                yield from union._buckets[pipeline]

            def label(self) -> str:
                return f"StorageUnion.pipe[{pipeline}]"

        return _PipelineSource()

    def _produce(self):
        self._materialize()
        for bucket in self._buckets:
            yield from bucket

    def label(self) -> str:
        if self.resegment_exprs:
            keys = ", ".join(repr(expr) for expr in self.resegment_exprs)
            return f"StorageUnion(resegment by {keys} x{self.fanout})"
        return f"StorageUnion({len(self.children)} sources)"


class ParallelUnionOperator(Operator):
    """Combines the outputs of parallel pipelines.

    With ``threads`` > 1, pipelines are drained concurrently by a
    thread pool (structurally faithful; wall-clock parallelism is
    GIL-bound).  Output order is deterministic: pipeline order.
    """

    op_name = "ParallelUnion"

    def __init__(self, pipelines: list[Operator], threads: int = 1):
        super().__init__(pipelines)
        self.threads = threads

    def _produce(self):
        if self.threads <= 1 or len(self.children) <= 1:
            for pipeline in self.children:
                yield from pipeline.blocks()
            return
        with ThreadPoolExecutor(max_workers=self.threads) as executor:
            futures = [
                executor.submit(lambda p=pipeline: list(p.blocks()))
                for pipeline in self.children
            ]
            for future in futures:
                yield from future.result()

    def label(self) -> str:
        return f"ParallelUnion({len(self.children)} pipelines, threads={self.threads})"
