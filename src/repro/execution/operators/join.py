"""Join operators: hash join and merge join, all SQL flavors.

    Join: Performs classic relational join.  Vertica supports both
    hash join and merge join algorithms which are capable of
    externalizing if necessary.  All flavors of INNER, LEFT OUTER,
    RIGHT OUTER, FULL OUTER, SEMI, and ANTI joins are supported.
    (section 6.1)

The hash join builds on its right (inner) child, publishes its key set
to any registered SIP filters, then streams the left (probe) side.
When the build side exceeds the memory budget, it *switches algorithms
at runtime*: both sides are externally sorted and the join completes
as a sort-merge join — exactly the adaptive behaviour the paper
describes ("if Vertica determines at runtime the hash table for a hash
join will not fit into memory, we will perform a sort-merge join
instead").
"""

from __future__ import annotations

from enum import Enum

from ...errors import ExecutionError
from ...types import sort_key
from ..expressions import ColumnRef, Expr
from ..kernels.vectors import as_list
from ..resource import ResourcePool
from ..row_block import VECTOR_SIZE, RowBlock
from ..sip import SipFilter
from .base import Operator, SourceBlocks
from .sort import SortKey, SortOperator


class JoinType(str, Enum):
    """SQL join flavors."""

    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    SEMI = "SEMI"
    ANTI = "ANTI"


def _null_row(column_names: list[str]) -> dict:
    return {name: None for name in column_names}


class _JoinEmitter:
    """Buffers joined rows into vector-sized output blocks."""

    def __init__(self, column_names: list[str]):
        self.column_names = column_names
        self._pending: list[dict] = []

    def emit(self, row: dict):
        self._pending.append(row)
        if len(self._pending) >= VECTOR_SIZE:
            return self.flush()
        return None

    def flush(self):
        if not self._pending:
            return None
        block = RowBlock.from_rows(self._pending, self.column_names)
        self._pending = []
        return block


class HashJoinOperator(Operator):
    """Hash join; builds from the right child, probes with the left."""

    op_name = "HashJoin"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[Expr],
        right_keys: list[Expr],
        join_type: JoinType = JoinType.INNER,
        left_columns: list[str] | None = None,
        right_columns: list[str] | None = None,
        pool: ResourcePool | None = None,
        max_build_rows: int | None = None,
    ):
        super().__init__([left, right])
        if len(left_keys) != len(right_keys):
            raise ExecutionError("join key lists must have equal length")
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.join_type = JoinType(join_type)
        self.left_columns = left_columns
        self.right_columns = right_columns
        self.pool = pool
        self.max_build_rows = max_build_rows
        self.sip_filters: list[SipFilter] = []
        self.switched_to_merge = False

    # -- SIP -----------------------------------------------------------

    def make_sip_filter(self, scan_key_exprs: list[Expr]) -> SipFilter:
        """Create a SIP filter to be placed in a probe-side scan; it is
        published when the build completes."""
        sip = SipFilter(key_exprs=scan_key_exprs, origin=self.op_name)
        self.sip_filters.append(sip)
        return sip

    # -- execution -------------------------------------------------------

    def _budget(self) -> int | None:
        if self.max_build_rows is not None:
            return self.max_build_rows
        if self.pool is not None:
            return self.pool.operator_budget()
        return None

    def _output_columns(self) -> list[str]:
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            return list(self.left_columns)
        overlap = set(self.left_columns) & set(self.right_columns)
        if overlap:
            raise ExecutionError(f"join output column collision: {sorted(overlap)}")
        return list(self.left_columns) + list(self.right_columns)

    def _produce(self):
        budget = self._budget()
        build_rows: list[dict] = []
        build_blocks_overflowed = False
        right_blocks = self.children[1].blocks()
        for block in right_blocks:
            build_rows.extend(block.to_rows())
            if budget is not None and len(build_rows) > budget:
                build_blocks_overflowed = True
                break
        if build_blocks_overflowed:
            # Runtime algorithm switch: finish draining the build side
            # into the merge path and sort-merge join instead.
            self.switched_to_merge = True
            if self.pool is not None:
                self.pool.note_spill()
            yield from self._merge_fallback(build_rows, right_blocks)
            return
        table: dict[tuple, list[dict]] = {}
        right_key_runs = [key.compiled() for key in self.right_keys]
        for start in range(0, len(build_rows), VECTOR_SIZE):
            chunk = build_rows[start : start + VECTOR_SIZE]
            block = RowBlock.from_rows(chunk, self.right_columns)
            key_columns = [run(block) for run in right_key_runs]
            for index, row in enumerate(chunk):
                key = tuple(column[index] for column in key_columns)
                if None in key:
                    continue
                table.setdefault(key, []).append(row)
        for sip in self.sip_filters:
            sip.publish(set(table))
        yield from self._probe(table, build_rows)

    def _probe(self, table: dict, build_rows: list[dict]):
        emitter = _JoinEmitter(self._output_columns())
        left_key_runs = [key.compiled() for key in self.left_keys]
        matched_build_ids: set[int] = set()
        track_build = self.join_type in (JoinType.RIGHT, JoinType.FULL)
        for block in self.children[0].blocks():
            key_columns = [as_list(run(block)) for run in left_key_runs]
            rows = block.to_rows()
            for index, left_row in enumerate(rows):
                key = tuple(column[index] for column in key_columns)
                matches = [] if None in key else table.get(key, [])
                out = self._emit_for_left(
                    emitter, left_row, matches, matched_build_ids, track_build
                )
                yield from out
        if track_build:
            for right_row in build_rows:
                if id(right_row) not in matched_build_ids:
                    block = emitter.emit(
                        {**_null_row(self.left_columns), **right_row}
                    )
                    if block is not None:
                        yield block
        final = emitter.flush()
        if final is not None:
            yield final

    def _emit_for_left(
        self, emitter, left_row, matches, matched_build_ids, track_build
    ):
        out = []
        if self.join_type is JoinType.SEMI:
            if matches:
                block = emitter.emit(left_row)
                if block is not None:
                    out.append(block)
            return out
        if self.join_type is JoinType.ANTI:
            if not matches:
                block = emitter.emit(left_row)
                if block is not None:
                    out.append(block)
            return out
        if matches:
            for right_row in matches:
                if track_build:
                    matched_build_ids.add(id(right_row))
                block = emitter.emit({**left_row, **right_row})
                if block is not None:
                    out.append(block)
        elif self.join_type in (JoinType.LEFT, JoinType.FULL):
            block = emitter.emit({**left_row, **_null_row(self.right_columns)})
            if block is not None:
                out.append(block)
        return out

    def _merge_fallback(self, drained_rows: list[dict], right_blocks):
        """Complete the join as an external sort-merge join."""

        def remaining_right():
            if drained_rows:
                yield RowBlock.from_rows(drained_rows, self.right_columns)
            yield from right_blocks

        left_sorted = SortOperator(
            self.children[0],
            [SortKey(expr) for expr in self.left_keys],
            pool=self.pool,
            max_buffered_rows=self.max_build_rows,
        )
        right_sorted = SortOperator(
            SourceBlocks(remaining_right()),
            [SortKey(expr) for expr in self.right_keys],
            pool=self.pool,
            max_buffered_rows=self.max_build_rows,
        )
        merge = MergeJoinOperator(
            left_sorted,
            right_sorted,
            self.left_keys,
            self.right_keys,
            self.join_type,
            self.left_columns,
            self.right_columns,
        )
        # SIP filters can no longer help (the probe scan may already be
        # running); publish an accept-all set so they become no-ops.
        for sip in self.sip_filters:
            if not sip.ready:
                sip.build_keys = None
        yield from merge.blocks()

    def label(self) -> str:
        keys = ", ".join(
            f"{l!r}={r!r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        algorithm = "MergeJoin(switched)" if self.switched_to_merge else "HashJoin"
        return f"{algorithm}[{self.join_type.value}]({keys})"


class MergeJoinOperator(Operator):
    """Merge join over inputs sorted ascending on the join keys."""

    op_name = "MergeJoin"

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: list[Expr],
        right_keys: list[Expr],
        join_type: JoinType = JoinType.INNER,
        left_columns: list[str] | None = None,
        right_columns: list[str] | None = None,
    ):
        super().__init__([left, right])
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.join_type = JoinType(join_type)
        self.left_columns = left_columns
        self.right_columns = right_columns

    def _output_columns(self) -> list[str]:
        if self.join_type in (JoinType.SEMI, JoinType.ANTI):
            return list(self.left_columns)
        return list(self.left_columns) + list(self.right_columns)

    @staticmethod
    def _row_stream(operator: Operator, keys: list[Expr]):
        runs = [key.compiled() for key in keys]
        for block in operator.blocks():
            key_columns = [as_list(run(block)) for run in runs]
            rows = block.to_rows()
            for index, row in enumerate(rows):
                raw = tuple(column[index] for column in key_columns)
                yield (tuple(sort_key(v) for v in raw), None in raw, row)

    @staticmethod
    def _next_group(stream, lookahead):
        """Pull the next run of equal-key rows; returns
        (key, has_null, rows, new_lookahead) or None at end."""
        if lookahead is None:
            try:
                lookahead = next(stream)
            except StopIteration:
                return None
        key, has_null, row = lookahead
        rows = [row]
        while True:
            try:
                lookahead = next(stream)
            except StopIteration:
                return key, has_null, rows, None
            if lookahead[0] != key:
                return key, has_null, rows, lookahead
            rows.append(lookahead[2])

    def _produce(self):
        emitter = _JoinEmitter(self._output_columns())
        left_stream = self._row_stream(self.children[0], self.left_keys)
        right_stream = self._row_stream(self.children[1], self.right_keys)
        left_ahead = None
        right_ahead = None
        left_group = self._next_group(left_stream, left_ahead)
        right_group = self._next_group(right_stream, right_ahead)
        preserve_left = self.join_type in (JoinType.LEFT, JoinType.FULL)
        preserve_right = self.join_type in (JoinType.RIGHT, JoinType.FULL)
        while left_group is not None and right_group is not None:
            left_key, left_null, left_rows, left_next = left_group
            right_key, right_null, right_rows, right_next = right_group
            if left_null or left_key < right_key:
                yield from self._left_unmatched(emitter, left_rows, preserve_left)
                left_group = self._next_group(left_stream, left_next)
            elif right_null or right_key < left_key:
                yield from self._right_unmatched(emitter, right_rows, preserve_right)
                right_group = self._next_group(right_stream, right_next)
            else:
                yield from self._matched(emitter, left_rows, right_rows)
                left_group = self._next_group(left_stream, left_next)
                right_group = self._next_group(right_stream, right_next)
        while left_group is not None:
            _, _, left_rows, left_next = left_group
            yield from self._left_unmatched(emitter, left_rows, preserve_left)
            left_group = self._next_group(left_stream, left_next)
        while right_group is not None:
            _, _, right_rows, right_next = right_group
            yield from self._right_unmatched(emitter, right_rows, preserve_right)
            right_group = self._next_group(right_stream, right_next)
        final = emitter.flush()
        if final is not None:
            yield final

    def _matched(self, emitter, left_rows, right_rows):
        if self.join_type is JoinType.SEMI:
            for left_row in left_rows:
                block = emitter.emit(left_row)
                if block is not None:
                    yield block
            return
        if self.join_type is JoinType.ANTI:
            return
        for left_row in left_rows:
            for right_row in right_rows:
                block = emitter.emit({**left_row, **right_row})
                if block is not None:
                    yield block

    def _left_unmatched(self, emitter, left_rows, preserve: bool):
        if self.join_type is JoinType.ANTI:
            for left_row in left_rows:
                block = emitter.emit(left_row)
                if block is not None:
                    yield block
            return
        if not preserve:
            return
        for left_row in left_rows:
            block = emitter.emit({**left_row, **_null_row(self.right_columns)})
            if block is not None:
                yield block

    def _right_unmatched(self, emitter, right_rows, preserve: bool):
        if not preserve:
            return
        for right_row in right_rows:
            block = emitter.emit({**_null_row(self.left_columns), **right_row})
            if block is not None:
                yield block

    def label(self) -> str:
        keys = ", ".join(
            f"{l!r}={r!r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"MergeJoin[{self.join_type.value}]({keys})"
