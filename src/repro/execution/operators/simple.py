"""Simple streaming operators: Filter, ExprEval, Limit, Distinct, UnionAll."""

from __future__ import annotations

from ...errors import ExecutionError
from ...lint import sanitizer
from ...monitor import METRICS
from ..expressions import Expr
from ..kernels import kernels_enabled
from ..kernels.predicates import compile_kernel_predicate
from ..kernels.vectors import as_list
from ..row_block import RowBlock
from .base import Operator


class FilterOperator(Operator):
    """Keeps rows whose predicate evaluates to TRUE (not NULL)."""

    op_name = "Filter"

    def __init__(self, child: Operator, predicate: Expr):
        super().__init__([child])
        self.predicate = predicate

    def _produce(self):
        kernel = None
        if kernels_enabled():
            kernel = compile_kernel_predicate(self.predicate)
        predicate = self.predicate.compiled() if kernel is None else None
        for block in self.children[0].blocks():
            if kernel is not None:
                self.kernel_blocks += 1
                METRICS.inc("executor.kernel_blocks")
                selection = kernel(
                    block.columns, block.row_count, block.sorted_by or ()
                )
                if selection.is_empty:
                    continue
                if selection.is_all:
                    filtered = block
                else:
                    filtered = RowBlock(
                        columns={
                            name: selection.apply(values)
                            for name, values in block.columns.items()
                        },
                        row_count=selection.count,
                        sorted_by=block.sorted_by,
                    )
            else:
                self.row_blocks += 1
                METRICS.inc("executor.row_fallback_blocks")
                filtered = block.filter(predicate(block))
            if sanitizer.enabled():
                sanitizer.check_filter_conservation(
                    block.row_count, filtered.row_count
                )
            if filtered.row_count:
                yield filtered

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


class ExprEvalOperator(Operator):
    """Computes output columns from expressions over the input.

    ``outputs`` is an ordered mapping of output name -> expression;
    this is both the projection and computed-column operator (the
    paper's ExprEval).
    """

    op_name = "ExprEval"

    def __init__(self, child: Operator, outputs: dict[str, Expr]):
        super().__init__([child])
        if not outputs:
            raise ExecutionError("ExprEval needs at least one output")
        self.outputs = dict(outputs)

    def _produce(self):
        from ..expressions import ColumnRef

        compiled = {name: expr.compiled() for name, expr in self.outputs.items()}
        # sort metadata survives pure column passthrough/rename outputs
        passthrough = {}
        for name, expr in self.outputs.items():
            if isinstance(expr, ColumnRef) and expr.name not in passthrough:
                passthrough[expr.name] = name
        for block in self.children[0].blocks():
            sorted_by = None
            if block.sorted_by:
                prefix = []
                for source in block.sorted_by:
                    if source not in passthrough:
                        break
                    prefix.append(passthrough[source])
                sorted_by = tuple(prefix) or None
            yield RowBlock(
                columns={name: run(block) for name, run in compiled.items()},
                row_count=block.row_count,
                sorted_by=sorted_by,
            )

    def label(self) -> str:
        body = ", ".join(f"{name}={expr!r}" for name, expr in self.outputs.items())
        return f"ExprEval({body})"


class LimitOperator(Operator):
    """LIMIT/OFFSET over the child's stream; stops pulling early."""

    op_name = "Limit"

    def __init__(self, child: Operator, limit: int, offset: int = 0):
        super().__init__([child])
        self.limit = limit
        self.offset = offset

    def _produce(self):
        to_skip = self.offset
        remaining = self.limit
        for block in self.children[0].blocks():
            if to_skip >= block.row_count:
                to_skip -= block.row_count
                continue
            if to_skip:
                block = block.select_rows(list(range(to_skip, block.row_count)))
                to_skip = 0
            if block.row_count >= remaining:
                yield block.select_rows(list(range(remaining)))
                return
            remaining -= block.row_count
            yield block

    def label(self) -> str:
        suffix = f" OFFSET {self.offset}" if self.offset else ""
        return f"Limit({self.limit}{suffix})"


class DistinctOperator(Operator):
    """Removes duplicate rows (hash-based)."""

    op_name = "Distinct"

    def __init__(self, child: Operator):
        super().__init__([child])

    def _produce(self):
        seen: set = set()
        for block in self.children[0].blocks():
            names = block.column_names
            columns = [as_list(block.columns[name]) for name in names]
            keep = []
            for index in range(block.row_count):
                key = tuple(column[index] for column in columns)
                if key not in seen:
                    seen.add(key)
                    keep.append(index)
            if keep:
                yield block.select_rows(keep)

    def label(self) -> str:
        return "Distinct"


class UnionAllOperator(Operator):
    """Concatenates children's streams (bag union)."""

    op_name = "UnionAll"

    def __init__(self, children: list[Operator]):
        super().__init__(children)

    def _produce(self):
        for child in self.children:
            yield from child.blocks()

    def label(self) -> str:
        return f"UnionAll({len(self.children)} inputs)"
