"""Analytic (windowed aggregate) operator.

    Analytic: Computes SQL-99 Analytics style windowed aggregates.
    (section 6.1)

Supported functions: ROW_NUMBER, RANK, DENSE_RANK, and the aggregate
functions COUNT/SUM/AVG/MIN/MAX over a window.  With an ORDER BY the
aggregates are *running* (rows from partition start to the current row,
peers included); without one they cover the whole partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import ExecutionError
from ...types import sort_key
from ..expressions import Expr
from ..row_block import VECTOR_SIZE, RowBlock
from .base import Operator

_RANKING = ("ROW_NUMBER", "RANK", "DENSE_RANK")
_AGGREGATE = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass
class WindowSpec:
    """One window function in the select list."""

    func: str
    #: Argument expression; None for ROW_NUMBER/RANK/DENSE_RANK/COUNT(*).
    arg: Expr | None
    output_name: str
    partition_by: list[Expr] = field(default_factory=list)
    order_by: list[tuple[Expr, bool]] = field(default_factory=list)

    def __post_init__(self):
        self.func = self.func.upper()
        if self.func not in _RANKING + _AGGREGATE:
            raise ExecutionError(f"unsupported window function {self.func!r}")
        if self.func in _RANKING and not self.order_by:
            raise ExecutionError(f"{self.func} requires ORDER BY")

    def describe(self) -> str:
        inner = "" if self.arg is None else repr(self.arg)
        over = []
        if self.partition_by:
            over.append(
                "PARTITION BY " + ", ".join(repr(e) for e in self.partition_by)
            )
        if self.order_by:
            over.append(
                "ORDER BY "
                + ", ".join(
                    f"{expr!r} {'ASC' if asc else 'DESC'}"
                    for expr, asc in self.order_by
                )
            )
        return f"{self.func}({inner}) OVER ({' '.join(over)})"


class _Desc:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


class AnalyticOperator(Operator):
    """Computes one window function, appending its output column.

    Materializes the input (window semantics require it), partitions,
    orders within partitions, computes, and re-emits rows in the
    computed order.  Chain several AnalyticOperators for several
    window functions.
    """

    op_name = "Analytic"

    def __init__(self, child: Operator, spec: WindowSpec):
        super().__init__([child])
        self.spec = spec

    def _produce(self):
        rows: list[dict] = []
        for block in self.children[0].blocks():
            rows.extend(block.to_rows())
        if not rows:
            return
        partitions: dict[tuple, list[dict]] = {}
        for row in rows:
            key = tuple(
                sort_key(expr.evaluate_row(row)) for expr in self.spec.partition_by
            )
            partitions.setdefault(key, []).append(row)
        out_rows: list[dict] = []
        for key in sorted(partitions, key=repr):
            out_rows.extend(self._compute_partition(partitions[key]))
        column_names = list(out_rows[0])
        for start in range(0, len(out_rows), VECTOR_SIZE):
            yield RowBlock.from_rows(
                out_rows[start : start + VECTOR_SIZE], column_names
            )

    def _order_key(self, row: dict):
        parts = []
        for expr, ascending in self.spec.order_by:
            value = sort_key(expr.evaluate_row(row))
            parts.append(value if ascending else _Desc(value))
        return tuple(parts)

    def _compute_partition(self, rows: list[dict]) -> list[dict]:
        spec = self.spec
        if spec.order_by:
            rows = sorted(rows, key=self._order_key)
        name = spec.output_name
        if spec.func == "ROW_NUMBER":
            return [{**row, name: index + 1} for index, row in enumerate(rows)]
        if spec.func in ("RANK", "DENSE_RANK"):
            out = []
            rank = 0
            dense = 0
            previous_key = object()
            for index, row in enumerate(rows):
                key = self._order_key(row)
                if key != previous_key:
                    rank = index + 1
                    dense += 1
                    previous_key = key
                out.append({**row, name: rank if spec.func == "RANK" else dense})
            return out
        return self._compute_window_aggregate(rows)

    def _compute_window_aggregate(self, rows: list[dict]) -> list[dict]:
        spec = self.spec
        values = [
            None if spec.arg is None else spec.arg.evaluate_row(row) for row in rows
        ]
        if not spec.order_by:
            total = self._aggregate(values, count_star=spec.arg is None)
            return [{**row, spec.output_name: total} for row in rows]
        # running aggregate with peer rows included (RANGE UNBOUNDED
        # PRECEDING .. CURRENT ROW, the SQL default)
        out: list[dict] = []
        keys = [self._order_key(row) for row in rows]
        index = 0
        while index < len(rows):
            peer_end = index + 1
            while peer_end < len(rows) and keys[peer_end] == keys[index]:
                peer_end += 1
            running = self._aggregate(
                values[:peer_end], count_star=spec.arg is None
            )
            for position in range(index, peer_end):
                out.append({**rows[position], spec.output_name: running})
            index = peer_end
        return out

    def _aggregate(self, values: list, count_star: bool):
        func = self.spec.func
        if func == "COUNT":
            if count_star:
                return len(values)
            return sum(1 for value in values if value is not None)
        concrete = [value for value in values if value is not None]
        if not concrete:
            return None
        if func == "SUM":
            return sum(concrete)
        if func == "AVG":
            return sum(concrete) / len(concrete)
        if func == "MIN":
            return min(concrete)
        return max(concrete)

    def label(self) -> str:
        return f"Analytic({self.spec.describe()})"
