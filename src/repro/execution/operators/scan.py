"""Scan operator: projection-aware, pruning, predicate-pushing.

    Scan: Reads data from a particular projection's ROS containers,
    and applies predicates in the most advantageous manner possible.
    (section 6.1)

The scan derives per-column (low, high) bounds from its predicate and
hands them to the storage manager so whole ROS containers are pruned
from min/max metadata; the residual predicate is evaluated vectorized
on the surviving blocks; SIP filters from downstream hash joins run
last (section 6.1).
"""

from __future__ import annotations

from ...monitor import METRICS
from ...storage.manager import StorageManager
from ..expressions import Expr, column_range_from_predicate
from ..kernels import kernels_enabled
from ..kernels.predicates import compile_kernel_predicate
from ..row_block import RowBlock, _sorted_prefix
from ..sip import SipFilter
from .base import Operator


class ScanOperator(Operator):
    """Scan one projection on one node at one snapshot epoch."""

    op_name = "Scan"

    def __init__(
        self,
        manager: StorageManager,
        projection_name: str,
        epoch: int,
        columns: list[str],
        predicate: Expr | None = None,
        sip_filters: list[SipFilter] | None = None,
        extra_rows: list[dict] | None = None,
        node_index: int | None = None,
        failure_probe=None,
    ):
        super().__init__()
        self.manager = manager
        self.projection_name = projection_name
        self.epoch = epoch
        self.columns = list(columns)
        self.predicate = predicate
        self.sip_filters = sip_filters or []
        #: Rows visible only to the scanning transaction (its own
        #: uncommitted inserts), appended after storage rows.
        self.extra_rows = extra_rows or []
        #: Cluster node hosting this scan (None outside a cluster).
        self.node_index = node_index
        #: Zero-argument callable consulted before every batch; the
        #: distributed executor wires one that raises
        #: :class:`repro.errors.NodeDownError` when the hosting node
        #: has died or an armed fault kills it mid-scan, driving the
        #: buddy-failover retry (section 5.2).
        self.failure_probe = failure_probe
        self.rows_scanned = 0
        self.rows_after_predicate = 0

    def _needed_columns(self) -> list[str]:
        needed = set(self.columns)
        if self.predicate is not None:
            needed |= self.predicate.referenced_columns()
        for sip in self.sip_filters:
            for expr in sip.key_exprs:
                needed |= expr.referenced_columns()
        return sorted(needed)

    def _produce(self):
        prune = column_range_from_predicate(self.predicate)
        needed = self._needed_columns()
        use_kernels = kernels_enabled()
        kernel = None
        row_predicate = None
        if self.predicate is not None:
            if use_kernels:
                kernel = compile_kernel_predicate(self.predicate)
            if kernel is None:
                row_predicate = self.predicate.compiled()

        def emit(block: RowBlock):
            self.rows_scanned += block.row_count
            if kernel is not None:
                # vectorized predicate: evaluated over only the
                # predicate's columns; non-predicate columns are touched
                # (sliced, still encoded) only if the selection keeps
                # anything — late materialization.
                self.kernel_blocks += 1
                METRICS.inc("executor.kernel_blocks")
                selection = kernel(
                    block.columns, block.row_count, block.sorted_by or ()
                )
                if selection.is_empty:
                    return None
                if not selection.is_all:
                    block = RowBlock(
                        columns={
                            name: selection.apply(values)
                            for name, values in block.columns.items()
                        },
                        row_count=selection.count,
                        sorted_by=block.sorted_by,
                    )
            elif row_predicate is not None:
                self.row_blocks += 1
                METRICS.inc("executor.row_fallback_blocks")
                block = block.filter(row_predicate(block))
            elif use_kernels:
                self.kernel_blocks += 1
                METRICS.inc("executor.kernel_blocks")
            else:
                self.row_blocks += 1
                METRICS.inc("executor.row_fallback_blocks")
            self.rows_after_predicate += block.row_count
            for sip in self.sip_filters:
                block = sip.apply(block)
            if block.row_count:
                return block.project(self.columns)
            return None

        if self.failure_probe is not None:
            self.failure_probe()
        needed_set = set(needed)
        for batch in self.manager.scan(
            self.projection_name,
            self.epoch,
            columns=needed,
            prune=prune or None,
            vectorized=use_kernels,
        ):
            if self.failure_probe is not None:
                self.failure_probe()
            sorted_by = None
            if batch.sorted_run and batch.sort_columns:
                sorted_by = _sorted_prefix(batch.sort_columns, needed_set)
            block = RowBlock(
                columns=batch.columns,
                row_count=batch.row_count,
                sorted_by=sorted_by,
            )
            out = emit(block)
            if out is not None:
                yield out
        if self.extra_rows:
            block = RowBlock(
                columns={
                    name: [row[name] for row in self.extra_rows] for name in needed
                },
                row_count=len(self.extra_rows),
            )
            out = emit(block)
            if out is not None:
                yield out

    def label(self) -> str:
        parts = [f"Scan({self.projection_name} @e{self.epoch})"]
        if self.predicate is not None:
            parts.append(f"filter={self.predicate!r}")
        for sip in self.sip_filters:
            parts.append(sip.describe())
        return " ".join(parts)
