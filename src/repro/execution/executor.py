"""The distributed executor: physical plan -> operators on a cluster.

Interprets a :class:`repro.optimizer.physical.PhysicalNode` tree against
the simulated cluster.  Per-node plan fragments run against each node's
storage manager (choosing buddy copies for down nodes), joined/merged
per the plan's distribution strategy:

* **co-located** joins and **local-complete** group-bys run entirely
  inside each node's fragment (the segmentation payoff of section 3.6);
* **broadcast inner** materializes the build side once and feeds a copy
  to every probe fragment;
* **resegment** pushes both sides through Send/Recv exchanges hashed on
  the join keys (V2Opt's on-the-fly data transfer, section 6.2);
* everything after the last distributed operator runs at the
  coordinator, fed by a fragment union.

SIP filters are wired here: a hash join with ``sip`` set installs its
filter into the probe-side scan of every fragment (section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from ..errors import (
    DataUnavailableError,
    InjectedFaultError,
    NodeDownError,
    PlanningError,
)
from ..monitor import METRICS
from ..trace import TRACER, record_plan_spans
from .aggregates import AggregateSpec
from .expressions import ColumnRef, substitute_columns
from .operators import (
    AnalyticOperator,
    DistinctOperator,
    Exchange,
    ExprEvalOperator,
    FilterOperator,
    GroupByHashOperator,
    GroupByPipelinedOperator,
    HashJoinOperator,
    LimitOperator,
    MergeJoinOperator,
    Operator,
    PrepassGroupByOperator,
    RecvOperator,
    ScanOperator,
    SendOperator,
    SortKey,
    SortOperator,
    SourceBlocks,
    UnionAllOperator,
)
from .resource import ResourcePool


@dataclass
class ExecutorStats:
    """Observability counters for one query execution."""

    rows_scanned: int = 0
    rows_broadcast: int = 0
    sip_filters: int = 0
    _scans: list[ScanOperator] = field(default_factory=list)
    _exchanges: list[Exchange] = field(default_factory=list)
    _sips: list = field(default_factory=list)

    @property
    def rows_resegmented(self) -> int:
        return sum(ex.rows_sent for ex in self._exchanges)

    @property
    def network_bytes(self) -> int:
        return sum(ex.bytes_sent for ex in self._exchanges)

    @property
    def rows_sip_filtered(self) -> int:
        return sum(sip.rows_filtered for sip in self._sips)

    def finalize(self) -> None:
        """Fold per-operator counters after execution."""
        self.rows_scanned = sum(scan.rows_scanned for scan in self._scans)


class _Fragments:
    """Per-ring-segment operators, or a factory for replicated data."""

    def __init__(self, by_base: dict[int, Operator] | None, factory=None):
        self.by_base = by_base
        self.factory = factory  # base -> Operator (replicated sources)

    @property
    def replicated(self) -> bool:
        return self.factory is not None

    def bases(self) -> list[int]:
        return sorted(self.by_base) if self.by_base is not None else []

    def op_for(self, base: int) -> Operator:
        if self.by_base is not None:
            return self.by_base[base]
        return self.factory(base)

    def map(self, transform) -> "_Fragments":
        if self.by_base is not None:
            return _Fragments(
                {base: transform(op) for base, op in self.by_base.items()}
            )
        factory = self.factory
        return _Fragments(None, factory=lambda base: transform(factory(base)))


class DistributedExecutor:
    """Runs physical plans against a cluster at a snapshot epoch."""

    def __init__(
        self,
        cluster,
        epoch: int,
        pool: ResourcePool | None = None,
        pending_inserts: dict[str, list[dict]] | None = None,
        cancel_token=None,
    ):
        self.cluster = cluster
        self.epoch = epoch
        self.pool = pool
        #: Cooperative cancel flag installed on every built operator
        #: (service-layer statement timeouts and ``Session.cancel()``).
        self.cancel_token = cancel_token
        #: table -> uncommitted rows of the running transaction, which
        #: must be visible to its own queries.
        self.pending_inserts = pending_inserts or {}
        self.stats = ExecutorStats()
        #: Coordinator-side root of the most recent :meth:`run`, kept so
        #: the profiler can walk the finished plan afterwards.
        self.root_operator: Operator | None = None

    # -- public API -----------------------------------------------------

    def operator(self, plan) -> Operator:
        """Build the coordinator-side operator for a plan."""
        built = self._build(plan)
        root = self._collect(built)
        if self.cancel_token is not None:
            for op in root.walk():
                op.cancel_token = self.cancel_token
        return root

    def run(self, plan) -> list[dict]:
        """Execute and materialize the result rows, failing over to
        buddy copies when a node dies mid-query.

        A scan or exchange that hits a dead/ejected node (or an armed
        ``executor.scan`` / ``executor.exchange`` fault) raises
        :class:`NodeDownError`; the executor marks the node down,
        re-resolves scan sources against the surviving buddies at the
        *same* snapshot epoch and retries the whole query (section
        5.2's "queries keep answering through node deaths").  The
        attempt budget is bounded by the node count — every retry
        removes one node — and a query only surfaces
        :class:`DataUnavailableError` when no copy of some segment is
        reachable.
        """
        attempts = 0
        budget = max(self.cluster.node_count, 1)
        while True:
            if self.cancel_token is not None:
                # a cancelled statement must not burn a failover retry.
                self.cancel_token.check()
            # fail fast, naming the missing segment and family, before
            # any operator is built: a query over unavailable data must
            # return zero rows, never the partial set that the still
            # reachable copies could produce.
            self._require_availability(plan)
            attempt_cm = TRACER.span(
                "executor.attempt",
                category="executor",
                attempt=attempts + 1,
                epoch=self.epoch,
            )
            try:
                with attempt_cm as attempt_span:
                    # broadcast joins materialize their inner side
                    # during the build, so the build runs inside the
                    # failover net (and inside the attempt span).
                    operator = self.operator(plan)
                    self.root_operator = operator
                    rows = operator.rows()
                    if attempt_span is not None:
                        record_plan_spans(
                            TRACER.active, operator, attempt_span
                        )
            except NodeDownError as exc:
                attempts += 1
                self.cluster.note_node_failure(
                    exc.node_index, f"died mid-query: {exc}"
                )
                if attempts >= budget:
                    raise DataUnavailableError(
                        f"query failed over {attempts} times without "
                        f"finding a stable set of copies: {exc}"
                    ) from exc
                METRICS.inc("executor.query_retries")
                self.cluster.failover_log.record(
                    "query_retry",
                    exc.node_index,
                    f"retrying at epoch {self.epoch} on surviving "
                    f"buddies: {exc}",
                    self.cluster.clock.now,
                    attempt=attempts,
                )
                with TRACER.span(
                    "failover.retry",
                    category="failover",
                    dead_node=exc.node_index,
                    attempt=attempts,
                    epoch=self.epoch,
                ) as retry_span:
                    if retry_span is not None:
                        retry_span.attrs["resolved_sources"] = (
                            self._resolved_sources(plan)
                        )
                # fresh counters: the aborted attempt's partial scans
                # must not inflate the profile of the retry that wins.
                self.stats = ExecutorStats()
                continue
            self.stats.finalize()
            return rows

    # -- helpers ----------------------------------------------------------

    def _collect(self, built) -> Operator:
        if isinstance(built, Operator):
            return built
        if built.replicated:
            return built.op_for(0)
        ops = [built.op_for(base) for base in built.bases()]
        if len(ops) == 1:
            return ops[0]
        return UnionAllOperator(ops)

    def _build(self, node):
        from ..optimizer import physical as P

        if isinstance(node, P.PhysScan):
            return self._build_scan(node)
        if isinstance(node, P.PhysFilter):
            return self._map_or_single(
                node.child, lambda op: FilterOperator(op, node.predicate)
            )
        if isinstance(node, P.PhysProject):
            return self._map_or_single(
                node.child, lambda op: ExprEvalOperator(op, node.outputs)
            )
        if isinstance(node, P.PhysJoin):
            return self._build_join(node)
        if isinstance(node, P.PhysGroupBy):
            return self._build_groupby(node)
        if isinstance(node, P.PhysSort):
            child = self._collect(self._build(node.child))
            return SortOperator(
                child,
                [SortKey(expr, asc) for expr, asc in node.keys],
                pool=self.pool,
                limit_hint=node.limit_hint,
            )
        if isinstance(node, P.PhysLimit):
            child = self._collect(self._build(node.child))
            return LimitOperator(child, node.limit, node.offset)
        if isinstance(node, P.PhysDistinct):
            child = self._collect(self._build(node.child))
            return DistinctOperator(child)
        if isinstance(node, P.PhysAnalytic):
            child = self._collect(self._build(node.child))
            for spec in node.specs:
                child = AnalyticOperator(child, spec)
            return child
        raise PlanningError(f"executor cannot build {type(node).__name__}")

    def _map_or_single(self, child_plan, transform):
        built = self._build(child_plan)
        if isinstance(built, Operator):
            return transform(built)
        return built.map(transform)

    def _require_availability(self, plan) -> None:
        """Enforce the availability contract before building anything:
        every family the plan scans must be fully reachable (the error
        names the first missing segment and its family), and the cluster
        as a whole must pass :meth:`Cluster.check_data_available` — a
        cluster with *any* unreachable segment performs a safety
        shutdown (section 5.3), it does not keep serving the tables
        that happen to survive."""
        from ..optimizer import physical as P

        stack = [plan]
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if isinstance(node, P.PhysScan) and node.family_name not in seen:
                seen.add(node.family_name)
                family = self.cluster.catalog.family(node.family_name)
                self.cluster.require_family_available(family)
            stack.extend(node.children)
        try:
            self.cluster.require_data_available()
        except DataUnavailableError:
            METRICS.set_gauge("cluster.data_available", 0)
            raise
        METRICS.set_gauge("cluster.data_available", 1)

    def _resolved_sources(self, plan) -> dict:
        """After a failover: the (node, projection copy) each scanned
        family re-resolves to on the surviving buddies.  Annotated onto
        the ``failover.retry`` span so a trace names not just the dead
        node but who took over its segments."""
        from ..optimizer import physical as P

        resolved: dict = {}
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, P.PhysScan) and node.family_name not in resolved:
                family = self.cluster.catalog.family(node.family_name)
                if family.primary.segmentation.replicated:
                    resolved[node.family_name] = "replicated"
                else:
                    try:
                        resolved[node.family_name] = [
                            [host, projection_name]
                            for host, projection_name in self.cluster.scan_sources(family)
                        ]
                    except DataUnavailableError as exc:
                        resolved[node.family_name] = f"unavailable: {exc}"
            stack.extend(node.children)
        return resolved

    # -- node-death probes ------------------------------------------------

    def _check_node(self, host: int, point: str, where: str) -> None:
        """Raise :class:`NodeDownError` when ``host`` is no longer a
        cluster member or an armed fault kills it at ``point``."""
        if not self.cluster.membership.is_up(host):
            raise NodeDownError(f"node {host} went down {where}", host)
        try:
            faults.inject(point, node=host)
        except InjectedFaultError as exc:
            raise NodeDownError(
                f"node {host} crashed {where}: {exc}", host
            ) from exc

    def _scan_probe(self, host: int):
        def probe():
            self._check_node(host, "executor.scan", "mid-scan")

        return probe

    def _attach_exchange_probe(self, sender: SendOperator) -> None:
        """Give a Send operator a probe bound to the node hosting its
        fragment's scan, so a death mid-exchange is attributed to the
        right node (the same host becomes the sender's trace node)."""
        for op in sender.children[0].walk():
            if isinstance(op, ScanOperator) and op.node_index is not None:
                host = op.node_index

                def probe(host=host):
                    self._check_node(host, "executor.exchange", "mid-exchange")

                sender.failure_probe = probe
                sender.trace_node = host
                return

    # -- scans -------------------------------------------------------------

    def _build_scan(self, node):
        family = self.cluster.catalog.family(node.family_name)
        table = self.cluster.catalog.table(node.table)
        # node.columns are output names; translate back to stored names.
        inverse = {out: raw for raw, out in node.rename.items()}
        raw_columns = [inverse.get(name, name) for name in node.columns]
        # scan predicates are written in stored column names already.
        raw_predicate = node.predicate
        rename = {raw: out for raw, out in node.rename.items() if raw != out}
        pending = self.pending_inserts.get(node.table, [])

        def make_scan(host: int, projection_name: str, base: int | None):
            copy = next(
                c for c in family.all_copies if c.name == projection_name
            )
            extra = self._pending_for(copy, table, pending, base)
            scan = ScanOperator(
                self.cluster.nodes[host].manager,
                projection_name,
                self.epoch,
                raw_columns,
                predicate=raw_predicate,
                extra_rows=extra,
                node_index=host,
                failure_probe=self._scan_probe(host),
            )
            self.stats._scans.append(scan)
            out: Operator = scan
            if rename:
                out = ExprEvalOperator(
                    out,
                    {
                        rename.get(raw, raw): ColumnRef(raw)
                        for raw in raw_columns
                    },
                )
            return out

        if family.primary.segmentation.replicated:
            up = self.cluster.membership.up_nodes()
            if not up:
                raise DataUnavailableError(
                    f"no node up for replicated projection family "
                    f"{family.primary.name} (table {node.table})"
                )

            def factory(base: int):
                host = base if base in up else up[0]
                return make_scan(host, family.primary.name, None)

            return _Fragments(None, factory=factory)
        sources = self.cluster.scan_sources(family)
        return _Fragments(
            {
                base: make_scan(host, projection_name, base)
                for base, (host, projection_name) in enumerate(sources)
            }
        )

    def _pending_for(self, copy, table, pending_rows, base):
        """The transaction's own uncommitted rows, shaped for this
        projection copy and restricted to this ring segment."""
        if not pending_rows:
            return []
        shaped = self.cluster.projection_rows(copy, pending_rows, self.epoch)
        if copy.segmentation.replicated or base is None:
            return shaped
        primary_seg = copy.segmentation
        return [
            row
            for row in shaped
            if (
                primary_seg.node_for_row(row, self.cluster.node_count)
                - getattr(primary_seg, "offset", 0)
            )
            % self.cluster.node_count
            == base
        ]

    # -- joins --------------------------------------------------------------

    def _find_scan(self, op: Operator) -> ScanOperator | None:
        current = op
        while current is not None:
            if isinstance(current, ScanOperator):
                return current
            if isinstance(current, (RecvOperator, SendOperator)):
                # never push a SIP filter across an exchange: the scan
                # below it feeds *every* destination, not just this join
                return None
            current = current.children[0] if current.children else None
        return None

    def _attach_sip(self, join: HashJoinOperator, probe_op, node):
        if not node.sip:
            return
        scan = self._find_scan(probe_op)
        if scan is None:
            return
        inverse = {}
        plan_scan = self._scan_plan_of(node.left)
        if plan_scan is not None:
            inverse = {out: raw for raw, out in plan_scan.rename.items()}
        keys = [substitute_columns(key, inverse) for key in node.left_keys]
        sip = join.make_sip_filter(keys)
        scan.sip_filters.append(sip)
        self.stats._sips.append(sip)
        self.stats.sip_filters += 1

    @staticmethod
    def _scan_plan_of(plan_node):
        from ..optimizer import physical as P

        current = plan_node
        while current is not None:
            if isinstance(current, P.PhysScan):
                return current
            current = current.children[0] if current.children else None
        return None

    def _make_join_op(self, node, left_op, right_op):
        if node.algorithm == "merge":
            left_sorted = SortOperator(
                left_op, [SortKey(key) for key in node.left_keys], pool=self.pool
            )
            right_sorted = SortOperator(
                right_op, [SortKey(key) for key in node.right_keys], pool=self.pool
            )
            join: Operator = MergeJoinOperator(
                left_sorted,
                right_sorted,
                node.left_keys,
                node.right_keys,
                node.join_type,
                node.left_columns,
                node.right_columns,
            )
        else:
            join = HashJoinOperator(
                left_op,
                right_op,
                node.left_keys,
                node.right_keys,
                node.join_type,
                node.left_columns,
                node.right_columns,
                pool=self.pool,
            )
            self._attach_sip(join, left_op, node)
        if node.residual is not None:
            join = FilterOperator(join, node.residual)
        return join

    def _build_join(self, node):
        from ..optimizer import physical as P

        left = self._build(node.left)
        right = self._build(node.right)
        if node.strategy == P.COLOCATED:
            return self._join_colocated(node, left, right)
        if node.strategy == P.BROADCAST_INNER:
            return self._join_broadcast(node, left, right)
        return self._join_resegment(node, left, right)

    def _join_colocated(self, node, left, right):
        if isinstance(left, Operator) or isinstance(right, Operator):
            left_op = left if isinstance(left, Operator) else self._collect(left)
            right_op = right if isinstance(right, Operator) else self._collect(right)
            return self._make_join_op(node, left_op, right_op)
        if left.replicated and right.replicated:
            return _Fragments(
                None,
                factory=lambda base: self._make_join_op(
                    node, left.op_for(base), right.op_for(base)
                ),
            )
        bases = left.bases() if not left.replicated else right.bases()
        return _Fragments(
            {
                base: self._make_join_op(
                    node, left.op_for(base), right.op_for(base)
                )
                for base in bases
            }
        )

    def _join_broadcast(self, node, left, right):
        inner = self._collect(right)
        if self.cancel_token is not None:
            # the build side materializes during plan construction,
            # before operator() installs tokens on the finished tree —
            # install here so the build is cancellable too.
            for op in inner.walk():
                op.cancel_token = self.cancel_token
        with TRACER.span(
            "exchange.broadcast", category="exchange"
        ) as bc_span:
            blocks = list(inner.blocks())
            inner_rows = sum(block.row_count for block in blocks)
            if bc_span is not None:
                bc_span.attrs["rows_materialized"] = inner_rows
        if isinstance(left, Operator):
            return self._make_join_op(node, left, SourceBlocks(iter(blocks)))
        bases = left.bases() if not left.replicated else [0]
        copies = max(len(bases) - 1, 0)
        self.stats.rows_broadcast += inner_rows * copies

        def make(base):
            return self._make_join_op(node, left.op_for(base), SourceBlocks(list(blocks)))

        if left.replicated:
            return _Fragments(None, factory=make)
        return _Fragments({base: make(base) for base in bases})

    def _join_resegment(self, node, left, right):
        destinations = max(len(self.cluster.membership.up_nodes()), 1)
        left_exchange = Exchange(destinations)
        right_exchange = Exchange(destinations)
        self.stats._exchanges.extend([left_exchange, right_exchange])
        left_frag = (
            left if not isinstance(left, Operator) else _Fragments({0: left})
        )
        right_frag = (
            right if not isinstance(right, Operator) else _Fragments({0: right})
        )
        left_senders = [
            SendOperator(
                left_frag.op_for(base), left_exchange, segment_exprs=node.left_keys
            )
            for base in (left_frag.bases() or [0])
        ]
        right_senders = [
            SendOperator(
                right_frag.op_for(base),
                right_exchange,
                segment_exprs=node.right_keys,
            )
            for base in (right_frag.bases() or [0])
        ]
        # cross-node context propagation: every Send/Recv carries the
        # handle of the span that requested this exchange (the current
        # open span at plan-build time), and the node its half runs on.
        handle = TRACER.handle()
        for sender in (*left_senders, *right_senders):
            self._attach_exchange_probe(sender)
            sender.trace_parent = handle
        up = self.cluster.membership.up_nodes()

        def make_recv(exchange, destination, senders):
            recv = RecvOperator(exchange, destination, senders)
            recv.trace_parent = handle
            recv.trace_node = up[destination] if destination < len(up) else None
            return recv

        return _Fragments(
            {
                destination: self._make_join_op(
                    node,
                    make_recv(left_exchange, destination, left_senders),
                    make_recv(right_exchange, destination, right_senders),
                )
                for destination in range(destinations)
            }
        )

    # -- group by --------------------------------------------------------------

    def _build_groupby(self, node):
        built = self._build(node.child)
        key_exprs = [expr for _, expr in node.keys]
        key_names = [name for name, _ in node.keys]

        def local_group(op):
            if node.algorithm == "pipelined":
                ordered = SortOperator(
                    op, [SortKey(expr) for expr in key_exprs], pool=self.pool
                )
                return GroupByPipelinedOperator(
                    ordered, key_exprs, key_names, node.aggregates
                )
            return GroupByHashOperator(
                op, key_exprs, key_names, node.aggregates, pool=self.pool
            )

        if isinstance(built, Operator):
            result: Operator = local_group(built)
        elif node.local_complete:
            result_frags = built.map(local_group)
            result = self._collect(result_frags)
        else:
            mergeable = all(spec.mergeable for spec in node.aggregates)
            if not mergeable:
                result = local_group(self._collect(built))
            else:
                def partial(op):
                    if node.prepass:
                        return PrepassGroupByOperator(
                            op, key_exprs, key_names, node.aggregates
                        )
                    return GroupByHashOperator(
                        op, key_exprs, key_names, node.aggregates, pool=self.pool
                    )

                partials = built.map(partial)
                result = GroupByHashOperator(
                    self._collect(partials),
                    key_exprs,
                    key_names,
                    node.aggregates,
                    merge_partials=True,
                    pool=self.pool,
                )
        if node.having is not None:
            result = FilterOperator(result, node.having)
        return result
