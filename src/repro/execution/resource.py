"""Execution resource management (section 6.1).

    During query compile time, each operator is given a memory budget
    based on the resources available given a user defined workload
    policy and what each operator is going to do.  All operators are
    capable of handling arbitrary sized inputs, regardless of the
    memory allocated, by externalizing their buffers to disk.

Budgets are expressed in *rows* (a proxy for bytes that keeps the
simulation deterministic).  The resource pool also implements the
paper's zone idea: operators separated by a pipeline breaker (Sort,
hash build) can reuse each other's memory, so the pool hands memory
back when an operator finishes.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field

from ..errors import ResourceExceededError


@dataclass
class WorkloadPolicy:
    """User-facing resource knobs for a session's queries."""

    #: Total rows' worth of working memory a query may pin at once.
    query_memory_rows: int = 1_000_000
    #: Fraction of the query budget any single operator may take.
    per_operator_fraction: float = 0.5


@dataclass
class ResourcePool:
    """Tracks grants against one query's memory budget."""

    policy: WorkloadPolicy = field(default_factory=WorkloadPolicy)
    granted: dict[int, int] = field(default_factory=dict)
    _next_grant: int = 1
    #: Count of spill events (observability for tests/benches).
    spills: int = 0

    @property
    def in_use(self) -> int:
        """Rows of memory currently granted."""
        return sum(self.granted.values())

    @property
    def available(self) -> int:
        """Rows of memory still grantable."""
        return max(self.policy.query_memory_rows - self.in_use, 0)

    def operator_budget(self) -> int:
        """Default per-operator grant size."""
        return max(
            int(self.policy.query_memory_rows * self.policy.per_operator_fraction),
            1,
        )

    def grant(self, rows: int) -> int:
        """Reserve ``rows`` of memory; returns a grant id."""
        if rows > self.available:
            raise ResourceExceededError(
                f"requested {rows} rows, only {self.available} available"
            )
        grant_id = self._next_grant
        self._next_grant += 1
        self.granted[grant_id] = rows
        return grant_id

    def release(self, grant_id: int) -> None:
        """Return a grant to the pool (zone hand-back)."""
        self.granted.pop(grant_id, None)

    def note_spill(self) -> None:
        """Record that an operator externalized to disk."""
        self.spills += 1


class SpillFile:
    """A temp file of pickled row batches, for externalizing operators."""

    def __init__(self):
        self._handle = tempfile.NamedTemporaryFile(
            mode="w+b", suffix=".spill", delete=False
        )
        self.batches = 0

    def write_batch(self, rows: list) -> None:
        """Append one batch of rows."""
        pickle.dump(rows, self._handle)
        self.batches += 1

    def read_batches(self):
        """Yield batches back in write order."""
        self._handle.flush()
        self._handle.seek(0)
        for _ in range(self.batches):
            yield pickle.load(self._handle)

    def close(self) -> None:
        """Close and remove the backing file."""
        name = self._handle.name
        self._handle.close()
        try:
            os.unlink(name)
        except OSError:  # pragma: no cover - best effort cleanup
            pass
