"""Sideways Information Passing (section 6.1).

    Special SIP filters are built during optimizer planning and placed
    in the Scan operator.  At run time, the Scan has access to the
    Join's hash table and the SIP filters are used to evaluate whether
    the outer key values exist in the hash table.  Rows that do not
    pass these filters are not output by the Scan.

A :class:`SipFilter` is created at plan time pointing at a hash join;
the join publishes its build-side key set once the hash table is built
(which, in a pull pipeline, always happens before the probe-side scan
produces its first block).  The scan then drops rows whose join keys
cannot match, so they never travel up the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .expressions import Expr
from .kernels.vectors import as_list
from .row_block import RowBlock


@dataclass
class SipFilter:
    """A scan-side membership filter fed by a join's hash table."""

    #: Expressions over the scan's output that produce the join key.
    key_exprs: list[Expr]
    #: Set by the owning HashJoin once its build side is hashed.
    build_keys: set | None = None
    #: Rows eliminated by this filter (observability for the bench).
    rows_filtered: int = 0
    #: Human-readable origin, e.g. the join's label.
    origin: str = ""

    @property
    def ready(self) -> bool:
        """Whether the hash table has been published yet."""
        return self.build_keys is not None

    def publish(self, build_keys: set) -> None:
        """Called by the join after building its hash table."""
        self.build_keys = build_keys

    def apply(self, block: RowBlock) -> RowBlock:
        """Filter a scan output block; a no-op until published."""
        if not self.ready or block.row_count == 0:
            return block
        key_columns = [as_list(expr.evaluate(block)) for expr in self.key_exprs]
        build_keys = self.build_keys
        keep = [
            index
            for index in range(block.row_count)
            if (key := tuple(col[index] for col in key_columns)) is not None
            and None not in key
            and key in build_keys
        ]
        self.rows_filtered += block.row_count - len(keep)
        if len(keep) == block.row_count:
            return block
        return block.select_rows(keep)

    def describe(self) -> str:
        """Plan-display rendering."""
        keys = ", ".join(repr(expr) for expr in self.key_exprs)
        return f"SIP[{keys}] from {self.origin or 'join'}"
