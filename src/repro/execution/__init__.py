"""The Vertica-style vectorized, pull-model execution engine (section 6)."""

from .aggregates import AggregateSpec
from .expressions import (
    And,
    Arithmetic,
    Between,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    column_range_from_predicate,
)
from .kernels import (
    ColumnVector,
    DictVector,
    PlainVector,
    RleVector,
    Selection,
    as_list,
    force_row_engine,
    kernels_enabled,
)
from .operators import *  # noqa: F401,F403 - re-export operator set
from .operators import __all__ as _operators_all
from .resource import ResourcePool, SpillFile, WorkloadPolicy
from .row_block import VECTOR_SIZE, RowBlock, blocks_to_rows
from .sip import SipFilter

__all__ = [
    "AggregateSpec",
    "And",
    "Arithmetic",
    "Between",
    "CaseWhen",
    "ColumnRef",
    "Comparison",
    "Expr",
    "FunctionCall",
    "InList",
    "IsNull",
    "Like",
    "Literal",
    "Not",
    "Or",
    "column_range_from_predicate",
    "ColumnVector",
    "DictVector",
    "PlainVector",
    "RleVector",
    "Selection",
    "as_list",
    "force_row_engine",
    "kernels_enabled",
    "ResourcePool",
    "SpillFile",
    "WorkloadPolicy",
    "VECTOR_SIZE",
    "RowBlock",
    "blocks_to_rows",
    "SipFilter",
    *_operators_all,
]
