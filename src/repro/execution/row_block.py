"""Vectorized row blocks: the unit of data flow between operators.

    As in C-store, the EE is fully vectorized and makes requests for
    blocks of rows at a time instead of requesting single rows at a
    time.  (section 6.1)

A :class:`RowBlock` is a small columnar batch: a dict of column name to
equal-length value lists.  Operators pull blocks from their children,
transform them column-at-a-time, and push nothing — the most
downstream operator drives the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExecutionError
from .kernels.vectors import as_list

#: Default number of rows per block flowing between operators.
VECTOR_SIZE = 4096


@dataclass
class RowBlock:
    """A columnar batch of rows.

    Columns are equal-length sequences: plain lists, or (from a
    vectorized scan) :class:`~repro.execution.kernels.vectors.ColumnVector`
    instances that keep their encoded form until something actually
    indexes them.  ``sorted_by`` names the columns this block's rows are
    sorted by ascending (major first), when known — the hook kernel
    predicates use for binary search and GroupBy uses for run detection.
    """

    columns: dict[str, list]
    row_count: int
    sorted_by: tuple | None = field(default=None, compare=False)

    def __post_init__(self):
        for name, values in self.columns.items():
            if len(values) != self.row_count:
                raise ExecutionError(
                    f"column {name!r} has {len(values)} values, "
                    f"expected {self.row_count}"
                )

    @classmethod
    def from_rows(cls, rows: list[dict], column_names: list[str]) -> "RowBlock":
        """Build a block from row dicts (test/load convenience)."""
        return cls(
            columns={
                name: [row[name] for row in rows] for name in column_names
            },
            row_count=len(rows),
        )

    @classmethod
    def empty(cls, column_names: list[str]) -> "RowBlock":
        """A zero-row block with the given shape."""
        return cls(columns={name: [] for name in column_names}, row_count=0)

    @property
    def column_names(self) -> list[str]:
        """Names of the block's columns."""
        return list(self.columns)

    def column(self, name: str) -> list:
        """Values of one column."""
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(
                f"block has no column {name!r}; has {self.column_names}"
            ) from None

    def to_rows(self) -> list[dict]:
        """Materialize as row dicts (sinks and tests)."""
        names = self.column_names
        columns = {name: as_list(self.columns[name]) for name in names}
        return [
            {name: columns[name][index] for name in names}
            for index in range(self.row_count)
        ]

    def row(self, index: int) -> tuple:
        """One row as a tuple in column order."""
        return tuple(self.columns[name][index] for name in self.column_names)

    def select_rows(self, keep: list[int]) -> "RowBlock":
        """A new block containing only the rows at the given indexes."""
        return RowBlock(
            columns={
                name: list(map(as_list(values).__getitem__, keep))
                for name, values in self.columns.items()
            },
            row_count=len(keep),
            sorted_by=self.sorted_by,
        )

    def filter(self, mask: list) -> "RowBlock":
        """A new block keeping rows where ``mask`` is truthy (SQL
        three-valued logic: NULL does not pass)."""
        keep = [index for index, flag in enumerate(mask) if flag]
        if len(keep) == self.row_count:
            return self
        return self.select_rows(keep)

    def project(self, names: list[str]) -> "RowBlock":
        """A new block with only the named columns."""
        return RowBlock(
            columns={name: self.column(name) for name in names},
            row_count=self.row_count,
            sorted_by=_sorted_prefix(self.sorted_by, set(names)),
        )

    def with_column(self, name: str, values: list) -> "RowBlock":
        """A new block with an extra (or replaced) column."""
        columns = dict(self.columns)
        columns[name] = values
        sorted_by = self.sorted_by
        if sorted_by and name in sorted_by:
            # the replacement may reorder values; keep the prefix before it
            sorted_by = sorted_by[: sorted_by.index(name)] or None
        return RowBlock(
            columns=columns, row_count=self.row_count, sorted_by=sorted_by
        )

    def rename(self, mapping: dict[str, str]) -> "RowBlock":
        """A new block with columns renamed per ``mapping``."""
        sorted_by = self.sorted_by
        if sorted_by:
            sorted_by = tuple(mapping.get(name, name) for name in sorted_by)
        return RowBlock(
            columns={
                mapping.get(name, name): values
                for name, values in self.columns.items()
            },
            row_count=self.row_count,
            sorted_by=sorted_by,
        )

    @staticmethod
    def concat(blocks: list["RowBlock"]) -> "RowBlock":
        """Concatenate blocks with identical column sets."""
        if not blocks:
            raise ExecutionError("cannot concat zero blocks")
        names = blocks[0].column_names
        columns: dict[str, list] = {name: [] for name in names}
        total = 0
        for block in blocks:
            if set(block.column_names) != set(names):
                raise ExecutionError("concat requires identical columns")
            for name in names:
                columns[name].extend(block.columns[name])
            total += block.row_count
        return RowBlock(columns=columns, row_count=total)

    def slices(self, size: int):
        """Yield sub-blocks of at most ``size`` rows."""
        if self.row_count <= size:
            yield self
            return
        for start in range(0, self.row_count, size):
            yield RowBlock(
                columns={
                    name: values[start : start + size]
                    for name, values in self.columns.items()
                },
                row_count=min(size, self.row_count - start),
                sorted_by=self.sorted_by,
            )


def _sorted_prefix(sorted_by: tuple | None, available: set) -> tuple | None:
    """The leading run of ``sorted_by`` whose columns are all present."""
    if not sorted_by:
        return sorted_by
    prefix: list = []
    for name in sorted_by:
        if name not in available:
            break
        prefix.append(name)
    return tuple(prefix) or None


def blocks_to_rows(blocks) -> list[dict]:
    """Drain an iterator of blocks into row dicts."""
    rows: list[dict] = []
    for block in blocks:
        rows.extend(block.to_rows())
    return rows
