"""Aggregate functions and their accumulators.

Accumulators support the two-phase (prepass + final) aggregation the
paper describes for parallel group-by: *mergeable* aggregates can emit
a partial value from a prepass operator which a downstream group-by
folds in with a merge function (COUNT partials merge by SUM, SUM by
SUM, MIN by MIN, MAX by MAX).  AVG and DISTINCT aggregates are not
merged by value, so plans containing them skip the prepass stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExecutionError
from .expressions import Expr

SUPPORTED = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass
class AggregateSpec:
    """One aggregate in a GROUP BY's select list."""

    func: str
    #: Argument expression; None means COUNT(*).
    arg: Expr | None
    #: Output column name.
    output_name: str
    distinct: bool = False

    def __post_init__(self):
        self.func = self.func.upper()
        if self.func not in SUPPORTED and not self._user_factory():
            raise ExecutionError(f"unsupported aggregate {self.func!r}")
        if self.func != "COUNT" and self.arg is None:
            raise ExecutionError(f"{self.func} requires an argument")

    def _user_factory(self):
        from ..sdk import user_aggregate_factory

        return user_aggregate_factory(self.func)

    @property
    def is_user_defined(self) -> bool:
        """Whether this aggregate came from the SDK registry."""
        return self.func not in SUPPORTED

    @property
    def mergeable(self) -> bool:
        """Whether a prepass partial can be folded in downstream.

        User-defined aggregates are never prepassed (their partial
        representation is opaque), like AVG and DISTINCT aggregates.
        """
        return not self.distinct and self.func in ("COUNT", "SUM", "MIN", "MAX")

    @property
    def merge_func(self) -> str:
        """Aggregate applied to partials in the final stage."""
        return "SUM" if self.func == "COUNT" else self.func

    def referenced_columns(self) -> set[str]:
        """Input columns the aggregate reads."""
        return self.arg.referenced_columns() if self.arg is not None else set()

    def describe(self) -> str:
        """SQL-ish rendering for plan display."""
        inner = "*" if self.arg is None else repr(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


class Accumulator:
    """Mutable state for one (group, aggregate) pair."""

    __slots__ = ("func", "distinct", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, func: str, distinct: bool):
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.minimum = None
        self.maximum = None
        self.seen = set() if distinct else None

    def add(self, value) -> None:
        """Fold one input value in (NULLs are ignored per SQL)."""
        if value is None:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif self.func == "MIN":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func == "MAX":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def add_count_star(self, count: int = 1) -> None:
        """COUNT(*) path: count rows regardless of values."""
        self.count += count

    def add_bulk(self, values, null_count: int | None = None) -> None:
        """Kernel path: fold a whole value sequence at once.

        ``null_count`` of 0 promises the sequence is NULL-free (exact
        vector metadata), skipping the filter pass; None means unknown.
        """
        if self.distinct:
            for value in values:
                self.add(value)
            return
        if null_count != 0:
            values = [value for value in values if value is not None]
        if not values:
            return
        self.count += len(values)
        if self.func in ("SUM", "AVG"):
            part = sum(values)
            self.total = part if self.total is None else self.total + part
        elif self.func == "MIN":
            low = min(values)
            if self.minimum is None or low < self.minimum:
                self.minimum = low
        elif self.func == "MAX":
            high = max(values)
            if self.maximum is None or high > self.maximum:
                self.maximum = high

    def add_run(self, value, length: int) -> None:
        """Kernel path: fold an RLE run — O(1) for every aggregate."""
        if value is None or length <= 0:
            return
        if self.distinct:
            self.add(value)
            return
        self.count += length
        if self.func in ("SUM", "AVG"):
            part = value * length
            self.total = part if self.total is None else self.total + part
        elif self.func == "MIN":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func == "MAX":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def final(self):
        """The aggregate's SQL result."""
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return None if self.count == 0 else self.total / self.count
        if self.func == "MIN":
            return self.minimum
        return self.maximum


class _UserAccumulatorAdapter:
    """Wraps a user accumulator with NULL/DISTINCT handling."""

    __slots__ = ("inner", "seen")

    def __init__(self, inner, distinct: bool):
        self.inner = inner
        self.seen = set() if distinct else None

    def add(self, value) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.inner.add(value)

    def add_count_star(self, count: int = 1) -> None:
        for _ in range(count):
            self.inner.add(1)

    def final(self):
        return self.inner.final()


def make_accumulator(spec: AggregateSpec):
    """Fresh accumulator for one group (built-in or SDK-registered)."""
    if spec.is_user_defined:
        return _UserAccumulatorAdapter(spec._user_factory()(), spec.distinct)
    return Accumulator(spec.func, spec.distinct)
