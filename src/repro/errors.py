"""Exception hierarchy for the repro analytic database.

Every error raised by the library derives from :class:`ReproError` so
callers can catch a single base class.  Subclasses mirror the major
subsystems of the paper: storage, transactions/locking, cluster
membership, SQL compilation and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro database."""


class StorageError(ReproError):
    """Raised for errors in the storage layer (ROS/WOS, encodings)."""


class EncodingError(StorageError):
    """Raised when a column encoding cannot encode or decode data."""


class CorruptContainerError(StorageError):
    """Raised when a ROS container fails structural or checksum
    validation: a missing file, a CRC32 mismatch against ``meta.json``,
    an unparseable position index, or corrupted metadata.  The storage
    manager reacts by quarantining the container, never by serving its
    rows."""


class FaultPlanError(ReproError):
    """Raised when a fault plan arms an unknown fault point or an
    action the point does not support."""


class InjectedFaultError(ReproError):
    """Raised by :mod:`repro.faults` to simulate a process crash at a
    registered fault point.  Deliberately *not* a :class:`StorageError`:
    recovery code that tolerates corrupt storage must still die at an
    injected crash, exactly like a real process would."""


class DurabilityError(ReproError):
    """Raised by the write-ahead journal: opening a path with no (or an
    unreadable) journal, creating a journal where one already exists,
    or replaying a record stream whose invariants are broken.  Torn
    tails and checksum failures in the journal are *not* errors — they
    are truncated to the last valid prefix, exactly like recovery
    truncates to the Last Good Epoch."""


class CatalogError(ReproError):
    """Raised for metadata catalog violations (unknown/duplicate objects)."""


class DuplicateObjectError(CatalogError):
    """Raised when creating a table/projection that already exists."""


class UnknownObjectError(CatalogError):
    """Raised when referencing a table/projection/column that does not exist."""


class TransactionError(ReproError):
    """Raised for transaction protocol violations."""


class LockTimeoutError(TransactionError):
    """Raised when a lock request cannot be granted."""


class DeadlockError(TransactionError):
    """Raised when a lock request would close a cycle in the lock
    manager's waits-for graph.  The victim is deterministic: it is the
    transaction whose request completed the cycle (a pure function of
    the request order, never of thread scheduling).  ``cycle`` lists
    the transaction ids along the cycle, starting with the victim."""

    def __init__(self, message: str, cycle: list[int]):
        super().__init__(message)
        self.cycle = cycle


class SerializationError(TransactionError):
    """Raised when a transaction must abort to preserve isolation."""


class QueryCancelledError(TransactionError):
    """Raised when a statement observes its cancel flag: an explicit
    ``Session.cancel()``, a service shutdown, or (via the
    :class:`StatementTimeoutError` subclass) an expired statement
    deadline.  Cancellation is cooperative — operators check the flag
    between blocks, lock waits check it between wakeups — and the
    raising path releases every lock, pool grant and open trace span
    on the way out."""


class StatementTimeoutError(QueryCancelledError):
    """Raised when a statement runs past its deadline on the simulated
    clock.  A subclass of :class:`QueryCancelledError` so every
    cancellation cleanup path handles timeouts for free."""


class AdmissionTimeoutError(TransactionError):
    """Raised by the resource governor when a statement cannot be
    admitted to its resource pool: the pool's queue is already full
    (immediate rejection) or the statement queued and its queue
    timeout elapsed before a slot freed.  Nothing is held when this
    raises — admission happens before locks or memory grants."""


class ClusterError(ReproError):
    """Raised for cluster membership and distribution errors."""


class QuorumLossError(ClusterError):
    """Raised when fewer than N/2+1 nodes remain up (split-brain guard)."""


class ReadOnlyModeError(ClusterError):
    """Raised when a write statement reaches a service that has
    degraded to read-only after quorum loss.  Reads keep answering;
    writes fail fast with this error until quorum returns and the
    service steps back up."""


class KSafetyError(ClusterError):
    """Raised when a physical design does not satisfy the requested K-safety."""


class DataUnavailableError(ClusterError):
    """Raised when node failures make some segment of data unreachable."""


class NodeDownError(ClusterError):
    """Raised when an executing query touches a node that has died or
    been ejected mid-flight.  Carries the node index so the executor's
    failover loop can mark the node down and retry the query against
    surviving buddy copies at the same snapshot epoch."""

    def __init__(self, message: str, node_index: int):
        super().__init__(message)
        self.node_index = node_index


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """Raised by the lexer/parser on malformed SQL text."""


class SqlAnalysisError(SqlError):
    """Raised by the semantic analyzer (unknown columns, type errors...)."""


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class ExecutionError(ReproError):
    """Raised by the execution engine at query runtime."""


class ResourceExceededError(ExecutionError):
    """Raised when an operator cannot fit its budget even after spilling."""


class LoadError(ReproError):
    """Raised by the bulk loader; carries rejected-record context."""

    def __init__(self, message: str, rejected_rows: list | None = None):
        super().__init__(message)
        self.rejected_rows = rejected_rows or []


class DesignError(ReproError):
    """Raised by the Database Designer when no valid design exists."""


class TraceError(ReproError):
    """Raised on tracing-protocol misuse: closing a span twice, asking
    a finished trace for its open span, or exporting a trace that was
    never recorded."""


class InvariantViolation(ReproError):
    """Raised by the runtime sanitizer (``REPRO_SANITIZE=1``) when a
    physical invariant is broken: non-monotonic position index, block
    min/max inconsistent with decoded data, row-count loss in moveout,
    a double delete, or a regressing/overrunning epoch mark."""
