"""The auto-recovery supervisor: failure detection + self-healing.

The paper's availability story (section 5.2-5.3) is a *runtime*
behaviour, not a toolbox: failed nodes are detected, restarted,
recovered back to currency from buddies and rejoined without an
operator typing commands, and the cluster degrades gracefully while
that happens (writes rejected below quorum, reads served while every
segment has a reachable copy, safety shutdown when one does not).

:class:`ClusterSupervisor` closes that loop over the mechanisms built
in earlier PRs (``restart_node`` / scavenge, ``recover_node``, scrub).
Each :meth:`tick` advances the simulated clock one heartbeat interval
and

1. runs the deterministic failure detector (heartbeat round; nodes
   missing ``heartbeat_timeout`` consecutive ticks are ejected exactly
   like commit-or-eject ejects a node that misses a commit message);
2. reconciles its per-node state machine with the membership (nodes
   ejected by commit-or-eject or the executor's mid-query failover are
   adopted as DOWN);
3. drives at most one recovery phase per down node::

       DOWN -> RESTARTING -> SCAVENGED -> RECOVERING -> CURRENT -> UP

   with exponential backoff on failures — a node whose restart or
   recovery keeps crashing (e.g. under an armed fault plan) waits
   ``backoff_base * 2**(attempts-1)`` ticks before the next try and is
   QUARANTINED after ``max_recovery_attempts`` failures rather than
   retried forever;
4. re-evaluates the degraded modes and records transitions into the
   cluster's failover log (``v_monitor.failover_events``).

Everything runs off :class:`repro.cluster.clock.SimulatedClock`; no
wall-clock call is involved, so a chaos seed replays tick-for-tick.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError, ReproError
from ..monitor import METRICS
from .cluster import Cluster
from .recovery import recover_node

#: Supervisor states, in lifecycle order.  RESTARTING / RECOVERING /
#: CURRENT are transient within one tick but still recorded as
#: transitions so ``v_monitor.failover_events`` shows the full path.
DOWN = "DOWN"
RESTARTING = "RESTARTING"
SCAVENGED = "SCAVENGED"
RECOVERING = "RECOVERING"
CURRENT = "CURRENT"
UP = "UP"
QUARANTINED = "QUARANTINED"

#: Every state, for introspection/validation.
STATES = (DOWN, RESTARTING, SCAVENGED, RECOVERING, CURRENT, UP, QUARANTINED)


@dataclass
class NodeSupervision:
    """Supervisor-side bookkeeping for one node."""

    state: str = UP
    #: Consecutive failed recovery attempts since the node went down.
    recovery_attempts: int = 0
    #: Simulated-clock tick before which no new attempt is made
    #: (exponential backoff).
    next_attempt_tick: int = 0
    #: Tick of the last recorded state transition.
    last_transition_tick: int = 0
    #: Message of the most recent recovery failure ("" when none).
    last_error: str = ""


class ClusterSupervisor:
    """Drives failed nodes back to UP; one state step per tick."""

    def __init__(
        self,
        cluster: Cluster,
        backoff_base: int = 1,
        max_recovery_attempts: int = 4,
    ):
        self.cluster = cluster
        #: First retry waits this many ticks; each failure doubles it.
        self.backoff_base = backoff_base
        #: Failed attempts tolerated before the node is quarantined.
        self.max_recovery_attempts = max_recovery_attempts
        self._nodes: dict[int, NodeSupervision] = {}
        #: (has_quorum, data_available) at the last tick, to record
        #: degraded-mode events only on change.  A cluster is born
        #: healthy, so the first tick of a healthy cluster logs nothing.
        self._last_modes: tuple[bool, bool] = (True, True)

    # -- introspection ---------------------------------------------------

    def node_state(self, node_index: int) -> NodeSupervision:
        """The supervision record for one node (created UP on demand)."""
        record = self._nodes.get(node_index)
        if record is None:
            record = self._nodes[node_index] = NodeSupervision()
        return record

    def states(self) -> dict[int, NodeSupervision]:
        """node index -> supervision record, for every cluster node."""
        return {
            index: self.node_state(index)
            for index in range(self.cluster.node_count)
        }

    def converged(self) -> bool:
        """Whether every node is UP or (terminally) QUARANTINED."""
        return all(
            record.state in (UP, QUARANTINED)
            for record in self.states().values()
        )

    # -- the control loop ------------------------------------------------

    def tick(self) -> int:
        """One supervisor cycle; returns the new simulated time."""
        now = self.cluster.clock.advance()
        self._detect_failures(now)
        self._reconcile_membership(now)
        self._drive_recovery(now)
        self._update_degraded_modes(now)
        # clock advanced: let the Data Collector age out expired history
        # at a deterministic point in the tick.
        self.cluster.dc.on_tick()
        METRICS.inc("supervisor.ticks")
        return now

    def run_until_converged(self, max_ticks: int = 64) -> int:
        """Tick until every node is UP or QUARANTINED; returns the
        number of ticks spent.  Raises :class:`ClusterError` when the
        cluster has not converged within ``max_ticks`` — with bounded
        backoff and quarantine that indicates a supervisor bug, so
        failing loudly beats spinning."""
        for spent in range(1, max_ticks + 1):
            self.tick()
            if self.converged():
                return spent
        raise ClusterError(
            f"cluster did not converge within {max_ticks} ticks; "
            f"states: {self.render_states()}"
        )

    def render_states(self) -> str:
        """``node00=UP node01=DOWN ...`` — for errors and logs."""
        return " ".join(
            f"node{index:02d}={record.state}"
            for index, record in sorted(self.states().items())
        )

    # -- phase 1: failure detection -------------------------------------

    def _detect_failures(self, now: int) -> None:
        for node_index, reason in self.cluster.membership.heartbeat_round(now):
            # heartbeat_round already ejected the node; freeze its
            # epoch/WOS state like every other death path.
            self.cluster._eject_and_freeze(node_index, reason)
            METRICS.inc("supervisor.heartbeat_ejections")
            self.cluster.failover_log.record(
                "ejection", node_index, reason, now
            )
            self._transition(node_index, DOWN, now)

    # -- phase 2: adopt externally observed state ------------------------

    def _reconcile_membership(self, now: int) -> None:
        membership = self.cluster.membership
        for node_index in range(self.cluster.node_count):
            record = self.node_state(node_index)
            if membership.is_up(node_index):
                if record.state != UP:
                    # recovered outside the supervisor (direct
                    # recover_node call, rebalance): adopt it.
                    self._transition(node_index, UP, now)
                    record.recovery_attempts = 0
                    record.last_error = ""
            elif record.state in (UP, CURRENT):
                # ejected by commit-or-eject, fail_node or the
                # executor's mid-query failover: start supervising.
                self._transition(node_index, DOWN, now)

    # -- phase 3: drive recovery -----------------------------------------

    def _drive_recovery(self, now: int) -> None:
        for node_index in sorted(self._nodes):
            record = self._nodes[node_index]
            if record.state not in (DOWN, SCAVENGED):
                continue
            if now < record.next_attempt_tick:
                continue
            if record.state == DOWN:
                self._try_restart(node_index, record, now)
            else:
                self._try_recover(node_index, record, now)

    def _try_restart(self, node_index: int, record, now: int) -> None:
        self._transition(node_index, RESTARTING, now)
        try:
            self.cluster.restart_node(node_index)
        except ReproError as exc:
            self._attempt_failed(node_index, record, now, RESTARTING, exc)
            return
        self._transition(node_index, SCAVENGED, now)

    def _try_recover(self, node_index: int, record, now: int) -> None:
        self._transition(node_index, RECOVERING, now)
        try:
            recover_node(self.cluster, node_index)
        except ReproError as exc:
            self._attempt_failed(node_index, record, now, RECOVERING, exc)
            return
        # recover_node replayed the node to the current epoch and
        # rejoined it: currency and membership in one step.
        self._transition(node_index, CURRENT, now)
        self._transition(node_index, UP, now)
        record.recovery_attempts = 0
        record.last_error = ""
        METRICS.inc("supervisor.recoveries")

    def _attempt_failed(
        self, node_index: int, record, now: int, phase: str, exc: Exception
    ) -> None:
        record.recovery_attempts += 1
        record.last_error = f"{phase.lower()} failed: {exc}"
        METRICS.inc("supervisor.recovery_failures")
        if record.recovery_attempts >= self.max_recovery_attempts:
            self._transition(node_index, QUARANTINED, now)
            METRICS.inc("supervisor.quarantines")
            self.cluster.failover_log.record(
                "quarantine",
                node_index,
                f"giving up after {record.recovery_attempts} failed "
                f"attempts; last: {record.last_error}",
                now,
                attempt=record.recovery_attempts,
            )
            return
        backoff = self.backoff_base * 2 ** (record.recovery_attempts - 1)
        record.next_attempt_tick = now + backoff
        # a failed recovery may have left partial replays behind; going
        # back to DOWN re-runs restart+scavenge before the next try.
        self._transition(node_index, DOWN, now)

    # -- phase 4: degraded modes -----------------------------------------

    def _update_degraded_modes(self, now: int) -> None:
        has_quorum = self.cluster.membership.has_quorum()
        data_available = self.cluster.check_data_available()
        METRICS.set_gauge("cluster.has_quorum", int(has_quorum))
        METRICS.set_gauge("cluster.data_available", int(data_available))
        modes = (has_quorum, data_available)
        if modes == self._last_modes:
            return
        self._last_modes = modes
        if not data_available:
            self.cluster.failover_log.record(
                "degraded_mode",
                -1,
                "safety shutdown: some segment has no reachable copy; "
                "queries raise DataUnavailableError",
                now,
            )
        elif not has_quorum:
            self.cluster.failover_log.record(
                "degraded_mode",
                -1,
                "quorum lost: writes rejected with QuorumLossError, "
                "reads continue from surviving copies",
                now,
            )
        else:
            self.cluster.failover_log.record(
                "degraded_mode", -1, "healthy: quorum and all data", now
            )

    # -- shared ----------------------------------------------------------

    def _transition(self, node_index: int, new_state: str, now: int) -> None:
        record = self.node_state(node_index)
        if record.state == new_state:
            return
        detail = f"{record.state}->{new_state}"
        record.state = new_state
        record.last_transition_tick = now
        METRICS.inc("supervisor.transitions")
        self.cluster.failover_log.record(
            "recovery_transition",
            node_index,
            detail,
            now,
            attempt=record.recovery_attempts,
        )
