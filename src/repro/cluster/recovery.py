"""Recovery, refresh and rebalance (section 5.2).

Recovery replays the DML a down node missed, sourced from buddy
projections, in two phases:

* **historical phase** — no locks; copies committed history from the
  node's Last Good Epoch up to a recent epoch ``E_h``;
* **current phase** — takes a Shared lock on the table (blocking
  writers but not snapshot readers) and copies the small remainder up
  to the current epoch.

*Refresh* populates a newly created projection from existing table
data, and *rebalance* redistributes rows after the node count changes;
both reuse the same history-replay machinery (the paper notes all
three share structure).  All of them are **online**: queries keep
running against the surviving copies throughout.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import ClusterError, DataUnavailableError
from ..projections import ProjectionFamily
from ..trace import TRACER
from ..txn import LockMode
from .cluster import Cluster

#: Transaction id the recovery subsystem locks under.
RECOVERY_TXN_ID = -1


@dataclass
class RecoveryReport:
    """What one node recovery did, per projection copy."""

    node: int
    truncated_rows: int = 0
    historical_rows: int = 0
    current_rows: int = 0
    #: projection -> (historical, current) row counts.
    per_projection: dict[str, tuple[int, int]] = field(default_factory=dict)


def _buddy_records_for_node(
    cluster: Cluster, family: ProjectionFamily, node_index: int, copy
):
    """History records the recovering node's ``copy`` should hold,
    sourced from surviving copies of the same family."""
    if copy.segmentation.replicated:
        for source in cluster.membership.up_nodes():
            if source != node_index:
                yield from cluster.nodes[source].manager.dump_rows(copy.name)
                return
        # DataUnavailableError (not a bare ClusterError) so recovery
        # callers — and the supervisor's retry loop — can distinguish
        # "no copy of this data is reachable" from protocol faults.
        raise DataUnavailableError(
            f"no live source to recover replicated projection "
            f"{copy.name} on node {node_index}"
        )
    my_offset = getattr(copy.segmentation, "offset", 0)
    base = (node_index - my_offset) % cluster.node_count
    for other in family.all_copies:
        if other.name == copy.name:
            continue
        other_offset = getattr(other.segmentation, "offset", 0)
        host = (base + other_offset) % cluster.node_count
        if cluster.membership.is_up(host):
            # the buddy's storage on `host` holds exactly this ring
            # segment's rows (offset rings line up one-to-one).
            yield from cluster.nodes[host].manager.dump_rows(other.name)
            return
    raise DataUnavailableError(
        f"no live buddy to recover segment {base} of {copy.name} on "
        f"node {node_index}; the segment is unrecoverable until a "
        "buddy host returns"
    )


def recover_node(
    cluster: Cluster, node_index: int, historical_lag: int = 0
) -> RecoveryReport:
    """Bring a failed node back into the cluster.

    ``historical_lag`` picks ``E_h = current - lag`` as the boundary
    between the lock-free historical phase and the S-locked current
    phase (0 means everything is copied historically and the current
    phase only covers data committed *during* recovery — at simulation
    granularity, nothing).
    """
    if cluster.membership.is_up(node_index):
        raise ClusterError(f"node {node_index} is not down")
    trace = TRACER.start_trace(
        "recovery", attrs={"node": node_index, "historical_lag": historical_lag}
    )
    try:
        return _recover_node(cluster, node_index, historical_lag)
    finally:
        TRACER.end_trace(trace)


def _recover_node(
    cluster: Cluster, node_index: int, historical_lag: int
) -> RecoveryReport:
    report = RecoveryReport(node=node_index)
    manager = cluster.nodes[node_index].manager
    current = cluster.epochs.latest_queryable_epoch
    boundary = max(current - historical_lag, 0)
    for _, family in sorted(cluster.catalog.families.items()):
        for copy in family.all_copies:
            table = cluster.catalog.table(copy.anchor_table)
            lge = cluster.epochs.lge(node_index, copy.name)
            if lge >= current:
                # Nothing was committed after this copy's ROS was
                # certified complete, so the scavenged disk already
                # holds everything and no buddy needs to be reachable.
                # This is what lets a cluster that lost BOTH buddies of
                # a segment (no data lost, no quorum, so no new
                # commits either) heal itself: each node rejoins from
                # its own disk instead of deadlocking on the other.
                report.per_projection[copy.name] = (0, 0)
                continue
            # 1. truncate to the LGE: WOS contents died with the node
            #    and post-LGE ROS state may be incomplete.  Truncation
            #    rebuilds the containers wholesale, so the LGE is
            #    invalidated *first*: if this attempt crashes mid-
            #    rebuild, the retry must re-replay everything instead
            #    of trusting an LGE whose data is gone.
            with TRACER.span(
                "recovery.truncate",
                category="recovery",
                node_index=node_index,
                projection=copy.name,
                lge=lge,
            ):
                cluster.epochs.invalidate_lge(node_index, copy.name)
                report.truncated_rows += manager.truncate_after_epoch(
                    copy.name, lge
                )
                records = list(
                    _buddy_records_for_node(cluster, family, node_index, copy)
                )
            # 2. historical phase (no locks): (LGE, boundary]
            with TRACER.span(
                "recovery.historical",
                category="recovery",
                node_index=node_index,
                projection=copy.name,
            ) as hist_span:
                historical = [
                    record
                    for record in records
                    if lge < record[1] <= boundary
                ]
                manager.load_history(copy.name, historical)
                _replay_deletes(manager, copy.name, records, lge, boundary)
                if hist_span is not None:
                    hist_span.attrs["rows"] = len(historical)
            # 3. current phase (Shared lock): (boundary, current]
            with TRACER.span(
                "recovery.current",
                category="recovery",
                node_index=node_index,
                projection=copy.name,
            ) as cur_span:
                cluster.locks.acquire(
                    RECOVERY_TXN_ID, table.name, LockMode.S
                )
                try:
                    current_records = [
                        record
                        for record in records
                        if boundary < record[1] <= current
                    ]
                    manager.load_history(copy.name, current_records)
                    _replay_deletes(
                        manager, copy.name, records, boundary, current
                    )
                finally:
                    cluster.locks.release(RECOVERY_TXN_ID, table.name)
                if cur_span is not None:
                    cur_span.attrs["rows"] = len(current_records)
            cluster.epochs.set_lge(node_index, copy.name, current)
            report.historical_rows += len(historical)
            report.current_rows += len(current_records)
            report.per_projection[copy.name] = (
                len(historical),
                len(current_records),
            )
    with TRACER.span(
        "recovery.rejoin", category="recovery", node_index=node_index
    ):
        cluster.membership.rejoin(node_index)
        cluster.epochs.node_up(node_index)
    return report


def _replay_deletes(manager, projection_name, records, from_epoch, to_epoch):
    """Re-apply delete markers stamped in (from_epoch, to_epoch] to rows
    the node already holds (rows inserted before its LGE but deleted
    while it was down)."""
    window = [
        (record[0], record[2])
        for record in records
        if record[2] is not None and from_epoch < record[2] <= to_epoch
        # only rows the historical/current load did NOT just bring in
        # (those carry their delete markers already)
        and not (from_epoch < record[1] <= to_epoch)
    ]
    if not window:
        return
    from collections import Counter

    # apply per delete epoch group for exact epoch stamping
    by_epoch: dict[int, list[dict]] = {}
    for row, delete_epoch in window:
        by_epoch.setdefault(delete_epoch, []).append(row)
    for delete_epoch, rows in sorted(by_epoch.items()):
        remaining = Counter(
            tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
        )

        def matcher(row, remaining=remaining):
            key = tuple(sorted((k, repr(v)) for k, v in row.items()))
            if remaining[key] > 0:
                remaining[key] -= 1
                return True
            return False

        manager.delete_where(
            projection_name, matcher,
            commit_epoch=delete_epoch, snapshot_epoch=delete_epoch - 1,
        )


def refresh_projection(cluster: Cluster, family: ProjectionFamily) -> int:
    """Populate a newly created projection family from the anchor
    table's existing data (historical + current phase, like recovery).
    Returns the number of history records replayed per copy."""
    table_name = family.primary.anchor_table
    table = cluster.catalog.table(table_name)
    source_family = None
    for candidate in cluster.catalog.families_for_table(table_name):
        if candidate.primary.name == family.primary.name:
            continue
        if candidate.primary.is_super_for(table) and candidate.primary.prejoin is None:
            source_family = candidate
            break
    if source_family is None:
        return 0  # the table's first projection starts empty
    table_records = cluster.collect_history(source_family)
    count = 0
    cluster.locks.acquire(RECOVERY_TXN_ID, table_name, LockMode.S)
    try:
        for copy in family.all_copies:
            shaped = []
            for row, insert_epoch, delete_epoch in table_records:
                projected = cluster.projection_rows(copy, [row], insert_epoch)[0]
                shaped.append((projected, insert_epoch, delete_epoch))
            for node_index, records in _route_records(
                cluster, copy, shaped
            ).items():
                if cluster.membership.is_up(node_index):
                    cluster.nodes[node_index].manager.load_history(
                        copy.name, records
                    )
                    count += len(records)
    finally:
        cluster.locks.release(RECOVERY_TXN_ID, table_name)
    return count


def _route_records(cluster: Cluster, copy, records):
    routed: dict[int, list] = {}
    if copy.segmentation.replicated:
        return {node: list(records) for node in range(cluster.node_count)}
    for record in records:
        node = copy.segmentation.node_for_row(record[0], cluster.node_count)
        routed.setdefault(node, []).append(record)
    return routed


def _family_copy(cluster: Cluster, projection_name: str):
    """(family, copy) for a projection name, searching every family."""
    for _, family in sorted(cluster.catalog.families.items()):
        for copy in family.all_copies:
            if copy.name == projection_name:
                return family, copy
    raise ClusterError(f"no projection named {projection_name}")


def repair_node_projection(
    cluster: Cluster, node_index: int, projection_name: str
) -> int:
    """Rebuild one projection copy on one (up) node from its buddies.

    Used when scavenge or scrub quarantined containers: the surviving
    local state cannot be trusted to be complete, so the copy is wiped
    and reloaded wholesale from a live buddy under a Shared lock (the
    same online discipline as recovery's current phase).  Returns the
    number of history records replayed.
    """
    family, copy = _family_copy(cluster, projection_name)
    table = cluster.catalog.table(copy.anchor_table)
    manager = cluster.nodes[node_index].manager
    records = list(
        _buddy_records_for_node(cluster, family, node_index, copy)
    )
    cluster.locks.acquire(RECOVERY_TXN_ID, table.name, LockMode.S)
    try:
        state = manager.storage(projection_name)
        manager.remove_containers(projection_name, list(state.containers))
        state.wos.drain()
        state.wos_deletes.clear()
        state.persisted_ros_deletes.clear()
        state.pending_ros_deletes.clear()
        state.loaded_dv_dirs.clear()
        manager.load_history(projection_name, records)
    finally:
        cluster.locks.release(RECOVERY_TXN_ID, table.name)
    current = cluster.epochs.latest_queryable_epoch
    if current > cluster.epochs.lge(node_index, projection_name):
        cluster.epochs.set_lge(node_index, projection_name, current)
    return len(records)


@dataclass
class ScrubReport:
    """Outcome of one cluster-wide scrub pass."""

    #: (node, projection, container id, bad file names) with checksum
    #: failures or missing files found by deep verification.
    corrupt: list[tuple[int, str, int, list[str]]] = field(default_factory=list)
    #: (node, projection) copies rebuilt from buddy copies.
    repaired: list[tuple[int, str]] = field(default_factory=list)
    #: Quarantined container directories deleted after repair.
    purged: int = 0

    def clean(self) -> bool:
        """Whether the scrub found no damage at all."""
        return not (self.corrupt or self.repaired)


def scrub(cluster: Cluster, repair: bool = True) -> ScrubReport:
    """Deep-verify every ROS container on every up node against its
    stored CRC32s; quarantine failures and (with ``repair``) rebuild
    the damaged projection copies from buddies.

    This is the background data-integrity pass a production system runs
    to catch *silent* corruption — bit rot the crash-recovery scavenge
    cannot see because the files still parse.
    """
    report = ScrubReport()
    for node_index in cluster.membership.up_nodes():
        manager = cluster.nodes[node_index].manager
        damaged: set[str] = set()
        for projection_name in manager.projection_names():
            for container_id, bad_files in manager.verify_containers(
                projection_name
            ):
                report.corrupt.append(
                    (node_index, projection_name, container_id, bad_files)
                )
                manager.quarantine_container(
                    projection_name,
                    container_id,
                    "scrub: " + ", ".join(bad_files),
                )
                damaged.add(projection_name)
        # projections already holding quarantined containers from an
        # earlier scavenge pass need their copies rebuilt too.
        for record in manager.quarantined:
            damaged.add(record.projection)
        if repair and damaged:
            for projection_name in sorted(damaged):
                repair_node_projection(cluster, node_index, projection_name)
                report.repaired.append((node_index, projection_name))
            report.purged += manager.purge_quarantine()
    return report


@dataclass
class RebalanceReport:
    """Outcome of a cluster rebalance."""

    old_node_count: int
    new_node_count: int
    rows_moved: int = 0


def _fresh_node_dirname(root: str, index: int) -> str:
    """A node directory name under the cluster root that no existing
    (live or retired) node directory occupies.  Rebalancing down and
    back up re-creates node N with a fresh directory instead of
    resurrecting the retired node's stale files."""
    base = f"node{index:02d}"
    name = base
    attempt = 0
    while os.path.exists(os.path.join(root, name)):
        attempt += 1
        name = f"{base}_r{attempt}"
    return name


def rebalance(cluster: Cluster, new_node_count: int) -> RebalanceReport:
    """Re-segment every projection for a new node count.

    Models cluster expansion/contraction (section 3.6's local segments
    exist to make this cheap; the simulation moves rows and reports the
    volume).  All nodes must be up.
    """
    if cluster.membership.down_nodes():
        raise ClusterError("rebalance requires all nodes up")
    report = RebalanceReport(cluster.node_count, new_node_count)
    # gather full history per family, then rebuild placement
    histories = {
        name: list(cluster.collect_history(family))
        for name, family in sorted(cluster.catalog.families.items())
    }
    old_nodes = cluster.nodes
    cluster.node_count = new_node_count
    cluster.membership = type(cluster.membership)(new_node_count)
    from .node import ClusterNode

    cluster.nodes = [
        ClusterNode.create(
            cluster.root,
            index,
            new_node_count,
            dirname=_fresh_node_dirname(cluster.root, index),
        )
        if index >= len(old_nodes)
        else old_nodes[index]
        for index in range(new_node_count)
    ]
    for node in cluster.nodes:
        node.manager.node_count = new_node_count
    for name, family in sorted(cluster.catalog.families.items()):
        for copy in family.all_copies:
            records = histories[name]
            for node in cluster.nodes:
                manager = node.manager
                if copy.name in manager.projection_names():
                    state = manager.storage(copy.name)
                    manager.remove_containers(copy.name, list(state.containers))
                    state.wos.drain()
                    state.wos_deletes.clear()
                    state.persisted_ros_deletes.clear()
                    state.pending_ros_deletes.clear()
                else:
                    manager.register_projection(
                        copy, cluster.catalog.table(copy.anchor_table)
                    )
            for node_index, node_records in _route_records(
                cluster, copy, records
            ).items():
                cluster.nodes[node_index].manager.load_history(
                    copy.name, node_records
                )
                report.rows_moved += len(node_records)
    return report
